#!/usr/bin/env python3
"""Deployment lifetime of an underwater sensor network vs processing platform.

The paper's motivation (Section I): small, dense underwater sensor networks
need low-energy modems for long deployments.  This example carries the Table 3
per-estimation energies to the network level:

* deploy a 5 x 5 grid of nodes 200 m apart with a corner sink,
* route reports to the sink over the acoustic connectivity graph,
* price every packet with the modem energy budget (transmit amplifier,
  receive front end, and the channel-estimation energy of the chosen
  hardware platform — an estimator runs once per 22.4 ms receive window while
  listening),
* run both the analytical lifetime model and the event-driven simulator, and
  compare platforms.

Run with:  python examples/sensor_network_lifetime.py
"""

from __future__ import annotations

from repro.analysis.ablations import network_lifetime_study
from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.simulator import NetworkSimulator
from repro.network.topology import grid_deployment
from repro.network.traffic import PeriodicTraffic
from repro.utils.tables import format_table

PLATFORM_ENERGIES_UJ = {
    "MicroBlaze": 2000.40,
    "TI C6713 DSP": 500.76,
    "Virtex-4 1FC 16bit": 360.52,
    "Spartan-3 14FC 8bit": 25.82,
    "Virtex-4 112FC 8bit": 9.50,
}


def analytical_study() -> None:
    lifetimes = network_lifetime_study(
        grid_size=(5, 5),
        spacing_m=200.0,
        communication_range_m=300.0,
        battery_capacity_j=200_000.0,
        report_interval_s=120.0,
        packet_symbols=32,
        platform_energies_uj=PLATFORM_ENERGIES_UJ,
    )
    print(format_table(
        ["Platform", "Lifetime (days)", "vs MicroBlaze"],
        [
            (name, round(days, 2), f"{days / lifetimes['MicroBlaze']:.2f}X")
            for name, days in sorted(lifetimes.items(), key=lambda kv: kv[1])
        ],
        title="Analytical deployment lifetime (25 nodes, continuous listening)",
    ))
    print()


def simulated_study() -> None:
    """Event-driven simulation for the two extreme platforms."""
    rows = []
    for name in ("MicroBlaze", "Virtex-4 112FC 8bit"):
        energy_uj = PLATFORM_ENERGIES_UJ[name]
        budget = ModemEnergyBudget(
            transmit_power_w=2.0,
            receive_frontend_power_w=0.05,
            processing_energy_per_estimation_j=energy_uj * 1e-6,
            # continuous detection: one estimation per 22.4 ms receive window
            processing_idle_power_w=0.01 + energy_uj * 1e-6 / 22.4e-3,
        )
        simulator = NetworkSimulator(
            deployment=grid_deployment(4, 4, spacing_m=200.0),
            energy_budget=budget,
            traffic=PeriodicTraffic(report_interval_s=120.0, packet_symbols=32,
                                    jitter_fraction=0.0),
            communication_range_m=300.0,
            battery_capacity_j=50_000.0,
            rng=0,
        )
        result = simulator.run(max_time_s=30 * 86_400.0, stop_at_first_death=True)
        totals = result.total_energy_by_component()
        rows.append((
            name,
            # None means the network outlived the horizon (a 0.0-day death is real)
            ">30" if result.lifetime_days is None else round(result.lifetime_days, 2),
            result.packets_delivered,
            round(totals["processing_j"] + totals["idle_j"], 1),
            round(totals["transmit_j"], 1),
        ))
    print(format_table(
        ["Platform", "Lifetime (days)", "Packets delivered", "Listen+processing (J)", "Transmit (J)"],
        rows,
        title="Event-driven simulation (16 nodes, 50 kJ batteries)",
    ))


def main() -> None:
    analytical_study()
    simulated_study()


if __name__ == "__main__":
    main()
