#!/usr/bin/env python3
"""Bit-width exploration: how much datapath precision does the IP core need?

Section IV.C of the paper trades datapath bits against accuracy ("8-10 bits is
sufficient for accurate channel estimation with optimal dynamic range
scaling").  This example sweeps the word length of the bit-accurate
fixed-point Matching Pursuits model and prints, per word length:

* the channel-estimation error against the true channel,
* the deviation from the floating-point reference,
* the support-recovery rate,
* and the hardware cost of that word length (slices / power / energy on the
  fully parallel Virtex-4 core) — the accuracy-vs-energy trade the designer
  actually faces.

The sweep runs on the batched fixed-point engine by default (all trials of
all word lengths in one pass); pass ``batch=False`` to
:func:`bitwidth_accuracy_ablation` for the scalar per-trial reference —
the results are pinned identical, bit for bit.

Run with:  python examples/fixed_point_accuracy.py
"""

from __future__ import annotations

from repro.analysis.ablations import bitwidth_accuracy_ablation
from repro.hardware.devices import VIRTEX4_XC4VSX55
from repro.hardware.fpga import FPGAImplementation
from repro.utils.tables import format_table

WORD_LENGTHS = (4, 6, 8, 10, 12, 16)


def main() -> None:
    accuracy = bitwidth_accuracy_ablation(
        word_lengths=WORD_LENGTHS, num_trials=20, snr_db=25.0, rng=0
    )
    rows = []
    for result in accuracy:
        hardware = FPGAImplementation(
            VIRTEX4_XC4VSX55, num_fc_blocks=112, word_length=result.word_length
        )
        rows.append((
            result.word_length,
            round(result.mean_normalized_error, 4),
            round(result.mean_error_vs_float, 4),
            f"{result.mean_support_recovery:.0%}",
            hardware.area.slices,
            round(hardware.power.total_power_w, 2),
            round(hardware.energy.energy_uj, 2),
        ))
    print(format_table(
        ["Bits", "Error vs truth", "Error vs float", "Support recovery",
         "Slices (112 FC, V4)", "Power (W)", "Energy (uJ)"],
        rows,
        title="Fixed-point accuracy vs hardware cost of the MP IP core",
    ))
    print("\nObservation: estimation quality saturates by 8-10 bits while area,"
          " power and energy keep growing with the word length — matching the"
          " paper's choice of an 8-bit datapath for the lowest-energy design.")


if __name__ == "__main__":
    main()
