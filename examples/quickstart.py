#!/usr/bin/env python3
"""Quickstart: estimate a sparse underwater acoustic channel with Matching Pursuits.

This is the 30-second tour of the library's core API:

1. build the AquaModem signal matrices (Table 1 geometry: 224 x 112),
2. draw a random shallow-water multipath channel,
3. synthesise the received pilot vector and add noise,
4. run the Matching Pursuits estimator (the paper's Figure 3 algorithm),
5. compare the estimate against the true channel,
6. look up how much energy that single estimation costs on each hardware
   platform the paper compares (Table 3).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AquaModemConfig,
    aquamodem_signal_matrices,
    compare_platforms,
    matching_pursuit,
    random_sparse_channel,
)
from repro.channel.simulator import add_noise_for_snr
from repro.core.metrics import normalized_channel_error, support_recovery_rate
from repro.utils.tables import format_table


def main() -> None:
    config = AquaModemConfig()
    config.validate_waveform_design()
    print(f"AquaModem waveform: {config.chips_per_symbol} chips/symbol, "
          f"{config.receive_vector_samples}-sample receive vector, "
          f"{config.raw_bit_rate_bps:.0f} bit/s raw rate\n")

    # 1. static signal matrices (pre-computed once, stored in BRAM on the FPGA)
    matrices = aquamodem_signal_matrices(config)

    # 2. a random 4-path shallow-water channel on the 112-delay grid
    channel = random_sparse_channel(num_paths=4, max_delay=config.multipath_spread_samples,
                                    rng=7, min_separation=5)
    print("True channel taps (delay, |gain|):",
          [(int(d), round(float(abs(g)), 3)) for d, g in zip(channel.delays, channel.gains)])

    # 3. received pilot vector at 20 dB per-sample SNR
    received = add_noise_for_snr(
        matrices.synthesize(channel.coefficient_vector(matrices.num_delays)), 20.0, rng=8
    )

    # 4. Matching Pursuits channel estimation (Nf = 6 paths, as in the field tests)
    estimate = matching_pursuit(received, matrices, num_paths=config.num_paths)
    print("Estimated taps  (delay, |gain|):",
          [(int(d), round(float(abs(g)), 3)) for d, g in estimate.as_delay_gain_pairs()])

    # 5. estimation quality
    truth = channel.coefficient_vector(matrices.num_delays)
    print(f"\nNormalised channel error: "
          f"{normalized_channel_error(truth, estimate.coefficients):.3f}")
    print(f"Support recovery (±1 sample): "
          f"{support_recovery_rate(channel.delays, estimate.path_indices, tolerance=1):.0%}")

    # 6. what does one such estimation cost on each platform? (Table 3)
    comparison = compare_platforms(num_paths=config.num_paths)
    print()
    print(format_table(
        ["Platform", "Time (us)", "Power (W)", "Energy (uJ)", "vs MicroBlaze", "vs DSP"],
        [
            (r.label, round(r.time_us, 2), round(r.power_w, 3), round(r.energy_uj, 2),
             f"{r.energy_decrease_vs_microcontroller:.1f}X",
             f"{r.energy_decrease_vs_dsp:.1f}X")
            for r in comparison.results
        ],
        title="Energy of one channel estimation per hardware platform",
    ))
    best = comparison.best_energy()
    print(f"\nLowest-energy platform: {best.label} "
          f"({best.energy_uj:.1f} uJ per estimation, "
          f"{best.energy_decrease_vs_microcontroller:.0f}X better than the microcontroller)")


if __name__ == "__main__":
    main()
