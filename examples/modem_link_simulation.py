#!/usr/bin/env python3
"""End-to-end acoustic modem link over a shallow-water multipath channel.

Builds the full DS-SS physical layer the paper's kernel belongs to:

* a transmitter that spreads 8-ary symbols with the composite Walsh /
  m-sequence waveforms (pilot + payload),
* a physically motivated multipath channel from the image method for a
  20 m-deep, 300 m link, plus ambient-noise-derived SNR,
* a receiver that estimates the channel with Matching Pursuits (choosing the
  floating-point, fixed-point or IP-core backend), RAKE-combines and detects,
* a DS-SS vs FSK symbol-error-rate sweep (the Section III motivation) on the
  batched link engine, cross-checked against the per-frame reference loop.

Run with:  python examples/modem_link_simulation.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import AquaModemConfig, IPCoreConfig, IPCoreSimulator, Receiver, Transmitter
from repro.analysis.ablations import aquamodem_signal_matrices
from repro.channel.geometry import ShallowWaterGeometry
from repro.channel.multipath import MultipathChannel
from repro.channel.noise import total_noise_level_db
from repro.channel.propagation import snr_db as sonar_snr_db
from repro.channel.simulator import add_noise_for_snr, apply_channel
from repro.modem.frame import bit_errors, random_bits
from repro.modem.link import symbol_error_rate_curve
from repro.utils.tables import format_table


def single_link() -> None:
    """One 300 m link: geometry -> channel -> frame -> detection."""
    config = AquaModemConfig()
    geometry = ShallowWaterGeometry(
        water_depth_m=20.0, source_depth_m=10.0, receiver_depth_m=12.0, range_m=300.0
    )
    channel = MultipathChannel.from_geometry(
        geometry, sampling_interval_s=config.sampling_interval_s,
        max_delay_samples=config.samples_per_symbol,
    )
    print("Image-method channel taps (delay samples, gain):",
          [(int(d), round(float(np.real(g)), 3)) for d, g in zip(channel.delays, channel.gains)])

    # link budget: source level 185 dB re 1 uPa, Wenz ambient noise over 5 kHz
    noise_level = total_noise_level_db(config.carrier_frequency_hz / 1e3, config.bandwidth_hz)
    link_snr = sonar_snr_db(185.0, geometry.range_m, config.carrier_frequency_hz / 1e3, noise_level)
    print(f"Sonar-equation receive SNR at {geometry.range_m:.0f} m: {link_snr:.1f} dB")

    # transmit a 60-bit message
    tx = Transmitter(config=config)
    bits = random_bits(60, rng=1)
    frame = tx.transmit_bits(bits)

    received = apply_channel(frame.samples, channel)
    received = add_noise_for_snr(received, min(link_snr, 25.0), rng=2)

    # receiver backed by the IP-core (hardware-accurate) channel estimator
    matrices = aquamodem_signal_matrices(config)
    core = IPCoreSimulator(matrices, IPCoreConfig(num_fc_blocks=14, word_length=8, num_paths=6))
    rx = Receiver(config=config, estimator=lambda w, m, n: core.estimate(w).result)
    output = rx.receive(received)

    errors = bit_errors(bits, output.bits[: len(bits)])
    print(f"Transmitted {len(bits)} bits, bit errors: {errors} "
          f"(IP-core estimator, {core.num_fc_blocks} FC blocks, "
          f"{core.cycle_count()} cycles per estimation)\n")


def ser_sweep() -> None:
    """DS-SS vs FSK symbol error rate over random multipath channels.

    Runs on the batched engine (``batch=True`` is the default: the whole
    Monte-Carlo batch goes through vectorised modulation, channel, noise,
    Matching Pursuits and RAKE detection) and then cross-checks one curve
    against the per-frame reference loop — same seed, same RNG stream,
    identical error counts.
    """
    snr_points = [-9.0, -6.0, -3.0, 0.0, 3.0]
    t0 = time.perf_counter()
    dsss = symbol_error_rate_curve("DSSS", snr_points, num_symbols=120, rng=3)
    fsk = symbol_error_rate_curve("FSK", snr_points, num_symbols=120, rng=4)
    batched_s = time.perf_counter() - t0
    print(format_table(
        ["SNR (dB)", "DS-SS SER", "FSK SER"],
        [
            (snr, round(d.symbol_error_rate, 4), round(f.symbol_error_rate, 4))
            for snr, d, f in zip(snr_points, dsss, fsk)
        ],
        title="Symbol error rate: DS-SS (MP + RAKE) vs non-coherent FSK (batched engine)",
    ))

    # seed-locked equivalence: the per-frame loop reproduces the same counts
    t0 = time.perf_counter()
    reference = symbol_error_rate_curve(
        "DSSS", snr_points, num_symbols=120, rng=3, batch=False
    )
    reference_s = time.perf_counter() - t0
    assert [r.symbol_errors for r in reference] == [r.symbol_errors for r in dsss]
    print(f"Per-frame reference reproduces the DS-SS curve exactly "
          f"(batched {batched_s:.3f}s for both schemes, per-frame {reference_s:.3f}s "
          f"for DS-SS alone)")


def main() -> None:
    single_link()
    ser_sweep()


if __name__ == "__main__":
    main()
