#!/usr/bin/env python3
"""Design-space exploration of the Matching Pursuits IP core (Tables 2-3, Figure 6).

Reproduces the paper's hardware evaluation end to end:

* sweep parallelism (FC blocks) x bit width x FPGA device through the
  calibrated area / timing / power / energy models,
* print the Table 2 and Figure 6 quantities with the paper's published values
  alongside,
* extend the sweep to every divisor of 112 (the paper only shows 1/14/112) and
  extract the area-energy Pareto frontier,
* print the Table 3 platform comparison with the 210X / 52X headline ratios,
* re-run the paper's three bit widths with the E6 accuracy column — the
  estimation quality of each word length (computed on the batched
  fixed-point engine) next to its area/energy cost.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.analysis.report import comparison_report
from repro.core.dse import DesignSpaceExplorer, divisors
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.utils.tables import format_table


def paper_sweep() -> None:
    """The exact sweep of the paper, with paper values side by side."""
    print(comparison_report())


def extended_sweep() -> None:
    """Every divisor parallelism level at 8 bits, plus the Pareto frontier."""
    explorer = DesignSpaceExplorer(
        devices=(VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000),
        parallelism_levels=tuple(divisors(112)),
        bit_widths=(8,),
        include_infeasible=True,
    )
    evaluations = explorer.explore()
    print()
    print(explorer.render_table(evaluations))

    front = explorer.pareto_front(evaluations)
    print()
    print(format_table(
        ["Device", "#FC", "Slices", "Energy (uJ)", "Time (us)"],
        [
            (e.point.device.family, e.point.num_fc_blocks, e.slices, e.energy_uj, e.time_us)
            for e in front
        ],
        title="Area-energy Pareto frontier (8-bit datapath)",
    ))
    best = explorer.minimum_energy_point(evaluations)
    print(f"\nMinimum-energy design: {best.point} -> {best.energy_uj:.2f} uJ per estimation, "
          f"{best.slices} slices, {best.time_us:.2f} us")


def accuracy_sweep() -> None:
    """The paper's bit widths with the E6 accuracy column alongside.

    The accuracy trials run once per word length on the batched fixed-point
    engine (all Monte-Carlo channels in one `estimate_batch` call) and are
    shared across devices and parallelism levels — the column depends only
    on the datapath width.
    """
    explorer = DesignSpaceExplorer(
        devices=(VIRTEX4_XC4VSX55,),
        parallelism_levels=(112,),
        accuracy_trials=12,
    )
    print()
    print(explorer.render_table())


def main() -> None:
    paper_sweep()
    extended_sweep()
    accuracy_sweep()


if __name__ == "__main__":
    main()
