"""Batched Monte-Carlo link-simulation engine (the fast E7 hot path).

:class:`repro.modem.link.LinkSimulator` specifies the experiment one frame at
a time: draw a channel, draw symbols, modulate, pass through the channel, add
noise, receive, count errors.  That inner loop is pure Python calling tiny
NumPy kernels, so the Monte-Carlo SER-vs-SNR curves behind the paper's
DS-SS-beats-FSK claim spend most of their time in interpreter overhead.

:class:`BatchLinkEngine` runs the *same experiment* vectorised across all
frames of an SNR point:

* the random draws (channel taps, transmit symbols, unit noise) are made
  frame by frame in **exactly the order the per-frame loop makes them**, so
  with a shared seed the engine consumes an identical RNG stream and — since
  every arithmetic step below is element-for-element identical — produces the
  received sample stack *bit for bit* equal to the per-frame path's frames;
* modulation is one fancy-indexed assignment for the whole batch
  (``modulate_batch``), the multipath channels and noise are applied as
  batched array ops (``apply_channel_batch`` / ``add_noise_for_snr_batch``),
  every frame's pilot is channel-estimated in a single batched Matching
  Pursuits call (``matching_pursuit_batch``), and all symbol decisions fall
  out of batched correlation matmuls (``receive_batch`` /
  ``demodulate_batch``).

The equivalence is locked down by ``tests/modem/test_batch_equivalence.py``;
``benchmarks/test_bench_link_batch.py`` records the speed-up.
"""

from __future__ import annotations

import contextvars
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.channel.multipath import (
    MultipathChannel,
    random_sparse_channel,
    stack_channel_taps,
)
from repro.channel.simulator import (
    add_noise_for_snr_batch,
    apply_channel_batch,
    measure_signal_power_batch,
)
from repro.dsp.modulation.fsk import FSKModulator
from repro.modem.config import AquaModemConfig
from repro.modem.link import LinkResult
from repro.modem.receiver import Receiver
from repro.modem.transmitter import Transmitter
from repro.telemetry.metrics import counter, histogram
from repro.telemetry.tracing import span
from repro.utils.rng import as_rng
from repro.utils.validation import check_integer

__all__ = ["BatchLinkEngine"]

# per-batch telemetry (one update per SNR point, never per frame)
_FRAMES = counter("engine.link.frames")
_RNG_DRAWS = counter("engine.link.rng_draws")
_BATCH_FRAMES = histogram("engine.link.batch_frames")


@dataclass
class BatchLinkEngine:
    """Batched Monte-Carlo link simulator for the DS-SS and FSK schemes.

    Accepts the same parameters as
    :class:`~repro.modem.link.LinkSimulator` and, given the same seed,
    returns the same :class:`~repro.modem.link.LinkResult` counts — just
    several times faster.  ``LinkSimulator`` delegates here by default
    (``batch=True``); construct the engine directly only when driving the
    batched primitives yourself.

    Parameters
    ----------
    config:
        AquaModem waveform configuration.
    channel:
        Multipath channel; ``None`` draws a fresh random sparse channel per
        frame (matching how field conditions change between packets).
    num_channel_paths:
        Number of paths of the randomly drawn channels.
    rng:
        Seed or generator for symbols, channels and noise.
    """

    config: AquaModemConfig = field(default_factory=AquaModemConfig)
    channel: MultipathChannel | None = None
    num_channel_paths: int = 4
    rng: np.random.Generator | int | None = None
    #: Optional pre-built chain components (``LinkSimulator`` passes its own
    #: so the engine shares the already-constructed signal matrices).
    transmitter: Transmitter | None = None
    receiver: Receiver | None = None
    fsk: FSKModulator | None = None

    def __post_init__(self) -> None:
        self.rng = as_rng(self.rng)
        if self.transmitter is None:
            self.transmitter = Transmitter(config=self.config)
        if self.receiver is None:
            self.receiver = Receiver(config=self.config)
        if self.fsk is None:
            self.fsk = FSKModulator(
                num_tones=self.config.walsh_symbols,
                samples_per_symbol=self.config.samples_per_symbol,
                guard_samples=self.config.samples_per_guard,
            )

    # ------------------------------------------------------------------ #
    def _draw_channel(self) -> MultipathChannel:
        """One channel draw, RNG-identical to ``LinkSimulator._draw_channel``."""
        if self.channel is not None:
            return self.channel
        max_delay = max(self.config.multipath_spread_samples, self.num_channel_paths * 2 + 1)
        return random_sparse_channel(
            num_paths=self.num_channel_paths,
            max_delay=max_delay,
            rng=self.rng,
        )

    def _draw_frames(
        self, num_frames: int, symbols_per_frame: int, alphabet_size: int, frame_samples: int
    ) -> tuple[list[MultipathChannel], np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """All random draws for a batch, in the per-frame loop's stream order.

        The per-frame path interleaves its draws — channel, transmit symbols,
        noise (real then imaginary) — for frame 0, then frame 1, and so on.
        Keeping that interleaving is what makes the engine seed-locked; the
        noise normals are drawn *unscaled* here because their per-frame scale
        depends on the received signal power, which is computed later as a
        batched op.
        """
        channels: list[MultipathChannel] = []
        tx_symbols = np.empty((num_frames, symbols_per_frame), dtype=np.int64)
        noise_real = np.empty((num_frames, frame_samples), dtype=np.float64)
        noise_imag = np.empty((num_frames, frame_samples), dtype=np.float64)
        for t in range(num_frames):
            channels.append(self._draw_channel())
            tx_symbols[t] = self.rng.integers(0, alphabet_size, size=symbols_per_frame)
            self.rng.standard_normal(out=noise_real[t])
            self.rng.standard_normal(out=noise_imag[t])
        _FRAMES.inc(num_frames)
        _BATCH_FRAMES.observe(num_frames)
        # symbols + 2 noise fills per frame, plus the channel draw when fresh
        _RNG_DRAWS.inc(num_frames * (3 + (1 if self.channel is None else 0)))
        return channels, tx_symbols, (noise_real, noise_imag)

    def _faded_stream(
        self,
        channels: list[MultipathChannel],
        symbols: np.ndarray,
        waveforms: np.ndarray,
        window_samples: int,
    ) -> np.ndarray | None:
        """Modulation + multipath, fused: fade the alphabet, gather the frames.

        Every transmitted symbol occupies ``window_samples`` (waveform + guard
        interval), and when each channel's largest tap delay plus the waveform
        length fits inside the window, a symbol's faded energy never leaves
        its own window.  The channel output is then fully determined by each
        frame's *faded alphabet* — the channel applied to the (small) waveform
        set — and the frame streams are a single gather of those faded
        waveforms, element-for-element identical to modulating the whole
        stream and convolving it (same per-tap products, same tap order).
        Returns ``None`` when a channel spills past the window; the caller
        then modulates the full stream and convolves it the generic way.
        """
        frames, _ = symbols.shape
        alphabet, symbol_samples = waveforms.shape
        delays, gains = stack_channel_taps(channels)
        if int(delays.max(initial=0)) + symbol_samples > window_samples:
            return None  # a tap spills into the next window; caller falls back
        faded_alphabet = np.zeros(
            (frames, alphabet, window_samples), dtype=np.complex128
        )
        for k in range(delays.shape[1]):
            slot_delays = delays[:, k]
            d = int(slot_delays[0])
            if np.all(slot_delays == d):
                faded_alphabet[:, :, d : d + symbol_samples] += (
                    gains[:, k, np.newaxis, np.newaxis] * waveforms[np.newaxis, :, :]
                )
                continue
            for t in range(frames):
                g = gains[t, k]
                if g == 0.0:
                    continue
                d = int(slot_delays[t])
                faded_alphabet[t, :, d : d + symbol_samples] += g * waveforms
        gathered = faded_alphabet[np.arange(frames)[:, np.newaxis], symbols]
        return gathered.reshape(frames, symbols.shape[1] * window_samples)

    def _received_batch(
        self, faded: np.ndarray, snr_db: float,
        unit_noise: tuple[np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """Per-frame-SNR noise for the whole batch (in place; ``faded`` is dead)."""
        return add_noise_for_snr_batch(
            faded, snr_db,
            signal_power=measure_signal_power_batch(faded),
            unit_noise=unit_noise,
            out=faded,
        )

    @staticmethod
    def _count_errors(
        detected: np.ndarray, tx_symbols: np.ndarray
    ) -> tuple[int, int]:
        """Aggregate (symbols sent, symbol errors) over a decision batch."""
        n = min(detected.shape[1], tx_symbols.shape[1])
        errors = int(np.count_nonzero(detected[:, :n] != tx_symbols[:, :n]))
        return detected.shape[0] * n, errors

    # ------------------------------------------------------------------ #
    # draw / compute halves: the draw half consumes the RNG stream (in
    # per-frame order), the compute half is pure deterministic arithmetic —
    # which is what lets run_curve overlap the two across SNR points.
    # ------------------------------------------------------------------ #
    def _prepare_dsss(self, num_symbols: int, num_frames: int):
        """All random draws for one DS-SS SNR point (stream-order locked)."""
        check_integer("num_symbols", num_symbols, minimum=1)
        check_integer("num_frames", num_frames, minimum=1)
        with span("engine.link.draw", scheme="DSSS", frames=num_frames):
            symbols_per_frame = max(1, num_symbols // num_frames)
            # pilot + payload symbols, each followed by a guard interval
            pilot_symbols = 1 if self.transmitter.pilot_symbol is not None else 0
            frame_samples = (
                (symbols_per_frame + pilot_symbols)
                * self.transmitter.samples_per_symbol_period
            )
            channels, tx_symbols, unit_noise = self._draw_frames(
                num_frames, symbols_per_frame, self.config.walsh_symbols, frame_samples
            )
            full_symbols = tx_symbols
            if pilot_symbols:
                pilot = np.full((num_frames, 1), self.transmitter.pilot_symbol, dtype=np.int64)
                full_symbols = np.concatenate([pilot, tx_symbols], axis=1)
            return channels, tx_symbols, full_symbols, unit_noise

    def _finish_dsss(self, prepared, snr_db: float) -> LinkResult:
        """Deterministic arithmetic for one DS-SS SNR point."""
        channels, tx_symbols, full_symbols, unit_noise = prepared
        with span("engine.link.compute", scheme="DSSS", snr_db=snr_db):
            modulator = self.transmitter.modulator
            faded = self._faded_stream(
                channels, full_symbols, modulator.waveforms, modulator.samples_per_symbol
            )
            if faded is None:
                faded = apply_channel_batch(modulator.modulate_batch(full_symbols), channels)
            received = self._received_batch(faded, snr_db, unit_noise)
            output = self.receiver.receive_batch(received)
            sent, errors = self._count_errors(output.symbols, tx_symbols)
        return LinkResult(scheme="DSSS", snr_db=snr_db, symbols_sent=sent, symbol_errors=errors)

    def _prepare_fsk(self, num_symbols: int, num_frames: int):
        """All random draws for one FSK SNR point (stream-order locked)."""
        check_integer("num_symbols", num_symbols, minimum=1)
        check_integer("num_frames", num_frames, minimum=1)
        with span("engine.link.draw", scheme="FSK", frames=num_frames):
            symbols_per_frame = max(1, num_symbols // num_frames)
            frame_samples = symbols_per_frame * self.fsk.samples_per_symbol
            channels, tx_symbols, unit_noise = self._draw_frames(
                num_frames, symbols_per_frame, self.fsk.alphabet_size, frame_samples
            )
            return channels, tx_symbols, unit_noise

    def _finish_fsk(self, prepared, snr_db: float) -> LinkResult:
        """Deterministic arithmetic for one FSK SNR point."""
        channels, tx_symbols, unit_noise = prepared
        with span("engine.link.compute", scheme="FSK", snr_db=snr_db):
            faded = self._faded_stream(
                channels, tx_symbols, self.fsk.tones, self.fsk.samples_per_symbol
            )
            if faded is None:
                faded = apply_channel_batch(self.fsk.modulate_batch(tx_symbols), channels)
            received = self._received_batch(faded, snr_db, unit_noise)
            result = self.fsk.demodulate_batch(received)
            sent, errors = self._count_errors(result.symbols, tx_symbols)
        return LinkResult(scheme="FSK", snr_db=snr_db, symbols_sent=sent, symbol_errors=errors)

    def _halves(self, scheme: str):
        scheme_lower = scheme.lower()
        if scheme_lower in ("dsss", "ds-ss", "ds_cdma", "dscdma"):
            return self._prepare_dsss, self._finish_dsss
        if scheme_lower == "fsk":
            return self._prepare_fsk, self._finish_fsk
        raise ValueError(f"unknown scheme {scheme!r}; expected 'DSSS' or 'FSK'")

    # ------------------------------------------------------------------ #
    def run_dsss(self, snr_db: float, num_symbols: int, num_frames: int = 10) -> LinkResult:
        """Simulate the DS-SS + MP + RAKE chain at one SNR point, batched."""
        return self._finish_dsss(self._prepare_dsss(num_symbols, num_frames), snr_db)

    def run_fsk(self, snr_db: float, num_symbols: int, num_frames: int = 10) -> LinkResult:
        """Simulate the non-coherent FSK chain at one SNR point, batched."""
        return self._finish_fsk(self._prepare_fsk(num_symbols, num_frames), snr_db)

    def run(self, scheme: str, snr_db: float, num_symbols: int, num_frames: int = 10) -> LinkResult:
        """Dispatch to :meth:`run_dsss` or :meth:`run_fsk` by scheme name."""
        prepare, finish = self._halves(scheme)
        return finish(prepare(num_symbols, num_frames), snr_db)

    def run_curve(
        self,
        scheme: str,
        snr_points_db: list[float],
        num_symbols: int,
        num_frames: int = 10,
    ) -> list[LinkResult]:
        """Evaluate a whole SER-vs-SNR curve with draw/compute overlap.

        The random draws of successive SNR points must stay in stream order
        (that is the seed-lock), but each point's arithmetic never touches
        the generator — so the curve runs as a two-stage pipeline: the main
        thread draws point ``t+1`` while a worker thread computes point ``t``
        (NumPy's generator fills and array ops release the GIL).  At most
        two points' draws are in flight, so memory stays bounded no matter
        how long the curve is.  Results are identical to sequential
        :meth:`run` calls, point for point.
        """
        prepare, finish = self._halves(scheme)
        results: list[LinkResult] = []
        with span("engine.link.curve", scheme=scheme, points=len(snr_points_db)):
            with ThreadPoolExecutor(max_workers=1) as executor:
                pending: deque = deque()
                for snr in snr_points_db:
                    prepared = prepare(num_symbols, num_frames)
                    while len(pending) >= 2:
                        results.append(pending.popleft().result())
                    # copy_context: the worker thread's compute spans nest
                    # under this curve span instead of vanishing
                    ctx = contextvars.copy_context()
                    pending.append(executor.submit(ctx.run, finish, prepared, snr))
                results.extend(future.result() for future in pending)
        return results
