"""AquaModem design parameters (Table 1) and their derived quantities.

The paper fixes the MP input sizes from the AquaModem's waveform design:

=============================  =======  ==============================
Walsh symbol length            Nw       8 symbols
m-sequence length              Lpn      7 chips
Chip duration                  Tc       0.2 ms
Sampling interval              Ts=Tc/2  0.1 ms
Symbol duration                Tsym     Lpn*Nw*Tc = 11.2 ms
Time guard interval            Tg       Tsym = 11.2 ms
Samples per symbol             Ns       Tsym/Ts = 112
Samples per time guard         Nt       Tg/Ts = 112
Total receive vector samples   Rv       Ns + Nt = 224
=============================  =======  ==============================

:class:`AquaModemConfig` encodes the three primary parameters (and the
carrier/waveform constraints behind them) and derives everything else, so the
whole Table 1 is regenerated from first principles by the E1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_integer, check_positive

__all__ = ["AquaModemConfig"]


@dataclass(frozen=True)
class AquaModemConfig:
    """Configuration of the DS-SS AquaModem waveform.

    Parameters
    ----------
    walsh_symbols:
        ``Nw`` — number of orthogonal Walsh symbols (and Walsh code length).
    spreading_chips:
        ``Lpn`` — m-sequence length in chips.
    chip_duration_s:
        ``Tc`` — chip duration in seconds.
    samples_per_chip:
        Oversampling factor (2 => ``Ts = Tc/2``, Nyquist for the chip rate).
    guard_factor:
        Guard interval as a multiple of the symbol duration (1.0 in Table 1).
    num_paths:
        ``Nf`` — number of channel paths estimated by MP (6 from the Moorea
        field tests).
    carrier_frequency_hz:
        Acoustic carrier frequency (the AquaModem family operates around
        24 kHz); used by the propagation models, not by the baseband maths.
    multipath_spread_s:
        Design assumption for the shallow-water multipath spread (10 ms);
        the symbol duration must exceed it.
    """

    walsh_symbols: int = 8
    spreading_chips: int = 7
    chip_duration_s: float = 0.2e-3
    samples_per_chip: int = 2
    guard_factor: float = 1.0
    num_paths: int = 6
    carrier_frequency_hz: float = 24_000.0
    multipath_spread_s: float = 10e-3

    def __post_init__(self) -> None:
        check_integer("walsh_symbols", self.walsh_symbols, minimum=2)
        if self.walsh_symbols & (self.walsh_symbols - 1) != 0:
            raise ValueError(f"walsh_symbols must be a power of two, got {self.walsh_symbols}")
        check_integer("spreading_chips", self.spreading_chips, minimum=1)
        check_positive("chip_duration_s", self.chip_duration_s)
        check_integer("samples_per_chip", self.samples_per_chip, minimum=1)
        if self.guard_factor < 0:
            raise ValueError(f"guard_factor must be >= 0, got {self.guard_factor}")
        check_integer("num_paths", self.num_paths, minimum=1)
        check_positive("carrier_frequency_hz", self.carrier_frequency_hz)
        check_positive("multipath_spread_s", self.multipath_spread_s)

    # ------------------------------------------------------------------ #
    # Table 1 derived quantities
    # ------------------------------------------------------------------ #
    @property
    def chips_per_symbol(self) -> int:
        """Total chips per composite waveform: ``Nw * Lpn`` (56)."""
        return self.walsh_symbols * self.spreading_chips

    @property
    def sampling_interval_s(self) -> float:
        """``Ts = Tc / samples_per_chip`` (0.1 ms)."""
        return self.chip_duration_s / self.samples_per_chip

    @property
    def sampling_rate_hz(self) -> float:
        """Baseband sampling rate ``1 / Ts`` (10 kHz)."""
        return 1.0 / self.sampling_interval_s

    @property
    def symbol_duration_s(self) -> float:
        """``Tsym = Lpn * Nw * Tc`` (11.2 ms)."""
        return self.chips_per_symbol * self.chip_duration_s

    @property
    def guard_duration_s(self) -> float:
        """``Tg = guard_factor * Tsym`` (11.2 ms)."""
        return self.guard_factor * self.symbol_duration_s

    @property
    def samples_per_symbol(self) -> int:
        """``Ns = Tsym / Ts`` (112)."""
        return self.chips_per_symbol * self.samples_per_chip

    @property
    def samples_per_guard(self) -> int:
        """``Nt = Tg / Ts`` (112)."""
        return int(round(self.samples_per_symbol * self.guard_factor))

    @property
    def receive_vector_samples(self) -> int:
        """``Rv = Ns + Nt`` (224)."""
        return self.samples_per_symbol + self.samples_per_guard

    @property
    def total_symbol_period_s(self) -> float:
        """Time between successive receive vectors: ``Tsym + Tg`` (22.4 ms)."""
        return self.symbol_duration_s + self.guard_duration_s

    @property
    def bits_per_symbol(self) -> int:
        """log2(Nw) (3 bits)."""
        return self.walsh_symbols.bit_length() - 1

    @property
    def raw_bit_rate_bps(self) -> float:
        """Raw data rate: bits per symbol over the full symbol period (~134 bps)."""
        return self.bits_per_symbol / self.total_symbol_period_s

    @property
    def bandwidth_hz(self) -> float:
        """Occupied bandwidth, approximately the chip rate (5 kHz)."""
        return 1.0 / self.chip_duration_s

    @property
    def multipath_spread_samples(self) -> int:
        """The 10 ms design multipath spread expressed in samples."""
        return int(round(self.multipath_spread_s / self.sampling_interval_s))

    # ------------------------------------------------------------------ #
    def validate_waveform_design(self) -> None:
        """Check the waveform design rules stated in Section III.

        * the symbol duration must exceed the multipath spread (so the guard
          interval can absorb it), and
        * the sampling rate must be at least twice the chip rate (Nyquist).
        Raises ``ValueError`` if either rule is violated.
        """
        if self.symbol_duration_s <= self.multipath_spread_s:
            raise ValueError(
                f"symbol duration {self.symbol_duration_s * 1e3:.2f} ms does not exceed "
                f"the multipath spread {self.multipath_spread_s * 1e3:.2f} ms"
            )
        if self.samples_per_chip < 2:
            raise ValueError("sampling must be at least twice the chip rate (Nyquist)")

    def table1_rows(self) -> list[tuple[str, str, float | int]]:
        """The rows of Table 1 as (quantity, symbol, value-in-paper-units)."""
        return [
            ("Walsh symbol length", "Nw", self.walsh_symbols),
            ("m-sequence length", "Lpn", self.spreading_chips),
            ("Chip duration (ms)", "Tc", self.chip_duration_s * 1e3),
            ("Sampling interval (ms)", "Ts", self.sampling_interval_s * 1e3),
            ("Symbol duration (ms)", "Tsym", self.symbol_duration_s * 1e3),
            ("Time guard interval (ms)", "Tg", self.guard_duration_s * 1e3),
            ("Samples/symbol", "Ns", self.samples_per_symbol),
            ("Samples/time guard", "Nt", self.samples_per_guard),
            ("Total receive vector samples", "Rv", self.receive_vector_samples),
        ]
