"""Per-packet modem energy budget.

The paper's argument is that the signal-processing platform's energy matters
for the overall modem budget.  This module puts the platform's
energy-per-channel-estimation (from :mod:`repro.hardware`) next to the other
per-packet costs — transmit acoustic power, receive front-end power — so the
sensor-network lifetime experiment (E9) can attribute node energy to its
components and show how the platform choice changes deployment lifetime.

All costs are parameterised; defaults are representative of a short-range,
low-power modem of the class the paper targets (fractions of a watt of
electrical transmit power over a few hundred metres, tens of milliwatts of
receive electronics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.modem.config import AquaModemConfig
from repro.utils.validation import check_integer, check_non_negative

__all__ = ["PacketEnergyBreakdown", "ModemEnergyBudget"]


@dataclass(frozen=True)
class PacketEnergyBreakdown:
    """Energy of one packet transaction, split by component (joules)."""

    transmit_j: float
    receive_frontend_j: float
    processing_j: float

    @property
    def total_j(self) -> float:
        """Total packet energy."""
        return self.transmit_j + self.receive_frontend_j + self.processing_j

    @property
    def processing_fraction(self) -> float:
        """Share of the packet energy spent in signal processing."""
        total = self.total_j
        return self.processing_j / total if total > 0 else 0.0


@dataclass
class ModemEnergyBudget:
    """Energy accounting for one modem design.

    Parameters
    ----------
    config:
        Waveform configuration (sets symbol durations).
    transmit_power_w:
        Electrical power while transmitting (transducer + power amplifier).
    receive_frontend_power_w:
        Power of the analog receive front end (pre-amp, ADC) while listening.
    processing_energy_per_estimation_j:
        Energy of one channel estimation on the chosen hardware platform
        (from :mod:`repro.hardware`).
    processing_idle_power_w:
        Idle power of the processing platform while the node listens.
    estimations_per_symbol:
        Channel estimations run per received symbol (1 = re-estimate every
        symbol, the conservative mode; smaller effective values can be
        modelled by scaling).
    """

    config: AquaModemConfig = field(default_factory=AquaModemConfig)
    transmit_power_w: float = 2.0
    receive_frontend_power_w: float = 0.05
    processing_energy_per_estimation_j: float = 9.5e-6
    processing_idle_power_w: float = 0.01
    estimations_per_symbol: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("transmit_power_w", self.transmit_power_w)
        check_non_negative("receive_frontend_power_w", self.receive_frontend_power_w)
        check_non_negative(
            "processing_energy_per_estimation_j", self.processing_energy_per_estimation_j
        )
        check_non_negative("processing_idle_power_w", self.processing_idle_power_w)
        check_non_negative("estimations_per_symbol", self.estimations_per_symbol)

    # ------------------------------------------------------------------ #
    def packet_duration_s(self, num_symbols: int) -> float:
        """Airtime of a packet of ``num_symbols`` symbols (including guard times)."""
        check_integer("num_symbols", num_symbols, minimum=1)
        return num_symbols * self.config.total_symbol_period_s

    def transmit_energy_j(self, num_symbols: int) -> float:
        """Energy to transmit a packet of ``num_symbols`` symbols."""
        return self.transmit_power_w * self.packet_duration_s(num_symbols)

    def receive_energy_j(self, num_symbols: int) -> PacketEnergyBreakdown:
        """Energy to receive (and process) a packet of ``num_symbols`` symbols.

        The front end listens for the whole packet duration; the processing
        platform performs ``estimations_per_symbol`` channel estimations per
        symbol and idles otherwise.
        """
        duration = self.packet_duration_s(num_symbols)
        frontend = self.receive_frontend_power_w * duration
        estimations = self.estimations_per_symbol * num_symbols
        processing = (
            estimations * self.processing_energy_per_estimation_j
            + self.processing_idle_power_w * duration
        )
        return PacketEnergyBreakdown(
            transmit_j=0.0,
            receive_frontend_j=frontend,
            processing_j=processing,
        )

    def packet_transaction_energy_j(
        self, num_symbols: int, transmit: bool, receive: bool
    ) -> PacketEnergyBreakdown:
        """Energy for one node's role in one packet (transmit and/or receive)."""
        tx = self.transmit_energy_j(num_symbols) if transmit else 0.0
        rx = (
            self.receive_energy_j(num_symbols)
            if receive
            else PacketEnergyBreakdown(0.0, 0.0, 0.0)
        )
        return PacketEnergyBreakdown(
            transmit_j=tx,
            receive_frontend_j=rx.receive_frontend_j,
            processing_j=rx.processing_j,
        )

    def idle_power_w(self) -> float:
        """Node power while neither transmitting nor receiving a packet.

        The front end stays on (the node must be able to hear incoming
        packets) and the processing platform idles.
        """
        return self.receive_frontend_power_w + self.processing_idle_power_w
