"""Frame synchronisation: finding where the pilot symbol starts.

The receiver chain in :mod:`repro.modem.receiver` assumes the receive windows
are already aligned to the symbol boundaries — which is what the MP timing
grid provides once the frame start is known.  In a real deployment the modem
must first *acquire* the frame: detect that a packet is present and estimate
its start sample.  The standard approach (also used by the AquaModem family's
DS-SS acquisition, Stojanovic & Freitag [27]) is a sliding correlation against
the known pilot waveform followed by a peak test.

:class:`FrameSynchronizer` implements that acquisition:

* correlate the incoming stream against the pilot waveform (FFT-based),
* normalise by the local received energy so the detection threshold is an
  SNR-like quantity independent of the absolute receive level,
* report the peak position (the frame-start estimate) and whether it exceeds
  the detection threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.matched_filter import correlate_full
from repro.utils.validation import check_in_range, ensure_1d_array

__all__ = ["SynchronizationResult", "FrameSynchronizer"]


@dataclass(frozen=True)
class SynchronizationResult:
    """Outcome of one acquisition attempt."""

    detected: bool
    start_index: int
    peak_metric: float
    correlation_magnitude: np.ndarray

    @property
    def num_candidates(self) -> int:
        """Number of correlation lags examined."""
        return int(self.correlation_magnitude.shape[0])


@dataclass
class FrameSynchronizer:
    """Sliding-correlation frame acquisition.

    Parameters
    ----------
    pilot_waveform:
        The known pilot symbol waveform (real, ±1 samples for the AquaModem).
    detection_threshold:
        Minimum normalised correlation (0..1) for a detection; 0.3-0.5 is a
        reasonable operating point for the 112-sample pilot at the SNRs the
        modem targets.
    """

    pilot_waveform: np.ndarray
    detection_threshold: float = 0.4

    def __post_init__(self) -> None:
        self.pilot_waveform = ensure_1d_array(
            "pilot_waveform", self.pilot_waveform, dtype=np.float64
        )
        if self.pilot_waveform.shape[0] < 2:
            raise ValueError("pilot waveform must contain at least two samples")
        check_in_range("detection_threshold", self.detection_threshold, 0.0, 1.0)
        self._pilot_energy = float(np.sum(self.pilot_waveform**2))
        if self._pilot_energy == 0.0:
            raise ValueError("pilot waveform has zero energy")

    # ------------------------------------------------------------------ #
    def correlation_profile(self, received: np.ndarray) -> np.ndarray:
        """Normalised correlation magnitude at every candidate start sample.

        Entry ``k`` is the correlation of ``received[k : k + L]`` with the
        pilot, normalised by the pilot energy and the local received energy —
        1.0 for a perfectly aligned, noise-free, single-path pilot.
        """
        received = ensure_1d_array("received", received, dtype=np.complex128)
        length = self.pilot_waveform.shape[0]
        if received.shape[0] < length:
            raise ValueError(
                f"received stream ({received.shape[0]} samples) shorter than the pilot ({length})"
            )
        # full correlation; lag k + L - 1 corresponds to alignment at sample k
        full = correlate_full(received, self.pilot_waveform)
        num_candidates = received.shape[0] - length + 1
        aligned = full[length - 1 : length - 1 + num_candidates]

        # local energy of each candidate window (vectorised running sum);
        # silent windows are floored at a small fraction of the stream's mean
        # energy so numerical residue from the FFT correlation cannot produce
        # spurious near-unity metrics in all-zero regions
        power = np.abs(received) ** 2
        cumulative = np.concatenate([[0.0], np.cumsum(power)])
        window_energy = cumulative[length:] - cumulative[:-length]
        energy_floor = max(1e-6 * float(np.mean(power)) * length, 1e-30)
        denom = np.sqrt(self._pilot_energy * np.maximum(window_energy, energy_floor))
        return np.abs(aligned) / denom

    def acquire(self, received: np.ndarray) -> SynchronizationResult:
        """Detect the pilot and estimate the frame-start sample.

        The frame start is the *earliest* lag whose correlation comes within a
        few percent of the global peak: payload symbols that reuse the pilot
        waveform (symbol index 0 carries data too) produce equally strong
        correlation peaks later in the frame, and the receiver must lock onto
        the first one.
        """
        profile = self.correlation_profile(received)
        peak = float(np.max(profile))
        near_peak = np.nonzero(profile >= 0.95 * peak)[0]
        start = int(near_peak[0]) if near_peak.size else int(np.argmax(profile))
        return SynchronizationResult(
            detected=peak >= self.detection_threshold,
            start_index=start,
            peak_metric=float(profile[start]),
            correlation_magnitude=profile,
        )

    def align(self, received: np.ndarray) -> np.ndarray:
        """Return the received stream trimmed to start at the detected frame start.

        Raises ``ValueError`` if no pilot is detected above the threshold.
        """
        result = self.acquire(received)
        if not result.detected:
            raise ValueError(
                f"no pilot detected (peak metric {result.peak_metric:.3f} below "
                f"threshold {self.detection_threshold})"
            )
        received = ensure_1d_array("received", received, dtype=np.complex128)
        return received[result.start_index :]
