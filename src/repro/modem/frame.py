"""Bit <-> symbol packing for the M-ary modem alphabet.

The AquaModem alphabet carries 3 bits per symbol (8 orthogonal waveforms).
These helpers pack a bit stream into symbol indices and back, padding with
zero bits when the stream length is not a multiple of the symbol size.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_integer, ensure_1d_array

__all__ = ["bits_to_symbols", "symbols_to_bits", "random_bits", "bit_errors"]


def bits_to_symbols(bits: np.ndarray, bits_per_symbol: int) -> np.ndarray:
    """Pack a 0/1 bit array into symbol indices (MSB first), zero-padded.

    Parameters
    ----------
    bits:
        Array of 0/1 values.
    bits_per_symbol:
        Number of bits per symbol (3 for the 8-ary AquaModem alphabet).
    """
    bits = ensure_1d_array("bits", bits, dtype=np.int64)
    check_integer("bits_per_symbol", bits_per_symbol, minimum=1)
    if bits.size and not np.all(np.isin(bits, (0, 1))):
        raise ValueError("bits must contain only 0 and 1")
    remainder = bits.shape[0] % bits_per_symbol
    if remainder:
        bits = np.concatenate([bits, np.zeros(bits_per_symbol - remainder, dtype=np.int64)])
    if bits.size == 0:
        return np.zeros(0, dtype=np.int64)
    groups = bits.reshape(-1, bits_per_symbol)
    weights = 1 << np.arange(bits_per_symbol - 1, -1, -1)
    return (groups * weights).sum(axis=1).astype(np.int64)


def symbols_to_bits(symbols: np.ndarray, bits_per_symbol: int) -> np.ndarray:
    """Unpack symbol indices back into a 0/1 bit array (MSB first)."""
    symbols = ensure_1d_array("symbols", symbols, dtype=np.int64)
    check_integer("bits_per_symbol", bits_per_symbol, minimum=1)
    if symbols.size and (symbols.min() < 0 or symbols.max() >= (1 << bits_per_symbol)):
        raise ValueError("symbol index out of range for the given bits_per_symbol")
    if symbols.size == 0:
        return np.zeros(0, dtype=np.int64)
    shifts = np.arange(bits_per_symbol - 1, -1, -1)
    return ((symbols[:, None] >> shifts) & 1).reshape(-1).astype(np.int64)


def random_bits(count: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Draw ``count`` uniformly random bits."""
    check_integer("count", count, minimum=0)
    rng = as_rng(rng)
    return rng.integers(0, 2, size=count).astype(np.int64)


def bit_errors(sent: np.ndarray, received: np.ndarray) -> int:
    """Count differing positions between two equal-length bit arrays."""
    sent = ensure_1d_array("sent", sent, dtype=np.int64)
    received = ensure_1d_array("received", received, dtype=np.int64, length=sent.shape[0])
    return int(np.count_nonzero(sent != received))
