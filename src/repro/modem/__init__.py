"""Underwater acoustic modem physical layer.

Puts the DSP, channel and core subpackages together into an end-to-end DS-SS
modem modelled on the UCSB AquaModem whose design parameters define the MP
input sizes (Table 1):

* :mod:`repro.modem.config` — :class:`AquaModemConfig`, Table 1 and every
  derived quantity (samples per symbol, receive-vector length, data rate);
* :mod:`repro.modem.frame` — bit <-> symbol packing for 8-ary symbols;
* :mod:`repro.modem.transmitter` / :mod:`repro.modem.receiver` — the DS-SS
  transmit chain and the MP + RAKE receive chain;
* :mod:`repro.modem.link` — Monte-Carlo link simulation (SER vs SNR) for the
  DS-SS and FSK schemes (experiment E7);
* :mod:`repro.modem.energy_budget` — per-packet transmit / receive / signal
  processing energy, parameterised by the hardware platform (feeds the
  sensor-network lifetime experiment E9).
"""

from repro.modem.config import AquaModemConfig
from repro.modem.frame import bits_to_symbols, symbols_to_bits, random_bits
from repro.modem.transmitter import Transmitter
from repro.modem.receiver import BatchReceiverOutput, Receiver, ReceiverOutput
from repro.modem.link import LinkSimulator, LinkResult, symbol_error_rate_curve
from repro.modem.batch import BatchLinkEngine
from repro.modem.energy_budget import ModemEnergyBudget, PacketEnergyBreakdown
from repro.modem.synchronization import FrameSynchronizer, SynchronizationResult

__all__ = [
    "AquaModemConfig",
    "bits_to_symbols",
    "symbols_to_bits",
    "random_bits",
    "Transmitter",
    "Receiver",
    "ReceiverOutput",
    "BatchReceiverOutput",
    "BatchLinkEngine",
    "LinkSimulator",
    "LinkResult",
    "symbol_error_rate_curve",
    "ModemEnergyBudget",
    "PacketEnergyBreakdown",
    "FrameSynchronizer",
    "SynchronizationResult",
]
