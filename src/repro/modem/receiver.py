"""DS-SS receive chain: MP channel estimation + RAKE combining + detection.

The receiver mirrors the AquaModem structure the paper describes: the pilot
symbol's receive window (symbol + guard interval = the 224-sample receive
vector of Table 1) is fed to the Matching Pursuits channel estimator; the
resulting sparse channel is used to RAKE-combine every payload window before
correlating against the symbol alphabet.

The channel estimator backend is pluggable: the floating-point reference, the
fixed-point model or the IP-core simulator can all be used, which is how the
end-to-end integration tests check that the hardware-accurate datapath does
not degrade the link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.matching_pursuit import (
    BatchMatchingPursuitResult,
    MatchingPursuitResult,
    matching_pursuit,
    matching_pursuit_batch,
)
from repro.dsp.modulation.dsss import DSSSModulator
from repro.dsp.signal_matrix import SignalMatrices, build_signal_matrices
from repro.modem.config import AquaModemConfig
from repro.modem.frame import symbols_to_bits
from repro.utils.validation import ensure_1d_array, ensure_2d_array

__all__ = ["Receiver", "ReceiverOutput", "BatchReceiverOutput"]

#: Signature of a pluggable channel estimator.
ChannelEstimator = Callable[[np.ndarray, SignalMatrices, int], MatchingPursuitResult]


def _default_estimator(received: np.ndarray, matrices: SignalMatrices, num_paths: int) -> MatchingPursuitResult:
    return matching_pursuit(received, matrices, num_paths=num_paths)


@dataclass
class ReceiverOutput:
    """Everything the receiver recovered from one frame."""

    symbols: np.ndarray
    bits: np.ndarray
    channel_estimate: MatchingPursuitResult | None
    scores: np.ndarray

    @property
    def num_symbols(self) -> int:
        """Number of detected payload symbols."""
        return int(self.symbols.shape[0])


@dataclass
class BatchReceiverOutput:
    """Everything the receiver recovered from a stack of frames.

    Attributes
    ----------
    symbols:
        ``(frames, payload_symbols)`` detected symbol indices.
    bits:
        ``(frames, payload_symbols * bits_per_symbol)`` unpacked bits.
    channel_estimates:
        Batched channel estimate (one row per frame), or ``None`` when the
        receiver runs without a pilot.
    scores:
        ``(frames, payload_symbols, alphabet)`` decision statistics.
    """

    symbols: np.ndarray
    bits: np.ndarray
    channel_estimates: BatchMatchingPursuitResult | None
    scores: np.ndarray

    @property
    def num_frames(self) -> int:
        """Number of frames in the batch."""
        return int(self.symbols.shape[0])

    def __getitem__(self, frame: int) -> ReceiverOutput:
        """The output of one frame as a plain :class:`ReceiverOutput`."""
        estimate = (
            self.channel_estimates[frame] if self.channel_estimates is not None else None
        )
        return ReceiverOutput(
            symbols=self.symbols[frame],
            bits=self.bits[frame],
            channel_estimate=estimate,
            scores=self.scores[frame],
        )


@dataclass
class Receiver:
    """DS-SS receiver with Matching Pursuits channel estimation.

    Parameters
    ----------
    config:
        Waveform configuration (must match the transmitter's).
    pilot_symbol:
        The known pilot index; ``None`` disables channel estimation and the
        receiver falls back to single-path matched filtering.
    estimator:
        Channel-estimator callable ``(received_window, matrices, num_paths) ->
        MatchingPursuitResult``; defaults to the floating-point reference MP.
    path_magnitude_threshold:
        Estimated paths weaker than this fraction of the strongest path are
        discarded before RAKE combining (avoids combining pure noise taps).
    """

    config: AquaModemConfig = field(default_factory=AquaModemConfig)
    pilot_symbol: int | None = 0
    estimator: ChannelEstimator = _default_estimator
    path_magnitude_threshold: float = 0.1

    def __post_init__(self) -> None:
        self.modulator = DSSSModulator(
            num_symbols=self.config.walsh_symbols,
            spreading_length=self.config.spreading_chips,
            samples_per_chip=self.config.samples_per_chip,
            guard_factor=self.config.guard_factor,
        )
        if self.pilot_symbol is not None:
            pilot_waveform = self.modulator.waveforms[self.pilot_symbol].astype(np.float64)
            self.matrices = build_signal_matrices(pilot_waveform)
        else:
            self.matrices = None

    # ------------------------------------------------------------------ #
    def estimate_channel(self, pilot_window: np.ndarray) -> MatchingPursuitResult:
        """Run the configured channel estimator on the pilot receive window."""
        if self.matrices is None:
            raise ValueError("receiver was configured without a pilot; no channel estimation")
        pilot_window = ensure_1d_array(
            "pilot_window", pilot_window, dtype=np.complex128,
            length=self.matrices.window_length,
        )
        return self.estimator(pilot_window, self.matrices, self.config.num_paths)

    def _selected_paths(self, estimate: MatchingPursuitResult) -> tuple[np.ndarray, np.ndarray]:
        """Threshold the estimated paths for RAKE combining."""
        magnitudes = np.abs(estimate.path_gains)
        peak = magnitudes.max() if magnitudes.size else 0.0
        if peak == 0.0:
            return np.array([0], dtype=np.int64), np.array([1.0 + 0.0j])
        keep = magnitudes >= self.path_magnitude_threshold * peak
        return estimate.path_indices[keep], estimate.path_gains[keep]

    def receive(self, samples: np.ndarray) -> ReceiverOutput:
        """Demodulate a frame produced by :class:`repro.modem.transmitter.Transmitter`.

        The first receive window is treated as the pilot (when configured);
        the remaining windows are payload.
        """
        samples = ensure_1d_array("samples", samples, dtype=np.complex128)
        windows = self.modulator.receive_windows(samples)
        if windows.shape[0] == 0:
            raise ValueError("sample stream shorter than one receive window")

        channel_estimate: MatchingPursuitResult | None = None
        payload = windows
        path_delays = np.array([0], dtype=np.int64)
        path_gains = np.array([1.0 + 0.0j])

        if self.pilot_symbol is not None:
            channel_estimate = self.estimate_channel(windows[0])
            path_delays, path_gains = self._selected_paths(channel_estimate)
            payload = windows[1:]

        flat = payload.reshape(-1)
        result = self.modulator.demodulate(flat, path_delays=path_delays, path_gains=path_gains)
        bits = symbols_to_bits(result.symbols, self.config.bits_per_symbol)
        return ReceiverOutput(
            symbols=result.symbols,
            bits=bits,
            channel_estimate=channel_estimate,
            scores=result.scores,
        )

    # ------------------------------------------------------------------ #
    # Batched receive chain
    # ------------------------------------------------------------------ #
    def estimate_channel_batch(self, pilot_windows: np.ndarray) -> BatchMatchingPursuitResult:
        """Estimate every frame's channel from a ``(frames, window)`` stack.

        With the default estimator this is one :func:`matching_pursuit_batch`
        call; a custom (e.g. fixed-point or IP-core) estimator is applied per
        frame and the results are stacked, so pluggable backends keep working.
        """
        if self.matrices is None:
            raise ValueError("receiver was configured without a pilot; no channel estimation")
        pilot_windows = ensure_2d_array(
            "pilot_windows", pilot_windows, dtype=np.complex128,
            shape=(None, self.matrices.window_length),
        )
        if self.estimator is _default_estimator:
            return matching_pursuit_batch(
                pilot_windows, self.matrices, num_paths=self.config.num_paths
            )
        results = [
            self.estimator(window, self.matrices, self.config.num_paths)
            for window in pilot_windows
        ]
        return BatchMatchingPursuitResult.from_results(results, self.matrices.num_delays)

    def _selected_paths_batch(
        self, estimates: BatchMatchingPursuitResult
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_selected_paths`: ``(frames, num_paths)`` profiles.

        Instead of per-frame variable-length tap lists, below-threshold paths
        keep their delay but get a zero gain — RAKE-combining a zero-gain tap
        adds exact zeros, so the combined windows are identical to combining
        the thresholded list.  Frames whose estimate is all-zero fall back to
        the single unit-gain tap at delay 0, as in the per-frame path.
        """
        delays = estimates.path_indices.copy()
        gains = estimates.path_gains.copy()
        magnitudes = np.abs(gains)
        peak = magnitudes.max(axis=1) if magnitudes.shape[1] else np.zeros(len(estimates))
        dropped = magnitudes < self.path_magnitude_threshold * peak[:, np.newaxis]
        gains[dropped] = 0.0
        delays[dropped] = 0  # keep the gather in-bounds; a zero-gain tap adds zero
        dead = peak == 0.0
        if np.any(dead):
            delays[dead] = 0
            gains[dead] = 0.0
            gains[dead, 0] = 1.0
        return delays, gains

    def receive_batch(self, samples: np.ndarray) -> BatchReceiverOutput:
        """Demodulate a ``(frames, frame_length)`` stack of equal-length frames.

        Per-frame results are identical to :meth:`receive` on each row; the
        pilot windows are estimated in one batched MP call, the per-frame
        RAKE profiles are applied through one gathered multiply-add, and all
        payload windows of all frames share a single decision matmul.
        """
        samples = ensure_2d_array("samples", samples, dtype=np.complex128)
        frames = samples.shape[0]
        per_symbol = self.modulator.samples_per_symbol
        num_windows = samples.shape[1] // per_symbol
        if num_windows == 0:
            raise ValueError("sample stream shorter than one receive window")
        usable = num_windows * per_symbol
        windows = samples[:, :usable].reshape(frames, num_windows, per_symbol)

        channel_estimates: BatchMatchingPursuitResult | None = None
        payload = windows
        if self.pilot_symbol is not None:
            channel_estimates = self.estimate_channel_batch(windows[:, 0, :])
            payload = windows[:, 1:, :]
        payload_symbols = payload.shape[1]
        symbol_length = self.modulator.symbol_samples

        if channel_estimates is not None:
            delays, gains = self._selected_paths_batch(channel_estimates)
        else:
            delays = np.zeros((frames, 1), dtype=np.int64)
            gains = np.ones((frames, 1), dtype=np.complex128)
        # RAKE-combine every payload window of every frame.  The profile
        # differs per frame, so taps are applied frame by frame — but each
        # application combines all of that frame's windows in one slice op,
        # and taps zeroed by the threshold are skipped outright (they add
        # exact zeros).  This is the multi-frame generalisation of
        # DSSSModulator.demodulate_windows (one frame's windows, one
        # profile); tests/modem/test_batch_equivalence.py pins the two
        # against the per-window reference so they cannot silently diverge.
        combined = np.zeros(
            (frames, payload_symbols, symbol_length), dtype=np.complex128
        )
        gains_conj = np.conj(gains)
        for t in range(frames):
            acc = combined[t]
            source = payload[t]
            for k in range(delays.shape[1]):
                g = gains_conj[t, k]
                if g == 0.0:
                    continue
                d = delays[t, k]
                acc += g * source[:, d : d + symbol_length]

        # waveforms are real, so only the real part of `combined` reaches the
        # real correlation scores — one real matmul instead of a complex one
        flat_scores = np.ascontiguousarray(
            combined.reshape(-1, symbol_length).real
        ) @ self.modulator.waveforms.T
        symbols = np.argmax(flat_scores, axis=1).astype(np.int64).reshape(
            frames, payload_symbols
        )
        scores = flat_scores.reshape(
            frames, payload_symbols, self.modulator.alphabet_size
        )
        bits = symbols_to_bits(symbols.reshape(-1), self.config.bits_per_symbol)
        return BatchReceiverOutput(
            symbols=symbols,
            bits=bits.reshape(frames, payload_symbols * self.config.bits_per_symbol),
            channel_estimates=channel_estimates,
            scores=scores,
        )
