"""DS-SS receive chain: MP channel estimation + RAKE combining + detection.

The receiver mirrors the AquaModem structure the paper describes: the pilot
symbol's receive window (symbol + guard interval = the 224-sample receive
vector of Table 1) is fed to the Matching Pursuits channel estimator; the
resulting sparse channel is used to RAKE-combine every payload window before
correlating against the symbol alphabet.

The channel estimator backend is pluggable: the floating-point reference, the
fixed-point model or the IP-core simulator can all be used, which is how the
end-to-end integration tests check that the hardware-accurate datapath does
not degrade the link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.matching_pursuit import MatchingPursuitResult, matching_pursuit
from repro.dsp.modulation.dsss import DSSSModulator
from repro.dsp.signal_matrix import SignalMatrices, build_signal_matrices
from repro.modem.config import AquaModemConfig
from repro.modem.frame import symbols_to_bits
from repro.utils.validation import ensure_1d_array

__all__ = ["Receiver", "ReceiverOutput"]

#: Signature of a pluggable channel estimator.
ChannelEstimator = Callable[[np.ndarray, SignalMatrices, int], MatchingPursuitResult]


def _default_estimator(received: np.ndarray, matrices: SignalMatrices, num_paths: int) -> MatchingPursuitResult:
    return matching_pursuit(received, matrices, num_paths=num_paths)


@dataclass
class ReceiverOutput:
    """Everything the receiver recovered from one frame."""

    symbols: np.ndarray
    bits: np.ndarray
    channel_estimate: MatchingPursuitResult | None
    scores: np.ndarray

    @property
    def num_symbols(self) -> int:
        """Number of detected payload symbols."""
        return int(self.symbols.shape[0])


@dataclass
class Receiver:
    """DS-SS receiver with Matching Pursuits channel estimation.

    Parameters
    ----------
    config:
        Waveform configuration (must match the transmitter's).
    pilot_symbol:
        The known pilot index; ``None`` disables channel estimation and the
        receiver falls back to single-path matched filtering.
    estimator:
        Channel-estimator callable ``(received_window, matrices, num_paths) ->
        MatchingPursuitResult``; defaults to the floating-point reference MP.
    path_magnitude_threshold:
        Estimated paths weaker than this fraction of the strongest path are
        discarded before RAKE combining (avoids combining pure noise taps).
    """

    config: AquaModemConfig = field(default_factory=AquaModemConfig)
    pilot_symbol: int | None = 0
    estimator: ChannelEstimator = _default_estimator
    path_magnitude_threshold: float = 0.1

    def __post_init__(self) -> None:
        self.modulator = DSSSModulator(
            num_symbols=self.config.walsh_symbols,
            spreading_length=self.config.spreading_chips,
            samples_per_chip=self.config.samples_per_chip,
            guard_factor=self.config.guard_factor,
        )
        if self.pilot_symbol is not None:
            pilot_waveform = self.modulator.waveforms[self.pilot_symbol].astype(np.float64)
            self.matrices = build_signal_matrices(pilot_waveform)
        else:
            self.matrices = None

    # ------------------------------------------------------------------ #
    def estimate_channel(self, pilot_window: np.ndarray) -> MatchingPursuitResult:
        """Run the configured channel estimator on the pilot receive window."""
        if self.matrices is None:
            raise ValueError("receiver was configured without a pilot; no channel estimation")
        pilot_window = ensure_1d_array(
            "pilot_window", pilot_window, dtype=np.complex128,
            length=self.matrices.window_length,
        )
        return self.estimator(pilot_window, self.matrices, self.config.num_paths)

    def _selected_paths(self, estimate: MatchingPursuitResult) -> tuple[np.ndarray, np.ndarray]:
        """Threshold the estimated paths for RAKE combining."""
        magnitudes = np.abs(estimate.path_gains)
        peak = magnitudes.max() if magnitudes.size else 0.0
        if peak == 0.0:
            return np.array([0], dtype=np.int64), np.array([1.0 + 0.0j])
        keep = magnitudes >= self.path_magnitude_threshold * peak
        return estimate.path_indices[keep], estimate.path_gains[keep]

    def receive(self, samples: np.ndarray) -> ReceiverOutput:
        """Demodulate a frame produced by :class:`repro.modem.transmitter.Transmitter`.

        The first receive window is treated as the pilot (when configured);
        the remaining windows are payload.
        """
        samples = ensure_1d_array("samples", samples, dtype=np.complex128)
        windows = self.modulator.receive_windows(samples)
        if windows.shape[0] == 0:
            raise ValueError("sample stream shorter than one receive window")

        channel_estimate: MatchingPursuitResult | None = None
        payload = windows
        path_delays = np.array([0], dtype=np.int64)
        path_gains = np.array([1.0 + 0.0j])

        if self.pilot_symbol is not None:
            channel_estimate = self.estimate_channel(windows[0])
            path_delays, path_gains = self._selected_paths(channel_estimate)
            payload = windows[1:]

        flat = payload.reshape(-1)
        result = self.modulator.demodulate(flat, path_delays=path_delays, path_gains=path_gains)
        bits = symbols_to_bits(result.symbols, self.config.bits_per_symbol)
        return ReceiverOutput(
            symbols=result.symbols,
            bits=bits,
            channel_estimate=channel_estimate,
            scores=result.scores,
        )
