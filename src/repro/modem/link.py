"""Monte-Carlo link-level simulation: symbol error rate vs SNR.

Experiment E7 checks the claim (Section III, citing Freitag et al.) that
DS-SS waveforms achieve lower error rates than FSK in the frequency-selective
underwater channel.  :class:`LinkSimulator` runs both schemes over the same
multipath channels and noise realisations and reports symbol error rates.

By default the simulation runs on the batched engine
(:class:`repro.modem.batch.BatchLinkEngine`), which vectorises the
Monte-Carlo loop across frames while consuming an identical RNG stream;
``batch=False`` selects the original per-frame loop, which is kept as the
executable specification (the same role :func:`matching_pursuit_naive` plays
for the vectorised Matching Pursuits) and is pinned seed-for-seed equal to
the batched engine by ``tests/modem/test_batch_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.multipath import MultipathChannel, random_sparse_channel
from repro.channel.simulator import add_noise_for_snr, apply_channel
from repro.dsp.modulation.fsk import FSKModulator
from repro.modem.config import AquaModemConfig
from repro.modem.receiver import Receiver
from repro.modem.transmitter import Transmitter
from repro.utils.rng import as_rng
from repro.utils.validation import check_integer

__all__ = ["LinkResult", "LinkSimulator", "symbol_error_rate_curve"]


@dataclass(frozen=True)
class LinkResult:
    """Outcome of one link simulation at one SNR point."""

    scheme: str
    snr_db: float
    symbols_sent: int
    symbol_errors: int

    @property
    def symbol_error_rate(self) -> float:
        """Estimated symbol error rate (errors / symbols).

        With no symbols sent the rate is undefined and reported as NaN — a
        silent 0.0 would read as "error free" in aggregated SER curves.
        """
        if self.symbols_sent == 0:
            return float("nan")
        return self.symbol_errors / self.symbols_sent


@dataclass
class LinkSimulator:
    """Monte-Carlo link simulator for the DS-SS and FSK schemes.

    Parameters
    ----------
    config:
        AquaModem waveform configuration.
    channel:
        Multipath channel; ``None`` draws a fresh random sparse channel per
        frame (matching how field conditions change between packets).
    num_channel_paths:
        Number of paths of the randomly drawn channels.
    rng:
        Seed or generator for symbols, channels and noise.
    batch:
        Run on the batched engine (default); ``False`` selects the per-frame
        reference loop.  Both paths consume the same RNG stream and return
        the same counts for a given seed.
    """

    config: AquaModemConfig = field(default_factory=AquaModemConfig)
    channel: MultipathChannel | None = None
    num_channel_paths: int = 4
    rng: np.random.Generator | int | None = None
    batch: bool = True

    def __post_init__(self) -> None:
        self.rng = as_rng(self.rng)
        self.transmitter = Transmitter(config=self.config)
        self.receiver = Receiver(config=self.config)
        self.fsk = FSKModulator(
            num_tones=self.config.walsh_symbols,
            samples_per_symbol=self.config.samples_per_symbol,
            guard_samples=self.config.samples_per_guard,
        )
        self._engine = None

    @property
    def engine(self):
        """The batched engine, sharing this simulator's RNG stream."""
        if self._engine is None:
            from repro.modem.batch import BatchLinkEngine

            self._engine = BatchLinkEngine(
                config=self.config,
                channel=self.channel,
                num_channel_paths=self.num_channel_paths,
                rng=self.rng,
                transmitter=self.transmitter,
                receiver=self.receiver,
                fsk=self.fsk,
            )
        return self._engine

    # ------------------------------------------------------------------ #
    def _draw_channel(self) -> MultipathChannel:
        if self.channel is not None:
            return self.channel
        max_delay = max(self.config.multipath_spread_samples, self.num_channel_paths * 2 + 1)
        return random_sparse_channel(
            num_paths=self.num_channel_paths,
            max_delay=max_delay,
            rng=self.rng,
        )

    def run_dsss(self, snr_db: float, num_symbols: int, num_frames: int = 10) -> LinkResult:
        """Simulate the DS-SS + MP + RAKE chain at one SNR point."""
        if self.batch:
            return self.engine.run_dsss(snr_db, num_symbols, num_frames)
        return self.run_dsss_perframe(snr_db, num_symbols, num_frames)

    def run_dsss_perframe(
        self, snr_db: float, num_symbols: int, num_frames: int = 10
    ) -> LinkResult:
        """Per-frame reference loop for the DS-SS chain (executable spec)."""
        check_integer("num_symbols", num_symbols, minimum=1)
        check_integer("num_frames", num_frames, minimum=1)
        symbols_per_frame = max(1, num_symbols // num_frames)
        errors = 0
        sent = 0
        for _ in range(num_frames):
            channel = self._draw_channel()
            tx_symbols = self.rng.integers(0, self.config.walsh_symbols, size=symbols_per_frame)
            frame = self.transmitter.transmit_symbols(tx_symbols)
            received = apply_channel(frame.samples, channel)
            received = add_noise_for_snr(received, snr_db, rng=self.rng)
            output = self.receiver.receive(received)
            n = min(output.symbols.shape[0], tx_symbols.shape[0])
            errors += int(np.count_nonzero(output.symbols[:n] != tx_symbols[:n]))
            sent += n
        return LinkResult(scheme="DSSS", snr_db=snr_db, symbols_sent=sent, symbol_errors=errors)

    def run_fsk(self, snr_db: float, num_symbols: int, num_frames: int = 10) -> LinkResult:
        """Simulate the non-coherent FSK chain at one SNR point."""
        if self.batch:
            return self.engine.run_fsk(snr_db, num_symbols, num_frames)
        return self.run_fsk_perframe(snr_db, num_symbols, num_frames)

    def run_fsk_perframe(
        self, snr_db: float, num_symbols: int, num_frames: int = 10
    ) -> LinkResult:
        """Per-frame reference loop for the FSK chain (executable spec)."""
        check_integer("num_symbols", num_symbols, minimum=1)
        check_integer("num_frames", num_frames, minimum=1)
        symbols_per_frame = max(1, num_symbols // num_frames)
        errors = 0
        sent = 0
        for _ in range(num_frames):
            channel = self._draw_channel()
            tx_symbols = self.rng.integers(0, self.fsk.alphabet_size, size=symbols_per_frame)
            samples = self.fsk.modulate(tx_symbols)
            received = apply_channel(samples, channel)
            received = add_noise_for_snr(received, snr_db, rng=self.rng)
            result = self.fsk.demodulate(received)
            n = min(result.symbols.shape[0], tx_symbols.shape[0])
            errors += int(np.count_nonzero(result.symbols[:n] != tx_symbols[:n]))
            sent += n
        return LinkResult(scheme="FSK", snr_db=snr_db, symbols_sent=sent, symbol_errors=errors)

    def run(self, scheme: str, snr_db: float, num_symbols: int, num_frames: int = 10) -> LinkResult:
        """Dispatch to :meth:`run_dsss` or :meth:`run_fsk` by scheme name."""
        scheme_lower = scheme.lower()
        if scheme_lower in ("dsss", "ds-ss", "ds_cdma", "dscdma"):
            return self.run_dsss(snr_db, num_symbols, num_frames)
        if scheme_lower == "fsk":
            return self.run_fsk(snr_db, num_symbols, num_frames)
        raise ValueError(f"unknown scheme {scheme!r}; expected 'DSSS' or 'FSK'")

    def run_curve(
        self,
        scheme: str,
        snr_points_db: list[float],
        num_symbols: int,
        num_frames: int = 10,
    ) -> list[LinkResult]:
        """SER at each SNR point (the batched engine pipelines the points)."""
        if self.batch:
            return self.engine.run_curve(scheme, snr_points_db, num_symbols, num_frames)
        return [
            self.run(scheme, snr, num_symbols, num_frames) for snr in snr_points_db
        ]


def symbol_error_rate_curve(
    scheme: str,
    snr_points_db: list[float],
    num_symbols: int = 200,
    config: AquaModemConfig | None = None,
    rng: np.random.Generator | int | None = None,
    num_frames: int = 10,
    batch: bool = True,
) -> list[LinkResult]:
    """SER at each SNR point for one scheme (one series of the E7 figure).

    ``batch=False`` runs the per-frame reference loop instead of the batched
    engine; both return identical counts for a given seed.
    """
    config = config if config is not None else AquaModemConfig()
    simulator = LinkSimulator(config=config, rng=rng, batch=batch)
    return simulator.run_curve(scheme, snr_points_db, num_symbols, num_frames)
