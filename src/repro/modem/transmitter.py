"""DS-SS transmit chain.

Bits -> 8-ary symbols -> composite Walsh x m-sequence waveforms (with a
silent guard interval after every symbol) -> complex baseband sample stream.
A known pilot symbol can be prepended; the receiver uses its receive window
for channel estimation before detecting the payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.modulation.dsss import DSSSModulator
from repro.modem.config import AquaModemConfig
from repro.modem.frame import bits_to_symbols
from repro.utils.validation import check_integer, ensure_1d_array

__all__ = ["Transmitter", "TransmitFrame"]


@dataclass
class TransmitFrame:
    """A transmitted frame: the sample stream plus the bookkeeping the tests need."""

    samples: np.ndarray
    symbols: np.ndarray
    pilot_symbol: int | None

    @property
    def num_payload_symbols(self) -> int:
        """Number of payload (non-pilot) symbols."""
        return int(self.symbols.shape[0])


@dataclass
class Transmitter:
    """DS-SS transmitter for the AquaModem waveform.

    Parameters
    ----------
    config:
        Waveform configuration (Table 1 defaults).
    pilot_symbol:
        Index of the known pilot symbol prepended to every frame for channel
        estimation; ``None`` disables the pilot.
    """

    config: AquaModemConfig = field(default_factory=AquaModemConfig)
    pilot_symbol: int | None = 0

    def __post_init__(self) -> None:
        if self.pilot_symbol is not None:
            check_integer("pilot_symbol", self.pilot_symbol, minimum=0,
                          maximum=self.config.walsh_symbols - 1)
        self.modulator = DSSSModulator(
            num_symbols=self.config.walsh_symbols,
            spreading_length=self.config.spreading_chips,
            samples_per_chip=self.config.samples_per_chip,
            guard_factor=self.config.guard_factor,
        )

    # ------------------------------------------------------------------ #
    @property
    def samples_per_symbol_period(self) -> int:
        """Samples per symbol including the guard interval (= Rv = 224)."""
        return self.modulator.samples_per_symbol

    def transmit_symbols(self, symbols: np.ndarray) -> TransmitFrame:
        """Modulate a symbol sequence (prepending the pilot if configured)."""
        symbols = ensure_1d_array("symbols", symbols, dtype=np.int64)
        if self.pilot_symbol is not None:
            full = np.concatenate([[self.pilot_symbol], symbols]).astype(np.int64)
        else:
            full = symbols
        samples = self.modulator.modulate(full)
        return TransmitFrame(samples=samples, symbols=symbols, pilot_symbol=self.pilot_symbol)

    def transmit_bits(self, bits: np.ndarray) -> TransmitFrame:
        """Pack bits into symbols and modulate them."""
        symbols = bits_to_symbols(bits, self.config.bits_per_symbol)
        return self.transmit_symbols(symbols)

    def reference_waveform(self, symbol: int | None = None) -> np.ndarray:
        """The sampled waveform of one symbol (the MP signal-matrix template).

        Defaults to the pilot symbol's waveform, which is what the receiver's
        channel estimator correlates against.
        """
        if symbol is None:
            symbol = self.pilot_symbol if self.pilot_symbol is not None else 0
        check_integer("symbol", symbol, minimum=0, maximum=self.config.walsh_symbols - 1)
        return self.modulator.waveforms[symbol].astype(np.float64)
