"""Bit-accurate fixed-point Matching Pursuits.

Models the arithmetic the FPGA IP core actually performs: the signal matrices
and the received vector are quantised to a configurable word length with
power-of-two dynamic-range scaling (Section IV.C), and every intermediate
result of the datapath (matched-filter accumulators, temporary coefficients,
decision variables) is re-quantised to the width the hardware would carry.

The word length is the design axis of experiment E6: the paper, citing Meng
et al. [21], states that 8-10 bits suffice for accurate channel estimation.
:class:`FixedPointMatchingPursuit` lets that claim be checked by sweeping
``word_length`` and measuring estimation error against the floating-point
reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matching_pursuit import MatchingPursuitResult
from repro.dsp.signal_matrix import SignalMatrices
from repro.fixedpoint.fmt import FixedPointFormat
from repro.fixedpoint.metrics import dynamic_range_scale
from repro.fixedpoint.quantize import quantize
from repro.utils.validation import check_integer, ensure_1d_array

__all__ = ["FixedPointMatchingPursuit"]


@dataclass
class FixedPointMatchingPursuit:
    """Fixed-point Matching Pursuits estimator.

    Parameters
    ----------
    matrices:
        The floating-point signal matrices; they are quantised once at
        construction (they are static in hardware, stored in block RAM).
    word_length:
        Datapath width in bits (8, 12 or 16 in the paper's exploration).
    num_paths:
        Number of paths ``Nf`` to estimate.
    accumulator_growth_bits:
        Extra bits carried by the matched-filter accumulator beyond the input
        word length (DSP48 accumulators are wide; default 16).
    """

    matrices: SignalMatrices
    word_length: int = 8
    num_paths: int = 6
    accumulator_growth_bits: int = 16

    def __post_init__(self) -> None:
        check_integer("word_length", self.word_length, minimum=2, maximum=32)
        check_integer("num_paths", self.num_paths, minimum=1,
                      maximum=self.matrices.num_delays)
        check_integer("accumulator_growth_bits", self.accumulator_growth_bits,
                      minimum=0, maximum=32)

        # --- quantise the static matrices with power-of-two scaling -------
        s_scale = dynamic_range_scale(self.matrices.S)
        a_mat_scale = dynamic_range_scale(self.matrices.A)
        a_vec_scale = dynamic_range_scale(self.matrices.a)

        self._input_fmt = FixedPointFormat.for_unit_range(self.word_length)
        self.S_q = quantize(self.matrices.S / s_scale, self._input_fmt) * s_scale
        self.A_q = quantize(self.matrices.A / a_mat_scale, self._input_fmt) * a_mat_scale
        self.a_q = quantize(self.matrices.a / a_vec_scale, self._input_fmt) * a_vec_scale

        # datapath formats: products/accumulators carry extra bits
        self._acc_fmt = FixedPointFormat(
            min(self.word_length + self.accumulator_growth_bits, 48),
            self._input_fmt.fraction_length,
        )

    # ------------------------------------------------------------------ #
    def _quantize_received(self, received: np.ndarray) -> tuple[np.ndarray, float]:
        """Quantise the received vector with its own power-of-two scale."""
        scale = dynamic_range_scale(received)
        r_q = quantize(received / scale, self._input_fmt) * scale
        return r_q, scale

    def _requant(self, values: np.ndarray, scale: float) -> np.ndarray:
        """Re-quantise an intermediate result to the accumulator format."""
        return quantize(values / scale, self._acc_fmt) * scale

    # ------------------------------------------------------------------ #
    def estimate(self, received: np.ndarray) -> MatchingPursuitResult:
        """Run fixed-point MP on a received vector.

        The control flow is identical to the floating-point reference; only
        the arithmetic precision differs.
        """
        received = ensure_1d_array(
            "received", received, dtype=np.complex128,
            length=self.matrices.window_length,
        )
        r_q, r_scale = self._quantize_received(received)
        num_delays = self.matrices.num_delays

        # scale of the matched-filter outputs: |S^T r| <= window * max|S| * max|r|
        v_scale = dynamic_range_scale(self.S_q.T @ r_q)

        V = self._requant(self.S_q.T @ r_q, v_scale)
        F = np.zeros(num_delays, dtype=np.complex128)
        selected = np.zeros(num_delays, dtype=bool)

        path_indices = np.empty(self.num_paths, dtype=np.int64)
        path_gains = np.empty(self.num_paths, dtype=np.complex128)
        decision_history = np.empty(self.num_paths, dtype=np.float64)

        g_scale = v_scale * float(np.max(np.abs(self.a_q))) if np.max(np.abs(self.a_q)) > 0 else v_scale
        q_scale = g_scale * v_scale

        previous: int | None = None
        for j in range(self.num_paths):
            if previous is not None:
                V = self._requant(V - self.A_q[:, previous] * F[previous], v_scale)
            G = self._requant(V * self.a_q, g_scale)
            Q = self._requant(np.real(np.conj(G) * V), q_scale)
            Q_masked = np.where(selected, -np.inf, Q)
            q = int(np.argmax(Q_masked))
            F[q] = G[q]
            selected[q] = True
            path_indices[j] = q
            path_gains[j] = G[q]
            decision_history[j] = Q[q]
            previous = q

        return MatchingPursuitResult(
            coefficients=F,
            path_indices=path_indices,
            path_gains=path_gains,
            decision_history=decision_history,
        )

    # ------------------------------------------------------------------ #
    @property
    def storage_bits(self) -> int:
        """Total bits needed to store S, A and a at this word length.

        Section IV.C quotes 1208 kbit for 32-bit storage of the 224x112,
        112x112 and 1x112 matrices; this property generalises that count.
        """
        n_values = self.matrices.S.size + self.matrices.A.size + self.matrices.a.size
        return int(n_values) * self.word_length
