"""Bit-accurate fixed-point Matching Pursuits.

Models the arithmetic the FPGA IP core actually performs: the signal matrices
and the received vector are quantised to a configurable word length with
power-of-two dynamic-range scaling (Section IV.C), and every intermediate
result of the datapath (matched-filter accumulators, temporary coefficients,
decision variables) is re-quantised to the width the hardware would carry.

The word length is the design axis of experiment E6: the paper, citing Meng
et al. [21], states that 8-10 bits suffice for accurate channel estimation.
:class:`FixedPointMatchingPursuit` lets that claim be checked by sweeping
``word_length`` and measuring estimation error against the floating-point
reference.

Two datapaths are provided, pinned against each other on **raw integer
codes**:

* :meth:`FixedPointMatchingPursuit.estimate` — the scalar executable
  specification, one receive vector at a time;
* :meth:`FixedPointMatchingPursuit.estimate_batch` — the same datapath
  carried for a whole stack of receive vectors at once: the matched-filter
  accumulator, every re-quantisation and the path-cancellation updates run
  as array operations over a leading trial axis.

Because fixed-point arithmetic is exact integer math, the two paths are
required to agree with ``==`` on the raw integer codes of every output (not
merely to float tolerance).  Two design rules make that possible: every
datapath step is either an *element-wise* float64 expression (IEEE 754
element-wise arithmetic is deterministic, so evaluating it per trial or per
batch gives identical bits) or the *same* matrix-vector product call per
trial (the batched path evaluates the matched filter ``S_q^T r_q`` with the
identical per-trial call, never a re-associated matmul, because BLAS kernels
may sum in a different order).  ``tests/core/test_fixedpoint_batch_equivalence.py``
pins the contract across word lengths, rounding modes and overflow modes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.matching_pursuit import MatchingPursuitResult
from repro.dsp.signal_matrix import SignalMatrices
from repro.fixedpoint.fmt import FixedPointFormat
from repro.fixedpoint.metrics import dynamic_range_scale, dynamic_range_scale_batch
from repro.fixedpoint.quantize import OverflowMode, RoundingMode, quantize, quantize_batch
from repro.utils.validation import check_integer, ensure_1d_array, ensure_2d_array

__all__ = [
    "FixedPointEstimate",
    "BatchFixedPointEstimate",
    "FixedPointMatchingPursuit",
]


def _integer_codes(values: np.ndarray, resolution: float, scale) -> np.ndarray:
    """Recover raw integer codes from re-quantised float values.

    ``values`` entries are (floats of) ``raw * resolution * scale`` with
    ``|raw|`` bounded by the accumulator range (< 2**48), so dividing by
    ``resolution * scale`` lands within a quarter LSB of the integer code and
    rounding recovers it exactly.  ``scale`` may be a scalar or a per-trial
    column for batched values; all-zero inputs can carry a zero scale, which
    maps to code 0.
    """
    denominator = resolution * np.asarray(scale, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        codes = np.where(denominator > 0.0, values / denominator, 0.0)
    return np.round(codes).astype(np.int64)


def _integer_state_equal(left, right) -> bool:
    """Exact equality of two estimates' integer state (see ``__eq__`` docs)."""
    return (
        np.array_equal(left.path_indices, right.path_indices)
        and np.array_equal(left.raw_real, right.raw_real)
        and np.array_equal(left.raw_imag, right.raw_imag)
        and np.array_equal(left.raw_decisions, right.raw_decisions)
        and np.array_equal(left.coefficient_scale, right.coefficient_scale)
        and np.array_equal(left.decision_scale, right.decision_scale)
        and np.array_equal(left.input_scale, right.input_scale)
        and left.accumulator_format == right.accumulator_format
    )


@dataclass(eq=False)
class FixedPointEstimate(MatchingPursuitResult):
    """A scalar fixed-point MP estimate plus its raw integer codes.

    Extends :class:`~repro.core.matching_pursuit.MatchingPursuitResult` with
    the exact integer state of the datapath: the coefficient raw codes (real
    and imaginary, in units of ``accumulator_format.resolution *
    coefficient_scale``) and the decision-variable raw codes.  ``==``
    compares exactly that integer state (plus the scales and format that
    give it meaning) — no float tolerance involved; the float fields are
    fully determined by it.
    """

    raw_real: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    raw_imag: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    raw_decisions: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    coefficient_scale: float = 1.0
    decision_scale: float = 1.0
    input_scale: float = 1.0
    accumulator_format: FixedPointFormat | None = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FixedPointEstimate):
            return NotImplemented
        return _integer_state_equal(self, other)


@dataclass(eq=False)
class BatchFixedPointEstimate:
    """Fixed-point MP estimates for a whole stack of receive vectors.

    Same layout as :class:`FixedPointEstimate` with a leading ``(trials,)``
    axis on every array and per-trial scales; ``result[t]`` recovers the
    scalar view of one trial.  ``==`` compares the exact integer state per
    trial, like :class:`FixedPointEstimate`.
    """

    coefficients: np.ndarray
    path_indices: np.ndarray
    path_gains: np.ndarray
    decision_history: np.ndarray
    raw_real: np.ndarray
    raw_imag: np.ndarray
    raw_decisions: np.ndarray
    coefficient_scale: np.ndarray
    decision_scale: np.ndarray
    input_scale: np.ndarray
    accumulator_format: FixedPointFormat

    @property
    def num_trials(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def num_paths(self) -> int:
        return int(self.path_indices.shape[1])

    def __len__(self) -> int:
        return self.num_trials

    def __getitem__(self, trial: int) -> FixedPointEstimate:
        return FixedPointEstimate(
            coefficients=self.coefficients[trial],
            path_indices=self.path_indices[trial],
            path_gains=self.path_gains[trial],
            decision_history=self.decision_history[trial],
            raw_real=self.raw_real[trial],
            raw_imag=self.raw_imag[trial],
            raw_decisions=self.raw_decisions[trial],
            coefficient_scale=float(self.coefficient_scale[trial]),
            decision_scale=float(self.decision_scale[trial]),
            input_scale=float(self.input_scale[trial]),
            accumulator_format=self.accumulator_format,
        )

    def unbatch(self) -> list[FixedPointEstimate]:
        return [self[t] for t in range(self.num_trials)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchFixedPointEstimate):
            return NotImplemented
        return _integer_state_equal(self, other)


@dataclass
class FixedPointMatchingPursuit:
    """Fixed-point Matching Pursuits estimator.

    Parameters
    ----------
    matrices:
        The floating-point signal matrices; they are quantised once at
        construction (they are static in hardware, stored in block RAM).
    word_length:
        Datapath width in bits (8, 12 or 16 in the paper's exploration).
    num_paths:
        Number of paths ``Nf`` to estimate.
    accumulator_growth_bits:
        Extra bits carried by the matched-filter accumulator beyond the input
        word length (DSP48 accumulators are wide; default 16).
    rounding, overflow:
        Rounding and overflow behaviour of every quantiser in the datapath
        (the System Generator block parameters): round-to-nearest vs
        truncation, saturation vs two's-complement wrap-around.
    """

    matrices: SignalMatrices
    word_length: int = 8
    num_paths: int = 6
    accumulator_growth_bits: int = 16
    rounding: RoundingMode = RoundingMode.NEAREST
    overflow: OverflowMode = OverflowMode.SATURATE

    def __post_init__(self) -> None:
        check_integer("word_length", self.word_length, minimum=2, maximum=32)
        check_integer("num_paths", self.num_paths, minimum=1,
                      maximum=self.matrices.num_delays)
        check_integer("accumulator_growth_bits", self.accumulator_growth_bits,
                      minimum=0, maximum=32)
        self.rounding = RoundingMode(self.rounding)
        self.overflow = OverflowMode(self.overflow)

        # --- quantise the static matrices with power-of-two scaling -------
        s_scale = dynamic_range_scale(self.matrices.S)
        a_mat_scale = dynamic_range_scale(self.matrices.A)
        a_vec_scale = dynamic_range_scale(self.matrices.a)

        self._input_fmt = FixedPointFormat.for_unit_range(self.word_length)
        self.S_q = self._quantize(self.matrices.S / s_scale, self._input_fmt) * s_scale
        self.A_q = self._quantize(self.matrices.A / a_mat_scale, self._input_fmt) * a_mat_scale
        self.a_q = self._quantize(self.matrices.a / a_vec_scale, self._input_fmt) * a_vec_scale

        # datapath formats: products/accumulators carry extra bits
        self._acc_fmt = FixedPointFormat(
            min(self.word_length + self.accumulator_growth_bits, 48),
            self._input_fmt.fraction_length,
        )
        # fixed factor of the per-trial coefficient scale (see estimate())
        self._a_peak = float(np.max(np.abs(self.a_q)))

        # Whether the matched-filter accumulation is *exact* in float64: every
        # product of raw codes is <= 2**(2w-2) and the window sums at most
        # 2**ceil(log2(window)) of them, so when that stays within the 53-bit
        # integer mantissa every partial sum is exactly representable and any
        # summation order — matvec, matmul, FMA — yields identical bits.
        # estimate_batch then uses one matmul for the whole batch; outside the
        # bound it falls back to the scalar path's per-trial matvec call.
        product_bits = 2 * (self.word_length - 1) + math.ceil(
            math.log2(self.matrices.window_length)
        )
        self._matched_filter_exact = product_bits <= 52

    # ------------------------------------------------------------------ #
    # datapath building blocks
    #
    # These are public because they are *shared*: the IP-core engines
    # (`repro.core.ipcore`) run the identical quantisation points — the same
    # calls, in the same order — so that the partitioned FC-block datapath
    # can be pinned against this estimator with ``==`` on raw integer codes.
    # ------------------------------------------------------------------ #
    @property
    def input_format(self) -> FixedPointFormat:
        """Format of the stored matrices and the quantised receive vector."""
        return self._input_fmt

    @property
    def accumulator_format(self) -> FixedPointFormat:
        """Format every intermediate result is re-quantised to."""
        return self._acc_fmt

    @property
    def matched_filter_exact(self) -> bool:
        """True when the matched-filter accumulation is exact in float64.

        Inside this bound any summation order — matvec, matmul, per-block
        MAC — yields identical bits, which is what lets the batched paths
        use one matmul for a whole trial stack.
        """
        return self._matched_filter_exact

    def _quantize(self, values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
        """Quantise with this datapath's rounding and overflow modes."""
        return quantize(values, fmt, self.rounding, self.overflow)

    def quantize_received(self, received: np.ndarray) -> tuple[np.ndarray, float]:
        """Quantise the received vector with its own power-of-two scale."""
        scale = dynamic_range_scale(received)
        r_q = self._quantize(received / scale, self._input_fmt) * scale
        return r_q, scale

    def quantize_received_batch(self, received: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-trial :meth:`quantize_received` over a leading batch axis."""
        scales = dynamic_range_scale_batch(received)
        r_q = quantize_batch(
            received, self._input_fmt, self.rounding, self.overflow, scales=scales
        )
        return r_q, scales

    def matched_filter(self, r_q: np.ndarray) -> np.ndarray:
        """The canonical matched-filter call ``S_q^T r_q`` for one trial.

        Every datapath (scalar, batched outside the exactness bound, and the
        IP-core simulators) evaluates the matched filter through this very
        call, so BLAS summation order can never differ between them.
        """
        return self.S_q.T @ r_q

    def matched_filter_batch(self, r_q: np.ndarray) -> np.ndarray:
        """Matched filter for a ``(trials, window)`` stack, bit-identically.

        One exact matmul when every summation order gives the same bits (see
        :attr:`matched_filter_exact`), else the identical per-trial
        :meth:`matched_filter` call the scalar path makes.
        """
        if self._matched_filter_exact:
            return (r_q.real @ self.S_q) + 1j * (r_q.imag @ self.S_q)
        matched = np.empty(
            (r_q.shape[0], self.matrices.num_delays), dtype=np.complex128
        )
        for t in range(r_q.shape[0]):
            matched[t] = self.matched_filter(r_q[t])
        return matched

    def _requant(self, values: np.ndarray, scale: float) -> np.ndarray:
        """Re-quantise an intermediate result to the accumulator format."""
        return self._quantize(values / scale, self._acc_fmt) * scale

    def _requant_batch(self, values: np.ndarray, scales: np.ndarray) -> np.ndarray:
        """Per-trial :meth:`_requant` over a leading batch axis, bit-identically."""
        return quantize_batch(
            values, self._acc_fmt, self.rounding, self.overflow, scales=scales
        )

    def requantize(self, values: np.ndarray, scale) -> np.ndarray:
        """Re-quantise intermediates to the accumulator format.

        ``scale`` may be a scalar (one trial — or any slice of one trial:
        re-quantisation is element-wise, so a block's slice re-quantises to
        the same bits as the full array) or a per-trial ``(trials,)`` column
        for values with a leading batch axis.
        """
        if np.ndim(scale) == 0:
            return self._requant(values, float(scale))
        return self._requant_batch(values, np.asarray(scale, dtype=np.float64))

    def coefficient_scales(self, v_scale):
        """The (per-trial) scales of the temporary coefficients and decisions.

        The temporary coefficients ``G = V * a`` live at the matched-filter
        scale times the peak magnitude of the quantised ``a`` vector; the
        decision variables ``Q = Re(G^* V)`` at the product of the two.  A
        degenerate all-zero ``a`` (possible only at the narrowest word
        lengths under truncation) falls back to the matched-filter scale so
        no zero-scale division enters the datapath.
        """
        g_scale = v_scale * self._a_peak if self._a_peak > 0 else v_scale
        q_scale = g_scale * v_scale
        return g_scale, q_scale

    def assemble_estimate(
        self,
        coefficients: np.ndarray,
        path_indices: np.ndarray,
        path_gains: np.ndarray,
        decision_history: np.ndarray,
        input_scale: float,
        g_scale: float,
        q_scale: float,
    ) -> FixedPointEstimate:
        """Package one trial's datapath outputs with their raw integer codes."""
        resolution = self._acc_fmt.resolution
        return FixedPointEstimate(
            coefficients=coefficients,
            path_indices=path_indices,
            path_gains=path_gains,
            decision_history=decision_history,
            raw_real=_integer_codes(coefficients.real, resolution, g_scale),
            raw_imag=_integer_codes(coefficients.imag, resolution, g_scale),
            raw_decisions=_integer_codes(decision_history, resolution, q_scale),
            coefficient_scale=g_scale,
            decision_scale=q_scale,
            input_scale=input_scale,
            accumulator_format=self._acc_fmt,
        )

    def assemble_estimate_batch(
        self,
        coefficients: np.ndarray,
        path_indices: np.ndarray,
        path_gains: np.ndarray,
        decision_history: np.ndarray,
        input_scales: np.ndarray,
        g_scales: np.ndarray,
        q_scales: np.ndarray,
    ) -> BatchFixedPointEstimate:
        """Package a whole batch's datapath outputs with their raw codes."""
        resolution = self._acc_fmt.resolution
        g_column = np.asarray(g_scales, dtype=np.float64)[:, np.newaxis]
        q_column = np.asarray(q_scales, dtype=np.float64)[:, np.newaxis]
        return BatchFixedPointEstimate(
            coefficients=coefficients,
            path_indices=path_indices,
            path_gains=path_gains,
            decision_history=decision_history,
            raw_real=_integer_codes(coefficients.real, resolution, g_column),
            raw_imag=_integer_codes(coefficients.imag, resolution, g_column),
            raw_decisions=_integer_codes(decision_history, resolution, q_column),
            coefficient_scale=np.asarray(g_scales, dtype=np.float64),
            decision_scale=np.asarray(q_scales, dtype=np.float64),
            input_scale=np.asarray(input_scales, dtype=np.float64),
            accumulator_format=self._acc_fmt,
        )

    # ------------------------------------------------------------------ #
    def estimate(self, received: np.ndarray) -> FixedPointEstimate:
        """Run fixed-point MP on a received vector (scalar executable spec).

        The control flow is identical to the floating-point reference; only
        the arithmetic precision differs.
        """
        received = ensure_1d_array(
            "received", received, dtype=np.complex128,
            length=self.matrices.window_length,
        )
        r_q, r_scale = self.quantize_received(received)
        num_delays = self.matrices.num_delays

        # scale of the matched-filter outputs: |S^T r| <= window * max|S| * max|r|
        matched = self.matched_filter(r_q)
        v_scale = dynamic_range_scale(matched)

        V = self._requant(matched, v_scale)
        F = np.zeros(num_delays, dtype=np.complex128)
        selected = np.zeros(num_delays, dtype=bool)

        path_indices = np.empty(self.num_paths, dtype=np.int64)
        path_gains = np.empty(self.num_paths, dtype=np.complex128)
        decision_history = np.empty(self.num_paths, dtype=np.float64)

        g_scale, q_scale = self.coefficient_scales(v_scale)

        previous: int | None = None
        for j in range(self.num_paths):
            if previous is not None:
                V = self._requant(V - self.A_q[:, previous] * F[previous], v_scale)
            G = self._requant(V * self.a_q, g_scale)
            Q = self._requant(np.real(np.conj(G) * V), q_scale)
            Q_masked = np.where(selected, -np.inf, Q)
            q = int(np.argmax(Q_masked))
            F[q] = G[q]
            selected[q] = True
            path_indices[j] = q
            path_gains[j] = G[q]
            decision_history[j] = Q[q]
            previous = q

        return self.assemble_estimate(
            F, path_indices, path_gains, decision_history, r_scale, g_scale, q_scale
        )

    # ------------------------------------------------------------------ #
    def estimate_batch(self, received: np.ndarray) -> BatchFixedPointEstimate:
        """Run fixed-point MP on a ``(trials, window)`` stack of receive vectors.

        Bit-identical to calling :meth:`estimate` on each row: the dynamic
        range scaling, every re-quantisation and the cancellation updates are
        the same element-wise float64 expressions evaluated over the whole
        batch, and the matched filter runs as one matmul only at word
        lengths where its accumulation is exact integer math in float64
        (any summation order gives the same bits); at wider word lengths —
        where a matmul could re-associate the accumulation and change the
        last bit — it applies the identical per-trial ``S_q.T @ r`` call.
        An empty batch is valid and yields empty result arrays.
        """
        received = ensure_2d_array(
            "received", received, dtype=np.complex128,
            shape=(None, self.matrices.window_length),
        )
        trials = received.shape[0]
        num_delays = self.matrices.num_delays

        r_q, r_scales = self.quantize_received_batch(received)
        matched = self.matched_filter_batch(r_q)
        v_scales = dynamic_range_scale_batch(matched)

        V = self._requant_batch(matched, v_scales)
        F = np.zeros((trials, num_delays), dtype=np.complex128)
        selected = np.zeros((trials, num_delays), dtype=bool)

        path_indices = np.empty((trials, self.num_paths), dtype=np.int64)
        path_gains = np.empty((trials, self.num_paths), dtype=np.complex128)
        decision_history = np.empty((trials, self.num_paths), dtype=np.float64)

        g_scales, q_scales = self.coefficient_scales(v_scales)

        rows = np.arange(trials)
        previous: np.ndarray | None = None
        for j in range(self.num_paths):
            if previous is not None:
                # column q of A per trial, taken as a row of A^T so no
                # symmetry of A is assumed (mirrors matching_pursuit_batch)
                cancelled = V - self.A_q.T[previous] * F[rows, previous][:, np.newaxis]
                V = self._requant_batch(cancelled, v_scales)
            G = self._requant_batch(V * self.a_q, g_scales)
            Q = self._requant_batch(np.real(np.conj(G) * V), q_scales)
            Q_masked = np.where(selected, -np.inf, Q)
            q = np.argmax(Q_masked, axis=1)
            F[rows, q] = G[rows, q]
            selected[rows, q] = True
            path_indices[:, j] = q
            path_gains[:, j] = G[rows, q]
            decision_history[:, j] = Q[rows, q]
            previous = q

        return self.assemble_estimate_batch(
            F, path_indices, path_gains, decision_history, r_scales, g_scales, q_scales
        )

    # ------------------------------------------------------------------ #
    @property
    def storage_bits(self) -> int:
        """Total bits needed to store S, A and a at this word length.

        Section IV.C quotes 1208 kbit for 32-bit storage of the 224x112,
        112x112 and 1x112 matrices; this property generalises that count.
        """
        n_values = self.matrices.S.size + self.matrices.A.size + self.matrices.a.size
        return int(n_values) * self.word_length
