"""Least-squares refinement of a Matching Pursuits estimate.

Greedy MP commits, for each selected delay, the *single-path* least-squares
coefficient ``G_q = V_q / A_qq`` computed against the current residual.  When
the delayed waveform signatures are correlated (which they are — the composite
waveform has autocorrelation sidelobes at multiples of the 7-chip m-sequence
period), those per-path coefficients are biased by the interference the later
iterations have not yet cancelled.

The standard fix — used by the MP/GSIC estimator of Kim & Iltis [23] that the
paper's algorithm descends from — is to re-solve, once the support is chosen,
the small joint least-squares problem restricted to the selected columns:

``f_hat[support] = argmin_x || r - S[:, support] x ||``

This costs one ``Nf x Nf`` solve (Nf = 6), which is negligible next to the
matched-filter bank, and measurably improves coefficient accuracy on
correlated supports.  It is exposed both as a standalone function and as a
drop-in wrapper usable as the receiver's channel-estimator backend.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching_pursuit import MatchingPursuitResult, matching_pursuit
from repro.dsp.signal_matrix import SignalMatrices
from repro.utils.validation import ensure_1d_array, ensure_2d_array

__all__ = ["refine_least_squares", "matching_pursuit_ls"]


def refine_least_squares(
    received: np.ndarray,
    S: np.ndarray,
    result: MatchingPursuitResult,
) -> MatchingPursuitResult:
    """Re-estimate the coefficients of ``result`` by joint least squares.

    The selected support (path delays) is kept; only the complex gains change.
    Returns a new :class:`MatchingPursuitResult` (the input is not modified).
    """
    S = ensure_2d_array("S", S, dtype=np.float64)
    received = ensure_1d_array("received", received, dtype=np.complex128, length=S.shape[0])
    support = np.asarray(result.path_indices, dtype=np.int64)
    if support.size == 0:
        raise ValueError("cannot refine an empty estimate")
    if support.min() < 0 or support.max() >= S.shape[1]:
        raise ValueError("estimate support outside the signal matrix")

    sub_matrix = S[:, support]
    gains, *_ = np.linalg.lstsq(sub_matrix.astype(np.complex128), received, rcond=None)

    coefficients = np.zeros(S.shape[1], dtype=np.complex128)
    coefficients[support] = gains
    return MatchingPursuitResult(
        coefficients=coefficients,
        path_indices=support.copy(),
        path_gains=gains,
        decision_history=result.decision_history.copy(),
    )


def matching_pursuit_ls(
    received: np.ndarray,
    matrices: SignalMatrices,
    num_paths: int = 6,
) -> MatchingPursuitResult:
    """Matching Pursuits followed by least-squares coefficient refinement.

    Signature-compatible with :func:`repro.core.matching_pursuit.matching_pursuit`
    so it can be plugged directly into :class:`repro.modem.receiver.Receiver`
    as the ``estimator`` backend.
    """
    greedy = matching_pursuit(received, matrices, num_paths=num_paths)
    return refine_least_squares(received, matrices.S, greedy)
