"""Batched fixed-point Matching Pursuits engine (experiment E6 at scale).

The bitwidth ablation estimates the same Monte-Carlo channels at every word
length.  Run through the sweep engine one trial at a time, each estimate
pays the full scalar :class:`~repro.core.fixedpoint_mp.FixedPointMatchingPursuit`
loop — dozens of small NumPy calls per trial — which leaves the E6 sweep and
the E8 design-space exploration interpreter-bound.

:class:`BatchFixedPointMPEngine` runs a whole
:class:`~repro.experiments.spec.SweepSpec` of the ``fixedpoint-bitwidth``
scenario in one pass: the trial points are grouped by word length (and
waveform configuration), each group's receive vectors are stacked into one
batch, and a single :meth:`~repro.core.fixedpoint_mp.FixedPointMatchingPursuit.estimate_batch`
call carries the entire group through the fixed-point datapath.

Three properties make the engine a drop-in replacement for the sweep:

* **identical RNG streams** — problems come from the same memoised builders
  the scalar trial function uses (`repro.experiments.registry`), keyed by
  the same per-trial seeds from the spec's
  :class:`~repro.experiments.spec.SeedPolicy`, so every word length sees the
  very channels and noise the scalar sweep would draw;
* **bit-identical estimates** — ``estimate_batch`` is pinned against the
  scalar ``estimate`` with ``==`` on raw integer codes
  (``tests/core/test_fixedpoint_batch_equivalence.py``);
* **identical records** — metrics are evaluated by the same shared helper on
  those bit-identical coefficients and assembled in canonical trial order,
  so :meth:`run_spec` output compares equal, record for record, to
  :func:`~repro.experiments.runner.run_sweep` on the same spec.

The engine is deliberately mode-free (round-to-nearest, saturation — the
System Generator defaults the scenario uses); explicit rounding/overflow
sweeps run on :class:`FixedPointMatchingPursuit` directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.telemetry.metrics import counter, histogram
from repro.telemetry.tracing import span

__all__ = ["BatchFixedPointMPEngine"]

# per-group telemetry (one update per word-length group, never per trial)
_TRIALS = counter("engine.fixedpoint.trials")
_GROUP_SIZE = histogram("engine.fixedpoint.batch_size")


@dataclass
class BatchFixedPointMPEngine:
    """Run ``fixedpoint-bitwidth`` sweeps as batched array operations.

    Parameters
    ----------
    scenario:
        Name of the scenario whose specs this engine accepts.  Only the
        built-in ``fixedpoint-bitwidth`` trial layout is understood; the
        field exists so a renamed registration can keep using the engine.
    """

    scenario: str = "fixedpoint-bitwidth"

    def run_spec(self, spec, batch: bool = True):
        """Execute every trial of ``spec`` and return their tidy records.

        Drop-in equivalent of :func:`~repro.experiments.runner.run_sweep`
        for the ``fixedpoint-bitwidth`` scenario: the returned
        :class:`~repro.experiments.runner.SweepResult` carries records that
        compare equal (``==``, not tolerances) to the sweep's, in the same
        canonical trial order.  ``batch=False`` runs the grouped trials
        through the scalar datapath instead — the executable specification,
        kept for equivalence tests and benchmarks.
        """
        from repro.experiments.runner import SweepResult, SweepStats

        if spec.scenario != self.scenario:
            raise ValueError(
                f"engine handles {self.scenario!r} specs, got {spec.scenario!r}"
            )
        started = time.perf_counter()
        with span("engine.fixedpoint.run_spec", scenario=spec.scenario, batch=batch):
            trials = spec.expand()
            records = self._run_groups(spec, trials, batch)
        _TRIALS.inc(len(trials))

        elapsed = time.perf_counter() - started
        stats = SweepStats(
            num_trials=len(trials), executed=len(trials), cache_hits=0,
            jobs=1, elapsed_s=elapsed,
        )
        ordered = [records[point.index] for point in trials]
        return SweepResult(spec=spec, records=ordered, stats=stats)

    def _run_groups(self, spec, trials, batch: bool) -> dict[int, dict[str, Any]]:
        """Group trial points, estimate each group in one pass, build records."""
        from repro.experiments.registry import (
            fixedpoint_trial_metrics,
            trial_channel_problem,
            trial_config_key,
            trial_estimator,
            trial_float_reference,
        )
        from repro.experiments.runner import plain_value

        # group trial points by everything the estimator depends on: the
        # waveform configuration travels in the params, the word length is
        # the swept axis.  Problems and float references are built once per
        # unique (configuration, channel, SNR, seed) and held here, so the
        # sharing across word lengths that paired seeds promise survives
        # sweeps larger than the registry's memoisation windows.
        groups: dict[tuple, list] = {}
        problem_keys: dict[int, tuple] = {}
        problems: dict[tuple, tuple] = {}
        references: dict[tuple, Any] = {}
        for point in trials:
            signature = trial_config_key(point.params)
            groups.setdefault(
                (int(point.params["word_length"]), signature), []
            ).append(point)
            key = (
                signature,
                int(point.params["num_channel_paths"]),
                float(point.params["snr_db"]),
                point.seed,
            )
            problem_keys[point.index] = key
            if key not in problems:
                problems[key] = trial_channel_problem(point.params, point.seed)
                references[key] = trial_float_reference(point.params, point.seed)

        records: dict[int, dict[str, Any]] = {}
        for (word_length, _), points in groups.items():
            with span("engine.fixedpoint.group", word_length=word_length,
                      batch_size=len(points)):
                _GROUP_SIZE.observe(len(points))
                estimator = trial_estimator(points[0].params, word_length)
                group_problems = [problems[problem_keys[p.index]] for p in points]
                received = np.stack([problem[2] for problem in group_problems])
                if batch:
                    estimates = estimator.estimate_batch(received)
                else:
                    estimates = [estimator.estimate(row) for row in received]
                for row, point in enumerate(points):
                    channel, true_f, _ = group_problems[row]
                    reference = references[problem_keys[point.index]]
                    metrics = fixedpoint_trial_metrics(
                        channel, true_f, reference, estimates[row]
                    )
                    record: dict[str, Any] = {
                        "scenario": spec.scenario,
                        "trial_index": point.index,
                        "replicate": point.replicate,
                        "seed": point.seed,
                    }
                    for source in (point.params, metrics):
                        for name, value in source.items():
                            record[name] = plain_value(value)
                    records[point.index] = record
        return records
