"""Matching Pursuits channel estimation (Figure 3 of the paper).

The algorithm estimates a sparse channel ``f`` from the received vector ``r``
using the pre-computed signal matrices ``S`` (delayed waveform signatures),
``A = S^H S`` and ``a = 1 / diag(A)``:

1. Matched filter: ``V_i = S_i^T r`` for every hypothesised delay ``i``;
   initialise the channel estimate ``F`` and temporaries ``G`` to zero.
2. For each of ``Nf`` hypothesised paths:
   a. cancel the contribution of the path found in the previous iteration
      from the matched-filter outputs (``V <- V - A[:, q] * F[q]``),
   b. compute the per-delay single-path least-squares coefficients
      ``G_k = V_k * a_k`` and decision variables ``Q_k = G_k^* V_k``
      (``= a_k |V_k|^2``),
   c. pick the delay ``q`` with the largest ``Q`` that has not been picked
      before, and commit ``F_q = G_q``.
3. Return ``F`` — a vector with exactly ``Nf`` non-zero entries.

Three implementations are provided:

* :func:`matching_pursuit` — the vectorised NumPy version used everywhere in
  the library for single receive vectors (this is the production code path);
* :func:`matching_pursuit_batch` — the same algorithm vectorised across a
  whole stack of receive vectors at once (one matched-filter matmul and one
  argmax per iteration for the entire batch); the Monte-Carlo link simulator
  uses it to estimate every frame's channel in one shot;
* :func:`matching_pursuit_naive` — a straight-line, loop-based transcription
  of Figure 3 kept as an executable specification; the test-suite checks all
  implementations agree to machine precision, and the benchmark suite
  (experiment E10) measures the speed-up of vectorisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.signal_matrix import SignalMatrices
from repro.utils.validation import check_integer, ensure_1d_array, ensure_2d_array

__all__ = [
    "MatchingPursuitResult",
    "BatchMatchingPursuitResult",
    "matching_pursuit",
    "matching_pursuit_batch",
    "matching_pursuit_naive",
]


@dataclass
class MatchingPursuitResult:
    """Output of a Matching Pursuits run.

    Attributes
    ----------
    coefficients:
        Dense estimated channel vector ``F`` (length = number of hypothesised
        delays); exactly ``num_paths`` entries are non-zero.
    path_indices:
        The delays selected, in the order they were found (strongest first).
    path_gains:
        The complex coefficients assigned to those delays, same order.
    decision_history:
        Per-iteration maximum decision variable ``Q_q`` (useful for stopping
        rules and diagnostics).
    """

    coefficients: np.ndarray
    path_indices: np.ndarray
    path_gains: np.ndarray
    decision_history: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def num_paths(self) -> int:
        """Number of paths estimated."""
        return int(self.path_indices.shape[0])

    def as_delay_gain_pairs(self) -> list[tuple[int, complex]]:
        """Return the estimate as (delay, gain) pairs sorted by delay."""
        pairs = [(int(d), complex(g)) for d, g in zip(self.path_indices, self.path_gains)]
        return sorted(pairs, key=lambda p: p[0])


@dataclass
class BatchMatchingPursuitResult:
    """Output of a batched Matching Pursuits run over a stack of trials.

    Attributes
    ----------
    coefficients:
        ``(trials, num_delays)`` dense estimated channel vectors; exactly
        ``num_paths`` entries per row are non-zero.
    path_indices:
        ``(trials, num_paths)`` selected delays, in selection order per trial.
    path_gains:
        ``(trials, num_paths)`` complex coefficients, same order.
    decision_history:
        ``(trials, num_paths)`` per-iteration maximum decision variables.
    """

    coefficients: np.ndarray
    path_indices: np.ndarray
    path_gains: np.ndarray
    decision_history: np.ndarray

    @property
    def num_trials(self) -> int:
        """Number of receive vectors in the batch."""
        return int(self.coefficients.shape[0])

    @property
    def num_paths(self) -> int:
        """Number of paths estimated per trial."""
        return int(self.path_indices.shape[1])

    def __len__(self) -> int:
        return self.num_trials

    def __getitem__(self, trial: int) -> MatchingPursuitResult:
        """The estimate of one trial as a plain :class:`MatchingPursuitResult`."""
        return MatchingPursuitResult(
            coefficients=self.coefficients[trial],
            path_indices=self.path_indices[trial],
            path_gains=self.path_gains[trial],
            decision_history=self.decision_history[trial],
        )

    def unbatch(self) -> list[MatchingPursuitResult]:
        """Split the batch into per-trial results."""
        return [self[t] for t in range(self.num_trials)]

    @classmethod
    def from_results(
        cls, results: "list[MatchingPursuitResult]", num_delays: int
    ) -> "BatchMatchingPursuitResult":
        """Stack per-trial results into a batch (inverse of :meth:`unbatch`)."""
        if not results:
            return cls(
                coefficients=np.zeros((0, num_delays), dtype=np.complex128),
                path_indices=np.zeros((0, 0), dtype=np.int64),
                path_gains=np.zeros((0, 0), dtype=np.complex128),
                decision_history=np.zeros((0, 0), dtype=np.float64),
            )
        return cls(
            coefficients=np.stack([r.coefficients for r in results]),
            path_indices=np.stack([r.path_indices for r in results]),
            path_gains=np.stack([r.path_gains for r in results]),
            decision_history=np.stack([r.decision_history for r in results]),
        )


def _validate_inputs(
    received: np.ndarray,
    S: np.ndarray,
    A: np.ndarray,
    a: np.ndarray,
    num_paths: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    S = ensure_2d_array("S", S, dtype=np.float64)
    window, num_delays = S.shape
    received = ensure_1d_array("received", received, dtype=np.complex128, length=window)
    A = ensure_2d_array("A", A, dtype=np.float64, shape=(num_delays, num_delays))
    a = ensure_1d_array("a", a, dtype=np.float64, length=num_delays)
    num_paths = check_integer("num_paths", num_paths, minimum=1, maximum=num_delays)
    return received, S, A, a, num_paths


def matching_pursuit(
    received: np.ndarray,
    matrices: SignalMatrices | None = None,
    *,
    S: np.ndarray | None = None,
    A: np.ndarray | None = None,
    a: np.ndarray | None = None,
    num_paths: int = 6,
) -> MatchingPursuitResult:
    """Estimate a sparse channel from ``received`` using Matching Pursuits.

    Parameters
    ----------
    received:
        Complex receive vector ``r`` (length ``2 * Ns`` for the AquaModem).
    matrices:
        Pre-computed :class:`~repro.dsp.signal_matrix.SignalMatrices`; if not
        given, ``S``/``A``/``a`` must be passed explicitly.
    S, A, a:
        Explicit signal matrices (mutually exclusive with ``matrices``).
    num_paths:
        Number of paths ``Nf`` to estimate (6 in the paper's field-calibrated
        configuration).

    Returns
    -------
    MatchingPursuitResult
    """
    if matrices is not None:
        if S is not None or A is not None or a is not None:
            raise ValueError("pass either `matrices` or explicit S/A/a, not both")
        S, A, a = matrices.S, matrices.A, matrices.a
    if S is None or A is None or a is None:
        raise ValueError("signal matrices are required (either `matrices` or S, A and a)")
    received, S, A, a, num_paths = _validate_inputs(received, S, A, a, num_paths)

    num_delays = S.shape[1]
    # Step 1-5: matched filter bank and zero initialisation.
    V = S.T @ received                       # (num_delays,) complex
    F = np.zeros(num_delays, dtype=np.complex128)
    selected = np.zeros(num_delays, dtype=bool)

    path_indices = np.empty(num_paths, dtype=np.int64)
    path_gains = np.empty(num_paths, dtype=np.complex128)
    decision_history = np.empty(num_paths, dtype=np.float64)

    previous_index: int | None = None
    for j in range(num_paths):
        # Step 8: successive interference cancellation of the previous path.
        if previous_index is not None:
            V = V - A[:, previous_index] * F[previous_index]
        # Steps 9-12: temporary coefficients and decision variables.
        G = V * a
        Q = np.real(np.conj(G) * V)          # = a_k |V_k|^2, real and >= 0
        # Step 13: arg max over not-yet-selected delays.
        Q_masked = np.where(selected, -np.inf, Q)
        q = int(np.argmax(Q_masked))
        # Step 14: commit the coefficient.
        F[q] = G[q]
        selected[q] = True
        path_indices[j] = q
        path_gains[j] = G[q]
        decision_history[j] = Q[q]
        previous_index = q

    return MatchingPursuitResult(
        coefficients=F,
        path_indices=path_indices,
        path_gains=path_gains,
        decision_history=decision_history,
    )


def matching_pursuit_batch(
    received: np.ndarray,
    matrices: SignalMatrices | None = None,
    *,
    S: np.ndarray | None = None,
    A: np.ndarray | None = None,
    a: np.ndarray | None = None,
    num_paths: int = 6,
) -> BatchMatchingPursuitResult:
    """Run Matching Pursuits on a whole stack of receive vectors at once.

    Algorithmically identical to calling :func:`matching_pursuit` on each row
    of ``received`` (same per-iteration formulas, same not-yet-selected argmax
    tie-breaking), but the matched filter bank is a single matmul and every
    iteration updates all trials together, so the per-trial Python overhead of
    the Monte-Carlo loop disappears.

    Parameters
    ----------
    received:
        ``(trials, window)`` complex stack of receive vectors; ``trials`` may
        be zero (an empty batch yields empty result arrays).
    matrices, S, A, a, num_paths:
        As for :func:`matching_pursuit`; the signal matrices are shared by the
        whole batch.

    Returns
    -------
    BatchMatchingPursuitResult
    """
    if matrices is not None:
        if S is not None or A is not None or a is not None:
            raise ValueError("pass either `matrices` or explicit S/A/a, not both")
        S, A, a = matrices.S, matrices.A, matrices.a
    if S is None or A is None or a is None:
        raise ValueError("signal matrices are required (either `matrices` or S, A and a)")
    S = ensure_2d_array("S", S, dtype=np.float64)
    window, num_delays = S.shape
    received = ensure_2d_array(
        "received", received, dtype=np.complex128, shape=(None, window)
    )
    A = ensure_2d_array("A", A, dtype=np.float64, shape=(num_delays, num_delays))
    a = ensure_1d_array("a", a, dtype=np.float64, length=num_delays)
    num_paths = check_integer("num_paths", num_paths, minimum=1, maximum=num_delays)

    trials = received.shape[0]
    rows = np.arange(trials)
    # Steps 1-5 for every trial at once: one matched filter matmul per
    # component replaces the per-trial filter banks (S is real, so splitting
    # the complex matmul into two real ones halves the work).
    V = (received.real @ S) + 1j * (received.imag @ S)  # (trials, num_delays)
    F = np.zeros((trials, num_delays), dtype=np.complex128)
    selected = np.zeros((trials, num_delays), dtype=bool)

    path_indices = np.empty((trials, num_paths), dtype=np.int64)
    path_gains = np.empty((trials, num_paths), dtype=np.complex128)
    decision_history = np.empty((trials, num_paths), dtype=np.float64)

    previous: np.ndarray | None = None
    for j in range(num_paths):
        # Step 8: cancel each trial's previously found path (column q of A,
        # taken as a row of A^T so no symmetry of A is assumed).
        if previous is not None:
            V = V - A.T[previous] * F[rows, previous][:, np.newaxis]
        # Steps 9-12, identical formulas to the single-vector version.
        G = V * a
        Q = np.real(np.conj(G) * V)
        # Step 13: per-trial arg max over not-yet-selected delays.
        Q_masked = np.where(selected, -np.inf, Q)
        q = np.argmax(Q_masked, axis=1)
        # Step 14: commit one coefficient per trial.
        F[rows, q] = G[rows, q]
        selected[rows, q] = True
        path_indices[:, j] = q
        path_gains[:, j] = G[rows, q]
        decision_history[:, j] = Q[rows, q]
        previous = q

    return BatchMatchingPursuitResult(
        coefficients=F,
        path_indices=path_indices,
        path_gains=path_gains,
        decision_history=decision_history,
    )


def matching_pursuit_naive(
    received: np.ndarray,
    matrices: SignalMatrices | None = None,
    *,
    S: np.ndarray | None = None,
    A: np.ndarray | None = None,
    a: np.ndarray | None = None,
    num_paths: int = 6,
) -> MatchingPursuitResult:
    """Loop-based transcription of Figure 3 (executable specification).

    Functionally identical to :func:`matching_pursuit` but written as explicit
    per-element loops that mirror the pseudo-code line by line.  Use only for
    validation and for the DSP/microcontroller operation-count model — it is
    orders of magnitude slower than the vectorised version.
    """
    if matrices is not None:
        if S is not None or A is not None or a is not None:
            raise ValueError("pass either `matrices` or explicit S/A/a, not both")
        S, A, a = matrices.S, matrices.A, matrices.a
    if S is None or A is None or a is None:
        raise ValueError("signal matrices are required (either `matrices` or S, A and a)")
    received, S, A, a, num_paths = _validate_inputs(received, S, A, a, num_paths)

    window, num_delays = S.shape

    # Steps 1-5: matched filter outputs and zero initialisation.
    V = np.zeros(num_delays, dtype=np.complex128)
    F = np.zeros(num_delays, dtype=np.complex128)
    G = np.zeros(num_delays, dtype=np.complex128)
    for i in range(num_delays):
        acc = 0.0 + 0.0j
        for n in range(window):
            acc += S[n, i] * received[n]
        V[i] = acc

    selected: list[int] = []
    path_indices = np.empty(num_paths, dtype=np.int64)
    path_gains = np.empty(num_paths, dtype=np.complex128)
    decision_history = np.empty(num_paths, dtype=np.float64)

    q_prev = 0  # step 6: q_0 <- 0 (F[0] == 0, so the first cancellation is a no-op)
    for j in range(num_paths):
        # Step 8: cancel the previously found path.
        for k in range(num_delays):
            V[k] = V[k] - A[k, q_prev] * F[q_prev]
        # Steps 9-12.
        Q = np.empty(num_delays, dtype=np.float64)
        for k in range(num_delays):
            G[k] = V[k] * a[k]
            Q[k] = (np.conj(G[k]) * V[k]).real
        # Step 13: arg max over indices not already chosen.
        best_k = -1
        best_q = -np.inf
        for k in range(num_delays):
            if k in selected:
                continue
            if Q[k] > best_q:
                best_q = Q[k]
                best_k = k
        # Step 14.
        F[best_k] = G[best_k]
        selected.append(best_k)
        path_indices[j] = best_k
        path_gains[j] = G[best_k]
        decision_history[j] = best_q
        q_prev = best_k

    return MatchingPursuitResult(
        coefficients=F,
        path_indices=path_indices,
        path_gains=path_gains,
        decision_history=decision_history,
    )
