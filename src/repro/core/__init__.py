"""The paper's primary contribution: Matching Pursuits channel estimation and
its hardware design-space exploration.

Modules
-------
* :mod:`repro.core.matching_pursuit` — the reference floating-point MP
  algorithm of Figure 3 (vectorised and straight-line variants).
* :mod:`repro.core.fixedpoint_mp` — a bit-accurate fixed-point MP that models
  the FPGA datapath at a configurable word length (scalar and batched
  datapaths, pinned bit-identical on raw integer codes).
* :mod:`repro.core.batch` — the batched fixed-point engine that runs whole
  bitwidth-ablation sweeps (all trials x all word lengths) as array
  operations.
* :mod:`repro.core.ipcore` — a functional + cycle-level simulator of the
  Filter-and-Cancel IP core of Figure 5, parameterised by the number of FC
  blocks (level of parallelism), with a batched engine and a three-way
  conformance harness (IP core == fixed-point MP == float reference).
* :mod:`repro.core.dse` — the design-space exploration engine that sweeps
  parallelism, bit width and FPGA device and evaluates area / timing /
  throughput / power / energy for each point (Tables 2-3, Figure 6).
* :mod:`repro.core.metrics` — channel-estimation quality metrics.
"""

from repro.core.matching_pursuit import (
    BatchMatchingPursuitResult,
    MatchingPursuitResult,
    matching_pursuit,
    matching_pursuit_batch,
    matching_pursuit_naive,
)
from repro.core.refinement import matching_pursuit_ls, refine_least_squares
from repro.core.fixedpoint_mp import (
    BatchFixedPointEstimate,
    FixedPointEstimate,
    FixedPointMatchingPursuit,
)
from repro.core.metrics import (
    coefficient_mse,
    normalized_channel_error,
    support_recovery_rate,
    residual_energy_ratio,
)
from repro.core.ipcore import (
    BatchIPCoreEngine,
    BatchIPCoreRun,
    FilterAndCancelBlock,
    IPCoreConfig,
    IPCoreSimulator,
    check_conformance,
)
from repro.core.dse import DesignPoint, DesignPointEvaluation, DesignSpaceExplorer
from repro.core.batch import BatchFixedPointMPEngine

__all__ = [
    "BatchMatchingPursuitResult",
    "MatchingPursuitResult",
    "matching_pursuit",
    "matching_pursuit_batch",
    "matching_pursuit_naive",
    "matching_pursuit_ls",
    "refine_least_squares",
    "FixedPointMatchingPursuit",
    "FixedPointEstimate",
    "BatchFixedPointEstimate",
    "BatchFixedPointMPEngine",
    "coefficient_mse",
    "normalized_channel_error",
    "support_recovery_rate",
    "residual_energy_ratio",
    "FilterAndCancelBlock",
    "IPCoreConfig",
    "IPCoreSimulator",
    "BatchIPCoreEngine",
    "BatchIPCoreRun",
    "check_conformance",
    "DesignPoint",
    "DesignPointEvaluation",
    "DesignSpaceExplorer",
]
