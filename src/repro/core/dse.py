"""Design-space exploration of the Matching Pursuits IP core.

Section IV of the paper sweeps three axes — level of parallelism (number of
FC blocks), datapath bit width and FPGA device — and evaluates area, timing,
throughput, power and energy for every combination (Table 2 and Figure 6).
:class:`DesignSpaceExplorer` performs that sweep over the calibrated hardware
models, flags infeasible points (e.g. the fully parallel Spartan-3 design
which exceeds the device's multiplier count), checks the 22.4 ms real-time
deadline, and extracts Pareto-optimal points for the ablation study E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.hardware.devices import FPGADevice, SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.hardware.fpga import FPGAImplementation
from repro.utils.tables import AsciiTable
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "DesignPoint",
    "DesignPointEvaluation",
    "DesignSpaceExplorer",
    "divisors",
    "PAPER_PARALLELISM_LEVELS",
    "PAPER_BIT_WIDTHS",
    "REAL_TIME_DEADLINE_S",
]

#: The parallelism levels the paper evaluates (Table 2).
PAPER_PARALLELISM_LEVELS: tuple[int, ...] = (112, 14, 1)

#: The bit widths the paper evaluates (Table 2).
PAPER_BIT_WIDTHS: tuple[int, ...] = (8, 12, 16)

#: The real-time constraint: a new receive vector arrives every 22.4 ms.
REAL_TIME_DEADLINE_S: float = 22.4e-3


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n`` in increasing order (valid FC-block counts)."""
    n = check_integer("n", n, minimum=1)
    result = [d for d in range(1, n + 1) if n % d == 0]
    return result


@dataclass(frozen=True)
class DesignPoint:
    """One point of the design space: (device, parallelism, bit width)."""

    device: FPGADevice
    num_fc_blocks: int
    word_length: int

    def __str__(self) -> str:
        return f"{self.device.family}/{self.device.name} P={self.num_fc_blocks} b={self.word_length}"


@dataclass(frozen=True)
class DesignPointEvaluation:
    """A design point together with its modelled metrics.

    The accuracy columns are populated only when the explorer runs with
    ``accuracy_trials > 0``: they are the E6 channel-estimation quality of
    the point's word length (mean normalised error against the true channel
    and mean support recovery), evaluated on the batched fixed-point engine.
    """

    point: DesignPoint
    implementation: FPGAImplementation
    feasible: bool
    slices: int
    dsp48: int
    bram_blocks: int
    time_us: float
    throughput_per_us: float
    power_w: float
    energy_uj: float
    meets_deadline: bool
    mean_normalized_error: float | None = None
    mean_support_recovery: float | None = None

    def dominates(self, other: "DesignPointEvaluation") -> bool:
        """Pareto dominance on (area, energy): no worse on both, better on one."""
        if not self.feasible or not other.feasible:
            return False
        no_worse = self.slices <= other.slices and self.energy_uj <= other.energy_uj
        better = self.slices < other.slices or self.energy_uj < other.energy_uj
        return no_worse and better


@dataclass
class DesignSpaceExplorer:
    """Sweep engine over devices x parallelism x bit width.

    Parameters
    ----------
    devices:
        FPGA devices to consider (defaults to the paper's two).
    parallelism_levels:
        FC-block counts to sweep (defaults to the paper's 112 / 14 / 1).
    bit_widths:
        Datapath widths to sweep (defaults to 8 / 12 / 16).
    num_paths:
        MP iterations Nf.
    num_delays, window_length:
        Problem geometry.
    include_infeasible:
        Keep infeasible points in the result list (flagged) instead of
        dropping them; the Table 2 bench needs them dropped, the ablation
        keeps them for reporting.
    accuracy_trials:
        Monte-Carlo trials behind the per-word-length accuracy columns
        (``mean_normalized_error`` / ``mean_support_recovery``).  0 — the
        default — skips the accuracy evaluation entirely, keeping the pure
        area/timing/power sweep cheap.  The accuracy model is the AquaModem
        waveform geometry, so it requires the paper's 112/224 problem size.
    accuracy_batch:
        Run the accuracy trials on the batched fixed-point engine (default)
        or on the scalar datapath; the two are pinned bit-identical, so the
        columns are the same either way — the flag exists for
        cross-validation and benchmarking.
    accuracy_seed, accuracy_snr_db, accuracy_channel_paths:
        Problem parameters of the accuracy trials (paired seeds: every word
        length estimates the same channels).
    """

    devices: Sequence[FPGADevice] = field(
        default_factory=lambda: (VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000)
    )
    parallelism_levels: Sequence[int] = PAPER_PARALLELISM_LEVELS
    bit_widths: Sequence[int] = PAPER_BIT_WIDTHS
    num_paths: int = 6
    num_delays: int = 112
    window_length: int = 224
    include_infeasible: bool = False
    real_time_deadline_s: float = REAL_TIME_DEADLINE_S
    accuracy_trials: int = 0
    accuracy_batch: bool = True
    accuracy_seed: int = 0
    accuracy_snr_db: float = 25.0
    accuracy_channel_paths: int = 4
    _accuracy_cache: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_integer("num_paths", self.num_paths, minimum=1)
        check_integer("num_delays", self.num_delays, minimum=1)
        check_integer("window_length", self.window_length, minimum=1)
        check_positive("real_time_deadline_s", self.real_time_deadline_s)
        check_integer("accuracy_trials", self.accuracy_trials, minimum=0)
        if self.accuracy_trials > 0 and (self.num_delays, self.window_length) != (112, 224):
            raise ValueError(
                "the accuracy columns model the AquaModem waveform "
                "(num_delays=112, window_length=224); run accuracy_trials=0 "
                "for other geometries"
            )
        for level in self.parallelism_levels:
            check_integer("parallelism level", level, minimum=1)
            if self.num_delays % level != 0:
                raise ValueError(
                    f"parallelism level {level} does not divide num_delays {self.num_delays}"
                )
        for bits in self.bit_widths:
            check_integer("bit width", bits, minimum=2, maximum=64)

    # ------------------------------------------------------------------ #
    def points(self) -> Iterable[DesignPoint]:
        """Enumerate the design points in the sweep order of Table 2.

        Order: bit width (outer), then parallelism (descending), then device —
        matching the row grouping of the paper's table.
        """
        for bits in self.bit_widths:
            for level in self.parallelism_levels:
                for device in self.devices:
                    yield DesignPoint(device=device, num_fc_blocks=level, word_length=bits)

    def _accuracy_columns(self, word_length: int) -> tuple[float | None, float | None]:
        """The (mean error, mean support recovery) of one word length.

        The first request runs one batched-engine sweep over *all* of the
        explorer's bit widths at once (paired seeds, shared channel draws);
        later requests — including word lengths outside ``bit_widths`` —
        fill the cache incrementally.
        """
        if self.accuracy_trials <= 0:
            return None, None
        if word_length not in self._accuracy_cache:
            from repro.core.batch import BatchFixedPointMPEngine
            from repro.experiments.registry import get_scenario

            missing = sorted(
                ({int(bits) for bits in self.bit_widths} | {int(word_length)})
                - set(self._accuracy_cache)
            )
            spec = (
                get_scenario("fixedpoint-bitwidth").spec
                .with_axis("word_length", tuple(missing))
                .with_base(
                    snr_db=float(self.accuracy_snr_db),
                    num_channel_paths=int(self.accuracy_channel_paths),
                    num_paths=int(self.num_paths),
                )
                .with_seed(base_seed=self.accuracy_seed, replicates=self.accuracy_trials)
            )
            result = BatchFixedPointMPEngine().run_spec(spec, batch=self.accuracy_batch)
            errors = result.group_mean(by="word_length", metric="normalized_error")
            supports = result.group_mean(by="word_length", metric="support_recovery")
            for bits in missing:
                self._accuracy_cache[bits] = (errors[bits], supports[bits])
        return self._accuracy_cache[word_length]

    def evaluate_point(self, point: DesignPoint) -> DesignPointEvaluation:
        """Run every hardware model on one design point."""
        impl = FPGAImplementation(
            device=point.device,
            num_fc_blocks=point.num_fc_blocks,
            word_length=point.word_length,
            num_paths=self.num_paths,
            num_delays=self.num_delays,
            window_length=self.window_length,
        )
        area = impl.area
        timing = impl.timing
        mean_error, mean_support = self._accuracy_columns(point.word_length)
        return DesignPointEvaluation(
            point=point,
            implementation=impl,
            feasible=area.feasible,
            slices=area.slices,
            dsp48=area.dsp48,
            bram_blocks=area.bram_blocks,
            time_us=timing.execution_time_us,
            throughput_per_us=timing.throughput_per_us,
            power_w=impl.power.total_power_w,
            energy_uj=impl.energy.energy_uj,
            meets_deadline=timing.meets_deadline(self.real_time_deadline_s),
            mean_normalized_error=mean_error,
            mean_support_recovery=mean_support,
        )

    def explore(self) -> list[DesignPointEvaluation]:
        """Evaluate every point of the sweep."""
        evaluations = [self.evaluate_point(p) for p in self.points()]
        if self.include_infeasible:
            return evaluations
        return [e for e in evaluations if e.feasible]

    # ------------------------------------------------------------------ #
    # Analyses
    # ------------------------------------------------------------------ #
    def pareto_front(
        self, evaluations: list[DesignPointEvaluation] | None = None
    ) -> list[DesignPointEvaluation]:
        """Pareto-optimal feasible points on the (slices, energy) plane."""
        if evaluations is None:
            evaluations = self.explore()
        feasible = [e for e in evaluations if e.feasible]
        front = [
            e
            for e in feasible
            if not any(other.dominates(e) for other in feasible)
        ]
        return sorted(front, key=lambda e: e.slices)

    def minimum_energy_point(
        self, evaluations: list[DesignPointEvaluation] | None = None
    ) -> DesignPointEvaluation:
        """The feasible point with the lowest energy per estimation."""
        if evaluations is None:
            evaluations = self.explore()
        feasible = [e for e in evaluations if e.feasible]
        if not feasible:
            raise ValueError("no feasible design points in the sweep")
        return min(feasible, key=lambda e: e.energy_uj)

    def render_table(self, evaluations: list[DesignPointEvaluation] | None = None) -> str:
        """ASCII rendering in the layout of Table 2 (plus power/energy columns).

        When the evaluations carry accuracy columns (``accuracy_trials > 0``)
        an "Err vs truth" column is appended — the E6 estimation quality of
        each word length next to its area/energy cost.
        """
        if evaluations is None:
            evaluations = self.explore()
        with_accuracy = any(e.mean_normalized_error is not None for e in evaluations)
        headers = [
            "Bits", "#FC", "Device", "Feasible",
            "Slices", "Time (us)", "Tput (1/us)", "Power (W)", "Energy (uJ)",
        ]
        if with_accuracy:
            headers.append("Err vs truth")
        table = AsciiTable(
            headers=headers,
            title="Design space exploration of the MP IP core",
            float_format=".4g",
        )
        for e in evaluations:
            row = [
                e.point.word_length,
                e.point.num_fc_blocks,
                e.point.device.family,
                e.feasible,
                e.slices,
                e.time_us,
                e.throughput_per_us,
                e.power_w,
                e.energy_uj,
            ]
            if with_accuracy:
                row.append("-" if e.mean_normalized_error is None else e.mean_normalized_error)
            table.add_row(*row)
        return table.render()
