"""The q-gen block: global arg-max reduction over the FC blocks' candidates.

Steps 13-14 of the algorithm: among all delays not yet selected, find the one
with the largest decision variable Q, and forward its index and temporary
coefficient G back to the FC blocks for commitment and for the next
iteration's interference cancellation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QGenBlock", "QGenDecision"]


@dataclass(frozen=True)
class QGenDecision:
    """The winning candidate of one iteration."""

    index: int
    decision_value: float
    coefficient: complex


@dataclass
class QGenBlock:
    """Compares per-block candidates and tracks the already-selected set."""

    selected_indices: list[int] = field(default_factory=list)

    def reset(self) -> None:
        """Clear the selected-index history (start of a new estimation)."""
        self.selected_indices.clear()

    def select(self, candidates: list[tuple[int, float, complex]]) -> QGenDecision:
        """Pick the best candidate among those offered by the FC blocks.

        Each candidate is ``(global delay index, Q value, G value)``.  Indices
        that were already selected in earlier iterations are skipped — the FC
        blocks also mask them locally, but the q-gen performs the check again
        because a block whose every column has been selected still submits a
        (masked, -inf) candidate.
        """
        if not candidates:
            raise ValueError("q-gen received no candidates")
        best: QGenDecision | None = None
        for index, q_value, g_value in candidates:
            if index in self.selected_indices:
                continue
            if best is None or q_value > best.decision_value:
                best = QGenDecision(index=int(index), decision_value=float(q_value),
                                    coefficient=complex(g_value))
        if best is None:
            raise ValueError("all candidate delays have already been selected")
        self.selected_indices.append(best.index)
        return best
