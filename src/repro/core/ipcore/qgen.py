"""The q-gen block: global arg-max reduction over the FC blocks' candidates.

Steps 13–14 of the algorithm: among all delays not yet selected, find the one
with the largest decision variable Q, and forward its index and temporary
coefficient G back to the FC blocks for commitment and for the next
iteration's interference cancellation.

The q-gen shares the estimation's ``selected`` mask (a view of
:attr:`~repro.core.ipcore.fc_block.CoreRegisters.selected`) with the FC
blocks: marking the winner there is what masks the column out of every
block's next local candidate, exactly as the reference estimator's
``selected[q] = True`` does.

**Tie-break theorem.**  Each block submits its *first* local maximum
(``argmax`` over its window) and :meth:`QGenBlock.select` reduces the
candidates in block order with a strict ``>`` comparison, so among equal Q
values the earliest block — and within it the earliest column — wins.
Because the blocks partition the delay axis into ascending contiguous
windows, that winner is precisely ``np.argmax`` over the full masked Q
array: the selection rule of :func:`~repro.core.matching_pursuit.matching_pursuit`
and of the batched engines.  :meth:`QGenBlock.select_batch` exploits the
theorem to run the whole reduction as one per-trial ``argmax``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QGenBlock", "QGenDecision"]


@dataclass(frozen=True)
class QGenDecision:
    """The winning candidate of one iteration."""

    index: int
    decision_value: float
    coefficient: complex


@dataclass
class QGenBlock:
    """Compares per-block candidates and marks winners in the shared mask.

    Parameters
    ----------
    selected:
        The estimation's shared boolean mask (one flag per delay column);
        :meth:`select` marks each winner here, which both the q-gen's own
        already-selected check and the FC blocks' local masking read.
    """

    selected: np.ndarray
    selection_order: list[int] = field(default_factory=list)

    def reset(self) -> None:
        """Clear the mask and history (start of a new estimation)."""
        self.selected[...] = False
        self.selection_order.clear()

    def select(self, candidates: list[tuple[int, float, complex]]) -> QGenDecision:
        """Pick the best candidate among those offered by the FC blocks.

        Each candidate is ``(global delay index, Q value, G value)``.  Indices
        already selected in earlier iterations are skipped — the FC blocks
        also mask them locally, but the q-gen performs the check again
        because a block whose every column has been selected still submits a
        (masked, -inf) candidate.
        """
        if not candidates:
            raise ValueError("q-gen received no candidates")
        best: QGenDecision | None = None
        # the mask is strictly one estimation's (num_delays,) vector — a
        # batched (trials, num_delays) mask belongs to select_batch, and the
        # scalar indexing here makes passing one fail loudly
        for index, q_value, g_value in candidates:
            if self.selected[int(index)]:
                continue
            if best is None or q_value > best.decision_value:
                best = QGenDecision(index=int(index), decision_value=float(q_value),
                                    coefficient=complex(g_value))
        if best is None:
            raise ValueError("all candidate delays have already been selected")
        self.selected[best.index] = True
        self.selection_order.append(best.index)
        return best

    @staticmethod
    def select_batch(Q: np.ndarray, selected: np.ndarray) -> np.ndarray:
        """One q-gen reduction for every trial of a batch at once.

        ``Q`` and ``selected`` are ``(trials, num_delays)``; the per-trial
        winners are marked in ``selected`` and returned.  By the tie-break
        theorem above, one first-maximum ``argmax`` per trial is exactly the
        per-block local-candidate reduction the scalar q-gen performs.
        """
        masked = np.where(selected, -np.inf, Q)
        winners = np.argmax(masked, axis=1)
        selected[np.arange(winners.shape[0]), winners] = True
        return winners
