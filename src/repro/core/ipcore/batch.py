"""Batched IP-core engine: many channel estimations as array operations.

:class:`BatchIPCoreEngine` carries a whole ``(trials, window)`` stack of
receive vectors through the Figure 5 FC-block architecture at once:

* the matched filter runs across all trials and blocks as one batched
  matmul (where float64 accumulation is provably exact — otherwise the
  identical per-trial call the scalar path makes, see
  :meth:`~repro.core.fixedpoint_mp.FixedPointMatchingPursuit.matched_filter_batch`);
* the cancellation and G/Q updates are the *same*
  :class:`~repro.core.ipcore.fc_block.FilterAndCancelBlock` methods the
  scalar :class:`~repro.core.ipcore.simulator.IPCoreSimulator` drives, over
  a register file with a leading ``(trials,)`` axis — vectorised over the
  trial axis, block by block;
* the q-gen reduction is one per-trial ``argmax``
  (:meth:`~repro.core.ipcore.qgen.QGenBlock.select_batch`, equal to the
  scalar block-ordered reduction by the tie-break theorem);
* the control schedule is evaluated in closed form once per configuration
  (the :class:`~repro.core.ipcore.control.ControlUnit` cycle model does not
  depend on the data, only on the geometry), so every trial of a batch
  shares one :class:`~repro.core.ipcore.control.ScheduleBreakdown`.

Because every step is either an element-wise float64 expression (identical
bits whether evaluated per trial or per batch) or a reduction inside the
documented exactness bound, the engine is pinned **bit-identical** to a loop
of scalar ``IPCoreSimulator.estimate`` calls — ``==`` on raw integer codes —
at every parallelism level and word length
(``tests/core/test_ipcore_conformance.py``,
``tests/core/test_ipcore_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fixedpoint_mp import BatchFixedPointEstimate
from repro.core.ipcore.control import ScheduleBreakdown
from repro.core.ipcore.qgen import QGenBlock
from repro.core.ipcore.simulator import IPCoreConfig, IPCoreRun, IPCoreSimulator
from repro.dsp.signal_matrix import SignalMatrices
from repro.fixedpoint.metrics import dynamic_range_scale_batch
from repro.telemetry.metrics import counter, histogram
from repro.telemetry.tracing import span
from repro.utils.validation import ensure_2d_array

__all__ = ["BatchIPCoreEngine", "BatchIPCoreRun"]

# per-batch telemetry (one update per estimate_batch call, never per trial)
_TRIALS = counter("engine.ipcore.trials")
_CYCLES = counter("engine.ipcore.cycles")
_BATCH_TRIALS = histogram("engine.ipcore.batch_trials")


@dataclass
class BatchIPCoreRun:
    """Results of a batch of channel estimations on the simulated core.

    ``result`` carries the per-trial estimates (with raw integer codes) and
    ``schedule`` the closed-form cycle breakdown every trial shares —
    the core is a fixed-latency pipeline, so the cycle count depends only
    on the configuration, never on the data.
    """

    result: BatchFixedPointEstimate
    schedule: ScheduleBreakdown

    @property
    def total_cycles(self) -> int:
        """Clock cycles consumed by each estimation of the batch."""
        return self.schedule.total_cycles

    @property
    def num_trials(self) -> int:
        return self.result.num_trials

    def __len__(self) -> int:
        return self.num_trials

    def __getitem__(self, trial: int) -> IPCoreRun:
        """One trial's estimation as a scalar :class:`IPCoreRun`."""
        return IPCoreRun(result=self.result[trial], schedule=self.schedule)


class BatchIPCoreEngine:
    """Run many estimations through the FC-block architecture at once.

    Parameters
    ----------
    matrices, config, control_overrides:
        As for :class:`~repro.core.ipcore.simulator.IPCoreSimulator`; the
        engine builds (and exposes as :attr:`core`) a scalar simulator and
        shares its datapath, blocks and control unit — the two paths operate
        on literally the same quantised storage.
    simulator:
        Alternatively, wrap an existing simulator instead of building one.
    """

    def __init__(
        self,
        matrices: SignalMatrices | None = None,
        config: IPCoreConfig | None = None,
        *,
        simulator: IPCoreSimulator | None = None,
        **control_overrides: int,
    ) -> None:
        if simulator is not None:
            if matrices is not None or config is not None or control_overrides:
                raise ValueError(
                    "pass either an existing `simulator` or matrices/config, not both"
                )
            self.core = simulator
        else:
            if matrices is None:
                raise ValueError("matrices are required when no simulator is given")
            self.core = IPCoreSimulator(matrices, config, **control_overrides)

    @property
    def config(self) -> IPCoreConfig:
        return self.core.config

    def cycle_count(self) -> int:
        """Cycles per estimation (closed form, shared with the scalar core)."""
        return self.core.cycle_count()

    # ------------------------------------------------------------------ #
    def estimate_batch(self, received: np.ndarray) -> BatchIPCoreRun:
        """Estimate every row of a ``(trials, window)`` stack in one pass.

        Bit-identical to calling :meth:`IPCoreSimulator.estimate` on each
        row (an empty batch is valid and yields empty result arrays).
        """
        core = self.core
        received = ensure_2d_array(
            "received", received, dtype=np.complex128,
            shape=(None, core.matrices.window_length),
        )
        trials = received.shape[0]
        datapath = core.datapath

        with span("engine.ipcore.estimate_batch", trials=trials,
                  num_fc_blocks=core.config.num_fc_blocks,
                  word_length=core.config.word_length):
            with span("engine.ipcore.matched_filter", trials=trials):
                r_q, r_scales = datapath.quantize_received_batch(received)
                matched = datapath.matched_filter_batch(r_q)
                v_scales = dynamic_range_scale_batch(matched)
                g_scales, q_scales = datapath.coefficient_scales(v_scales)

                registers = core.new_registers(trials)
                for block in core.blocks:
                    block.matched_filter(registers, matched, v_scales)

            num_paths = core.config.num_paths
            rows = np.arange(trials)
            path_indices = np.empty((trials, num_paths), dtype=np.int64)
            path_gains = np.empty((trials, num_paths), dtype=np.complex128)
            decisions = np.empty((trials, num_paths), dtype=np.float64)

            with span("engine.ipcore.iterations", trials=trials, num_paths=num_paths):
                previous: np.ndarray | None = None
                for j in range(num_paths):
                    if previous is not None:
                        coefficients = registers.F[rows, previous]
                        for block in core.blocks:
                            block.cancel(registers, previous, coefficients, v_scales)
                    for block in core.blocks:
                        block.update_decision(registers, g_scales, q_scales)
                    # the q-gen reduction for every trial at once (the winning
                    # block's F latch is the same fancy-indexed assignment per
                    # trial)
                    winners = QGenBlock.select_batch(registers.Q, registers.selected)
                    registers.F[rows, winners] = registers.G[rows, winners]

                    path_indices[:, j] = winners
                    path_gains[:, j] = registers.G[rows, winners]
                    decisions[:, j] = registers.Q[rows, winners]
                    previous = winners

            result = datapath.assemble_estimate_batch(
                registers.F, path_indices, path_gains, decisions,
                r_scales, g_scales, q_scales,
            )
            schedule = core.control.schedule()
        _TRIALS.inc(trials)
        _BATCH_TRIALS.observe(trials)
        _CYCLES.inc(schedule.total_cycles * trials)
        return BatchIPCoreRun(result=result, schedule=schedule)
