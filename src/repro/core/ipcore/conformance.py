"""Three-way cross-layer conformance: IP core == fixed-point MP == reference.

The paper's Table 2/3 results are only meaningful if the partitioned,
quantised FC-block datapath computes the *same* estimates as the Matching
Pursuits algorithm at every parallelism level P and word length w.  This
module makes that claim executable:

1. **IP core == fixed-point MP** — the scalar
   :class:`~repro.core.ipcore.simulator.IPCoreSimulator` must equal
   :class:`~repro.core.fixedpoint_mp.FixedPointMatchingPursuit` with ``==``
   on raw integer codes (no float tolerances).  The datapaths coincide by
   construction wherever the quantiser modes match — at *every* P, since
   partitioning is a scheduling choice that cannot move a quantisation
   point (P=1 is the degenerate case where the two are the same machine).
2. **batched == scalar** — :class:`~repro.core.ipcore.batch.BatchIPCoreEngine`
   must equal a loop of scalar estimations, again with ``==`` on raw codes.
3. **fixed point ≈ float** — against the floating-point
   :func:`~repro.core.matching_pursuit.matching_pursuit` the quantised
   estimate can only agree within quantisation bounds;
   :data:`FLOAT_ERROR_BOUNDS` documents those bounds per word length.

:func:`check_conformance` sweeps a P × w grid over a common stack of receive
vectors and returns a :class:`ConformanceReport`;
``tests/core/test_ipcore_conformance.py`` drives it across the full
P ∈ {1, 2, 4, 8, 14, 28, 56, 112} × w ∈ {2, 8, 12, 16, 32} cross, and the
``repro ipcore`` CLI study re-asserts cross-P identity on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.core.ipcore.batch import BatchIPCoreEngine
from repro.core.ipcore.simulator import IPCoreConfig
from repro.core.matching_pursuit import matching_pursuit
from repro.core.metrics import normalized_channel_error
from repro.dsp.signal_matrix import SignalMatrices
from repro.fixedpoint.quantize import OverflowMode, RoundingMode
from repro.utils.validation import ensure_2d_array

__all__ = [
    "ConformanceCell",
    "ConformanceReport",
    "check_conformance",
    "DEFAULT_PARALLELISM_LEVELS",
    "DEFAULT_WORD_LENGTHS",
    "FLOAT_ERROR_BOUNDS",
]

#: Every power-of-two-ish divisor of Ns = 112 the paper's design space spans.
DEFAULT_PARALLELISM_LEVELS: tuple[int, ...] = (1, 2, 4, 8, 14, 28, 56, 112)

#: The conformance word-length sweep: the paper's 8/12/16 plus both extremes.
DEFAULT_WORD_LENGTHS: tuple[int, ...] = (2, 8, 12, 16, 32)

#: Documented quantisation bounds on the normalised error of the fixed-point
#: estimate against the floating-point reference, per word length — empirical
#: envelopes (with margin) over well-conditioned sparse-channel problems at
#: >= 25 dB SNR, the conformance harness's problem family.  At w=2 the
#: datapath carries one magnitude bit, so only the order of magnitude
#: survives; by w=16 the two agree to ~1e-4.
FLOAT_ERROR_BOUNDS: dict[int, float] = {
    2: 2.0,
    8: 0.6,
    12: 0.25,
    16: 1e-3,
    32: 1e-7,
}


@dataclass(frozen=True)
class ConformanceCell:
    """Outcome of the three-way check at one (P, w) design point."""

    num_fc_blocks: int
    word_length: int
    #: scalar IP core == FixedPointMatchingPursuit, ``==`` on raw codes
    ipcore_equals_fixedpoint: bool
    #: BatchIPCoreEngine == loop of scalar IPCoreSimulator, ``==`` on raw codes
    batch_equals_scalar: bool
    #: closed-form cycles per estimation at this P
    total_cycles: int
    #: max over trials of this cell's IP-core estimates' normalised error
    #: against the float reference
    max_error_vs_float: float

    @property
    def exact(self) -> bool:
        """True when both exact (integer-code) pins of this cell hold."""
        return self.ipcore_equals_fixedpoint and self.batch_equals_scalar

    @property
    def float_error_within_bounds(self) -> bool:
        """True when the float deviation respects the documented bound."""
        bound = FLOAT_ERROR_BOUNDS.get(self.word_length)
        return bound is None or self.max_error_vs_float <= bound


@dataclass(frozen=True)
class ConformanceReport:
    """The full P × w conformance grid over one stack of receive vectors."""

    cells: tuple[ConformanceCell, ...]
    num_trials: int

    @property
    def all_exact(self) -> bool:
        """Every cell's integer-code pins hold."""
        return all(cell.exact for cell in self.cells)

    @property
    def all_within_float_bounds(self) -> bool:
        """Every cell's float deviation respects its documented bound."""
        return all(cell.float_error_within_bounds for cell in self.cells)

    def cell(self, num_fc_blocks: int, word_length: int) -> ConformanceCell:
        """Look up one design point's cell."""
        for cell in self.cells:
            if cell.num_fc_blocks == num_fc_blocks and cell.word_length == word_length:
                return cell
        raise KeyError(f"no conformance cell for P={num_fc_blocks}, w={word_length}")

    def failures(self) -> list[ConformanceCell]:
        """Cells violating an exact pin or a documented float bound."""
        return [
            cell for cell in self.cells
            if not (cell.exact and cell.float_error_within_bounds)
        ]


def check_conformance(
    matrices: SignalMatrices,
    received: np.ndarray,
    parallelism_levels: tuple[int, ...] = DEFAULT_PARALLELISM_LEVELS,
    word_lengths: tuple[int, ...] = DEFAULT_WORD_LENGTHS,
    num_paths: int = 6,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> ConformanceReport:
    """Run the three-way check over a P × w grid on a common trial stack.

    ``received`` is a ``(trials, window)`` stack shared by every design
    point, so the cells are directly comparable.  The quantiser modes are
    applied to both the IP cores and the fixed-point reference (the
    conformance contract only holds where the modes match).
    """
    received = ensure_2d_array(
        "received", received, dtype=np.complex128,
        shape=(None, matrices.window_length),
    )
    trials = received.shape[0]
    float_references = [
        matching_pursuit(received[t], matrices, num_paths=num_paths)
        for t in range(trials)
    ]

    cells: list[ConformanceCell] = []
    for word_length in word_lengths:
        fixed_point = FixedPointMatchingPursuit(
            matrices, word_length=word_length, num_paths=num_paths,
            rounding=rounding, overflow=overflow,
        )
        reference_estimates = [fixed_point.estimate(received[t]) for t in range(trials)]
        for num_fc_blocks in parallelism_levels:
            engine = BatchIPCoreEngine(
                matrices,
                IPCoreConfig(
                    num_fc_blocks=num_fc_blocks, word_length=word_length,
                    num_paths=num_paths, rounding=rounding, overflow=overflow,
                ),
            )
            scalar_runs = [engine.core.estimate(received[t]) for t in range(trials)]
            batch_run = engine.estimate_batch(received)
            # measured from THIS cell's IP-core estimates, so a conformance
            # break at one P shows up in its own float-deviation number too
            max_error = 0.0
            for reference, run in zip(float_references, scalar_runs):
                if float(np.linalg.norm(reference.coefficients)) > 0.0:
                    max_error = max(
                        max_error,
                        normalized_channel_error(
                            reference.coefficients, run.result.coefficients
                        ),
                    )
            cells.append(ConformanceCell(
                num_fc_blocks=num_fc_blocks,
                word_length=word_length,
                ipcore_equals_fixedpoint=all(
                    run.result == reference
                    for run, reference in zip(scalar_runs, reference_estimates)
                ),
                batch_equals_scalar=all(
                    batch_run.result[t] == scalar_runs[t].result for t in range(trials)
                ),
                total_cycles=batch_run.total_cycles,
                max_error_vs_float=max_error,
            ))
    return ConformanceReport(cells=tuple(cells), num_trials=trials)
