"""The assembled IP core: FC blocks + q-gen + control.

:class:`IPCoreSimulator` is the software twin of the Figure 5 architecture.
It produces exactly the same estimate structure as the reference algorithm
(:func:`repro.core.matching_pursuit.matching_pursuit`) — the datapath is the
same mathematics, merely partitioned across FC blocks and quantised to the
configured word length — plus a cycle count from the control unit's schedule,
which is what the timing column of Table 2 is built from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ipcore.control import ControlUnit, ScheduleBreakdown
from repro.core.ipcore.fc_block import FilterAndCancelBlock
from repro.core.ipcore.qgen import QGenBlock
from repro.core.matching_pursuit import MatchingPursuitResult
from repro.dsp.signal_matrix import SignalMatrices
from repro.utils.validation import check_integer, ensure_1d_array

__all__ = ["IPCoreConfig", "IPCoreRun", "IPCoreSimulator"]


@dataclass(frozen=True)
class IPCoreConfig:
    """Static configuration of an IP core instance.

    Parameters
    ----------
    num_fc_blocks:
        Level of parallelism P (1 = fully serial, Ns = fully parallel); must
        divide the number of delay columns.
    word_length:
        Datapath width in bits.
    num_paths:
        Number of MP iterations Nf.
    """

    num_fc_blocks: int = 112
    word_length: int = 8
    num_paths: int = 6

    def __post_init__(self) -> None:
        check_integer("num_fc_blocks", self.num_fc_blocks, minimum=1)
        check_integer("word_length", self.word_length, minimum=2, maximum=32)
        check_integer("num_paths", self.num_paths, minimum=1)


@dataclass
class IPCoreRun:
    """Result of one channel estimation on the simulated core."""

    result: MatchingPursuitResult
    schedule: ScheduleBreakdown

    @property
    def total_cycles(self) -> int:
        """Clock cycles consumed by the estimation."""
        return self.schedule.total_cycles


class IPCoreSimulator:
    """Software model of the Filter-and-Cancel IP core.

    Parameters
    ----------
    matrices:
        The pre-computed signal matrices (stored, quantised, in the FC blocks'
        block RAM).
    config:
        Core geometry and word length.
    control_overrides:
        Optional keyword overrides forwarded to
        :class:`~repro.core.ipcore.control.ControlUnit` (e.g. non-zero q-gen
        latency for sensitivity studies).
    """

    def __init__(
        self,
        matrices: SignalMatrices,
        config: IPCoreConfig | None = None,
        **control_overrides: int,
    ) -> None:
        self.matrices = matrices
        self.config = config if config is not None else IPCoreConfig()
        num_delays = matrices.num_delays
        if num_delays % self.config.num_fc_blocks != 0:
            raise ValueError(
                f"num_fc_blocks ({self.config.num_fc_blocks}) must divide the number of "
                f"delay columns ({num_delays})"
            )
        if self.config.num_paths > num_delays:
            raise ValueError("num_paths cannot exceed the number of delay columns")

        self.control = ControlUnit(
            num_delays=num_delays,
            window_length=matrices.window_length,
            num_fc_blocks=self.config.num_fc_blocks,
            num_paths=self.config.num_paths,
            **control_overrides,
        )
        self.qgen = QGenBlock()
        self.blocks = self._build_blocks()

    # ------------------------------------------------------------------ #
    def _build_blocks(self) -> list[FilterAndCancelBlock]:
        """Partition the delay columns across the FC blocks.

        Columns are dealt out in contiguous slices, matching the paper's
        description of doubling up memory contents per block as the design is
        serialised.
        """
        num_delays = self.matrices.num_delays
        per_block = num_delays // self.config.num_fc_blocks
        blocks = []
        for b in range(self.config.num_fc_blocks):
            cols = np.arange(b * per_block, (b + 1) * per_block, dtype=np.int64)
            blocks.append(
                FilterAndCancelBlock(
                    block_id=b,
                    column_indices=cols,
                    S_columns=self.matrices.S[:, cols],
                    A_columns=self.matrices.A[:, cols],
                    a_elements=self.matrices.a[cols],
                    word_length=self.config.word_length,
                )
            )
        return blocks

    # ------------------------------------------------------------------ #
    def estimate(self, received: np.ndarray) -> IPCoreRun:
        """Run one channel estimation and return the result plus cycle counts."""
        received = ensure_1d_array(
            "received", received, dtype=np.complex128, length=self.matrices.window_length
        )
        self.qgen.reset()
        for block in self.blocks:
            block.matched_filter(received)

        num_delays = self.matrices.num_delays
        coefficients = np.zeros(num_delays, dtype=np.complex128)
        path_indices = np.empty(self.config.num_paths, dtype=np.int64)
        path_gains = np.empty(self.config.num_paths, dtype=np.complex128)
        decisions = np.empty(self.config.num_paths, dtype=np.float64)

        previous_index: int | None = None
        previous_coefficient: complex = 0.0 + 0.0j
        for j in range(self.config.num_paths):
            if previous_index is not None:
                for block in self.blocks:
                    block.cancel(previous_index, previous_coefficient)
            for block in self.blocks:
                block.update_decision()
            candidates = [block.local_candidate() for block in self.blocks]
            winner = self.qgen.select(candidates)
            owner = next(block for block in self.blocks if block.owns(winner.index))
            committed = owner.commit(winner.index)

            coefficients[winner.index] = committed
            path_indices[j] = winner.index
            path_gains[j] = committed
            decisions[j] = winner.decision_value
            previous_index = winner.index
            previous_coefficient = committed

        result = MatchingPursuitResult(
            coefficients=coefficients,
            path_indices=path_indices,
            path_gains=path_gains,
            decision_history=decisions,
        )
        return IPCoreRun(result=result, schedule=self.control.schedule())

    # ------------------------------------------------------------------ #
    def cycle_count(self) -> int:
        """Cycles per estimation without running the datapath (used by the DSE)."""
        return self.control.total_cycles()

    @property
    def num_fc_blocks(self) -> int:
        """Level of parallelism of this instance."""
        return self.config.num_fc_blocks

    @property
    def dsp48_per_fc_block(self) -> int:
        """Embedded multipliers per FC block (real + imaginary datapaths)."""
        return 2

    @property
    def total_dsp48(self) -> int:
        """Total DSP48 usage (the resource that rules out the Spartan-3 112-block design)."""
        return self.dsp48_per_fc_block * self.config.num_fc_blocks
