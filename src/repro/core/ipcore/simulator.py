"""The assembled IP core: FC blocks + q-gen + control.

:class:`IPCoreSimulator` is the software twin of the Figure 5 architecture.
Its datapath is *bit-faithful* to
:class:`~repro.core.fixedpoint_mp.FixedPointMatchingPursuit` at the same word
length, rounding and overflow modes: the blocks store the same globally
quantised matrices, every intermediate is re-quantised through the same
shared calls, and the q-gen's block-ordered reduction realises the same
first-maximum tie-break — so the estimate (down to the raw integer codes)
is identical at *every* parallelism level P, and equal to the reference
fixed-point estimator's (``tests/core/test_ipcore_conformance.py`` pins the
three-way contract).  What P changes is the schedule: the cycle count from
the control unit, which is what the timing column of Table 2 is built from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fixedpoint_mp import FixedPointEstimate, FixedPointMatchingPursuit
from repro.core.ipcore.control import ControlUnit, ScheduleBreakdown
from repro.core.ipcore.fc_block import CoreRegisters, FilterAndCancelBlock
from repro.core.ipcore.qgen import QGenBlock
from repro.dsp.signal_matrix import SignalMatrices
from repro.fixedpoint.metrics import dynamic_range_scale
from repro.fixedpoint.quantize import OverflowMode, RoundingMode
from repro.utils.validation import check_integer, ensure_1d_array

__all__ = ["IPCoreConfig", "IPCoreRun", "IPCoreSimulator"]


@dataclass(frozen=True)
class IPCoreConfig:
    """Static configuration of an IP core instance.

    Parameters
    ----------
    num_fc_blocks:
        Level of parallelism P (1 = fully serial, Ns = fully parallel); must
        divide the number of delay columns.
    word_length:
        Datapath width in bits.
    num_paths:
        Number of MP iterations Nf.
    accumulator_growth_bits:
        Extra bits carried by the matched-filter accumulator beyond the
        input word length (DSP48 accumulators are wide; default 16).
    rounding, overflow:
        Rounding and overflow behaviour of every quantiser in the datapath
        (the System Generator block parameters).
    """

    num_fc_blocks: int = 112
    word_length: int = 8
    num_paths: int = 6
    accumulator_growth_bits: int = 16
    rounding: RoundingMode = RoundingMode.NEAREST
    overflow: OverflowMode = OverflowMode.SATURATE

    def __post_init__(self) -> None:
        check_integer("num_fc_blocks", self.num_fc_blocks, minimum=1)
        check_integer("word_length", self.word_length, minimum=2, maximum=32)
        check_integer("num_paths", self.num_paths, minimum=1)
        check_integer("accumulator_growth_bits", self.accumulator_growth_bits,
                      minimum=0, maximum=32)
        object.__setattr__(self, "rounding", RoundingMode(self.rounding))
        object.__setattr__(self, "overflow", OverflowMode(self.overflow))


@dataclass
class IPCoreRun:
    """Result of one channel estimation on the simulated core."""

    result: FixedPointEstimate
    schedule: ScheduleBreakdown

    @property
    def total_cycles(self) -> int:
        """Clock cycles consumed by the estimation."""
        return self.schedule.total_cycles


class IPCoreSimulator:
    """Software model of the Filter-and-Cancel IP core.

    Parameters
    ----------
    matrices:
        The pre-computed signal matrices (stored, quantised, in the FC blocks'
        block RAM).
    config:
        Core geometry, word length and quantiser modes.
    control_overrides:
        Optional keyword overrides forwarded to
        :class:`~repro.core.ipcore.control.ControlUnit` (e.g. non-zero q-gen
        latency for sensitivity studies).

    The simulator holds only static state: the shared fixed-point
    :attr:`datapath` (quantised matrices, formats, re-quantisers) and the
    :attr:`blocks` that view into it.  Every :meth:`estimate` call allocates
    a fresh :class:`~repro.core.ipcore.fc_block.CoreRegisters` file, so
    repeated calls on one instance are independent by construction.
    """

    def __init__(
        self,
        matrices: SignalMatrices,
        config: IPCoreConfig | None = None,
        **control_overrides: int,
    ) -> None:
        self.matrices = matrices
        self.config = config if config is not None else IPCoreConfig()
        num_delays = matrices.num_delays
        if num_delays % self.config.num_fc_blocks != 0:
            raise ValueError(
                f"num_fc_blocks ({self.config.num_fc_blocks}) must divide the number of "
                f"delay columns ({num_delays})"
            )
        if self.config.num_paths > num_delays:
            raise ValueError("num_paths cannot exceed the number of delay columns")

        #: the shared fixed-point datapath: quantisation points, formats and
        #: re-quantisers — identical to the reference estimator's by
        #: construction (it *is* one)
        self.datapath = FixedPointMatchingPursuit(
            matrices,
            word_length=self.config.word_length,
            num_paths=self.config.num_paths,
            accumulator_growth_bits=self.config.accumulator_growth_bits,
            rounding=self.config.rounding,
            overflow=self.config.overflow,
        )
        self.control = ControlUnit(
            num_delays=num_delays,
            window_length=matrices.window_length,
            num_fc_blocks=self.config.num_fc_blocks,
            num_paths=self.config.num_paths,
            **control_overrides,
        )
        self.blocks = self._build_blocks()

    # ------------------------------------------------------------------ #
    def _build_blocks(self) -> list[FilterAndCancelBlock]:
        """Partition the delay columns across the FC blocks.

        Columns are dealt out in contiguous ascending windows, matching the
        paper's description of doubling up memory contents per block as the
        design is serialised (and the q-gen tie-break theorem's premise).
        """
        per_block = self.matrices.num_delays // self.config.num_fc_blocks
        return [
            FilterAndCancelBlock(b, b * per_block, (b + 1) * per_block, self.datapath)
            for b in range(self.config.num_fc_blocks)
        ]

    def new_registers(self, trials: int | None = None) -> CoreRegisters:
        """A fresh register file covering every block's columns."""
        return CoreRegisters.zeros(self.matrices.num_delays, trials)

    def owner_of(self, global_index: int) -> FilterAndCancelBlock:
        """The FC block whose window contains ``global_index``."""
        per_block = self.matrices.num_delays // self.config.num_fc_blocks
        return self.blocks[int(global_index) // per_block]

    # ------------------------------------------------------------------ #
    def estimate(self, received: np.ndarray) -> IPCoreRun:
        """Run one channel estimation and return the result plus cycle counts."""
        received = ensure_1d_array(
            "received", received, dtype=np.complex128, length=self.matrices.window_length
        )
        datapath = self.datapath
        r_q, r_scale = datapath.quantize_received(received)
        matched = datapath.matched_filter(r_q)
        v_scale = dynamic_range_scale(matched)
        g_scale, q_scale = datapath.coefficient_scales(v_scale)

        registers = self.new_registers()
        qgen = QGenBlock(registers.selected)
        for block in self.blocks:
            block.matched_filter(registers, matched, v_scale)

        num_paths = self.config.num_paths
        path_indices = np.empty(num_paths, dtype=np.int64)
        path_gains = np.empty(num_paths, dtype=np.complex128)
        decisions = np.empty(num_paths, dtype=np.float64)

        previous: int | None = None
        for j in range(num_paths):
            if previous is not None:
                coefficient = registers.F[previous]
                for block in self.blocks:
                    block.cancel(registers, previous, coefficient, v_scale)
            for block in self.blocks:
                block.update_decision(registers, g_scale, q_scale)
            winner = qgen.select([block.local_candidate(registers) for block in self.blocks])
            committed = self.owner_of(winner.index).commit(registers, winner.index)

            path_indices[j] = winner.index
            path_gains[j] = committed
            decisions[j] = winner.decision_value
            previous = winner.index

        result = datapath.assemble_estimate(
            registers.F, path_indices, path_gains, decisions, r_scale, g_scale, q_scale
        )
        return IPCoreRun(result=result, schedule=self.control.schedule())

    # ------------------------------------------------------------------ #
    def cycle_count(self) -> int:
        """Cycles per estimation without running the datapath (used by the DSE)."""
        return self.control.total_cycles()

    @property
    def num_fc_blocks(self) -> int:
        """Level of parallelism of this instance."""
        return self.config.num_fc_blocks

    @property
    def word_length(self) -> int:
        """Datapath width in bits."""
        return self.config.word_length

    @property
    def dsp48_per_fc_block(self) -> int:
        """Embedded multipliers per FC block (real + imaginary datapaths)."""
        return 2

    @property
    def total_dsp48(self) -> int:
        """Total DSP48 usage (the resource that rules out the Spartan-3 112-block design)."""
        return self.dsp48_per_fc_block * self.config.num_fc_blocks
