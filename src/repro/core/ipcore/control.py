"""Cycle accounting for the IP core's control schedule.

The control unit (implemented as an M-code block in the paper's System
Generator design) sequences three phases:

1. **Matched filter** — each FC block streams the 2*Ns receive samples past
   each of its owned columns, one multiply-accumulate per clock cycle per
   block, so the phase takes ``columns_per_block * window_length`` cycles.
2. **Iterations** — for each of the ``Nf`` paths, every FC block walks its
   owned columns once performing the cancellation and the G/Q updates
   (a small constant number of cycles per column), after which the q-gen
   reduction runs (pipelined with / overlapped by the next iteration's
   column walk in the reference design, hence zero additional cycles by
   default, but configurable).
3. **Drain** — optional pipeline fill/drain overhead.

The default per-phase constants are calibrated so the model reproduces the
paper's Table 2 timings to within 1% (see
``tests/hardware/test_paper_timing.py``): total cycles =
``(Ns / P) * (2*Ns + Nf * 4)``, e.g. 248 cycles for the fully parallel
(112-block) design and 27 776 cycles for the single-block design.

The schedule is *closed form* — it depends only on the core geometry, never
on the data — which is what lets the batched engine
(:class:`~repro.core.ipcore.batch.BatchIPCoreEngine`) evaluate it once per
configuration and share one :class:`ScheduleBreakdown` across every trial of
a batch, and lets :func:`repro.hardware.timing.timing_from_schedule` turn it
into an execution time without running the datapath.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.utils.validation import check_integer

__all__ = ["CyclePhase", "ScheduleBreakdown", "ControlUnit"]


class CyclePhase(str, Enum):
    """The phases of the IP core schedule."""

    MATCHED_FILTER = "matched_filter"
    ITERATIONS = "iterations"
    DRAIN = "drain"


@dataclass(frozen=True)
class ScheduleBreakdown:
    """Cycle counts per phase plus the total."""

    matched_filter_cycles: int
    iteration_cycles: int
    drain_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.matched_filter_cycles + self.iteration_cycles + self.drain_cycles

    def as_dict(self) -> dict[str, int]:
        return {
            CyclePhase.MATCHED_FILTER.value: self.matched_filter_cycles,
            CyclePhase.ITERATIONS.value: self.iteration_cycles,
            CyclePhase.DRAIN.value: self.drain_cycles,
            "total": self.total_cycles,
        }


@dataclass(frozen=True)
class ControlUnit:
    """Cycle accountant for a given core geometry.

    Parameters
    ----------
    num_delays:
        Number of hypothesised delay columns (Ns = 112 for the AquaModem).
    window_length:
        Receive-window length in samples (2*Ns = 224).
    num_fc_blocks:
        Level of parallelism P; must divide ``num_delays``.
    num_paths:
        Number of MP iterations (Nf).
    cancel_cycles_per_column:
        Cycles per column for the interference-cancellation MAC (default 1).
    update_cycles_per_column:
        Cycles per column for the G/Q update (one multiply for G, a
        complex-magnitude multiply for Q; default 3).
    qgen_cycles_per_iteration:
        Additional (non-overlapped) cycles for the q-gen reduction per
        iteration; the reference design fully overlaps it (default 0).
    drain_cycles:
        Pipeline fill/drain overhead added once per estimation (default 0).
    """

    num_delays: int
    window_length: int
    num_fc_blocks: int
    num_paths: int = 6
    cancel_cycles_per_column: int = 1
    update_cycles_per_column: int = 3
    qgen_cycles_per_iteration: int = 0
    drain_cycles: int = 0

    def __post_init__(self) -> None:
        check_integer("num_delays", self.num_delays, minimum=1)
        check_integer("window_length", self.window_length, minimum=1)
        check_integer("num_fc_blocks", self.num_fc_blocks, minimum=1, maximum=self.num_delays)
        check_integer("num_paths", self.num_paths, minimum=1)
        check_integer("cancel_cycles_per_column", self.cancel_cycles_per_column, minimum=0)
        check_integer("update_cycles_per_column", self.update_cycles_per_column, minimum=0)
        check_integer("qgen_cycles_per_iteration", self.qgen_cycles_per_iteration, minimum=0)
        check_integer("drain_cycles", self.drain_cycles, minimum=0)
        if self.num_delays % self.num_fc_blocks != 0:
            raise ValueError(
                f"num_fc_blocks ({self.num_fc_blocks}) must divide num_delays ({self.num_delays})"
            )

    # ------------------------------------------------------------------ #
    @property
    def columns_per_block(self) -> int:
        """How many delay columns each FC block is time-multiplexed over."""
        return self.num_delays // self.num_fc_blocks

    @property
    def serialization_factor(self) -> int:
        """Alias for :attr:`columns_per_block`; the paper's area/time trade knob."""
        return self.columns_per_block

    def schedule(self) -> ScheduleBreakdown:
        """Cycle counts for a full channel estimation."""
        mf = self.columns_per_block * self.window_length
        per_iteration = self.columns_per_block * (
            self.cancel_cycles_per_column + self.update_cycles_per_column
        ) + self.qgen_cycles_per_iteration
        return ScheduleBreakdown(
            matched_filter_cycles=mf,
            iteration_cycles=self.num_paths * per_iteration,
            drain_cycles=self.drain_cycles,
        )

    def total_cycles(self) -> int:
        """Total clock cycles for one channel estimation."""
        return self.schedule().total_cycles
