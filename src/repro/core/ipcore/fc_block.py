"""One Filter-and-Cancel (FC) block of the IP core, plus the shared register file.

Each FC block owns a *contiguous* window ``[start, stop)`` of the delay
columns.  For every owned column ``k`` it stores (in block RAM) column ``k``
of ``S``, row ``k`` of ``A`` and element ``k`` of ``a`` — all quantised to
the datapath word length — and it operates the registers the paper names
VKR/VKI (matched-filter output), GKR/GKI (temporary coefficient), FKR/FKI
(committed coefficient) and QK (decision variable).

Two design decisions make the model conformant across every parallelism
level *and* against :class:`~repro.core.fixedpoint_mp.FixedPointMatchingPursuit`:

* **Global quantisation points.**  The stored matrices are views of the
  shared datapath's globally-scaled quantised ``S_q``/``A_q``/``a_q``
  (one dynamic-range scale per matrix, a design-time constant of the core —
  not one per block slice), so the block RAM contents of a P=14 core are
  bit-for-bit the concatenation of the P=112 core's.  Partitioning is purely
  a scheduling choice; it cannot move a quantisation point.
* **A shared register file.**  The V/G/F/Q registers of *all* blocks live in
  one :class:`CoreRegisters` array per estimation, each block addressing its
  ``[start, stop)`` window.  Every block operation is an element-wise
  float64 expression over its window — and element-wise IEEE 754 arithmetic
  is deterministic, so operating on a window produces the same bits as
  operating on the whole array.  The batched engine
  (:class:`~repro.core.ipcore.batch.BatchIPCoreEngine`) drives the *same*
  block methods over registers with a leading ``(trials,)`` axis.

The real and imaginary datapaths are duplicated in hardware; in the model
the complex arithmetic captures both at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.utils.validation import check_integer

__all__ = ["CoreRegisters", "FilterAndCancelBlock"]


@dataclass
class CoreRegisters:
    """The register file of one estimation, shared by every FC block.

    Arrays are ``(num_delays,)`` for a scalar estimation or
    ``(trials, num_delays)`` for a batched one; block ``b`` addresses the
    trailing-axis window ``[start_b, stop_b)``.  A fresh file is allocated
    per estimation (steps 2–4 of the algorithm zero every register), which
    is what guarantees repeated calls on one simulator instance can never
    see stale decision metrics.
    """

    V: np.ndarray
    G: np.ndarray
    F: np.ndarray
    Q: np.ndarray
    selected: np.ndarray

    @classmethod
    def zeros(cls, num_delays: int, trials: int | None = None) -> "CoreRegisters":
        """A zeroed register file for ``num_delays`` columns (optionally batched)."""
        check_integer("num_delays", num_delays, minimum=1)
        if trials is None:
            shape: tuple[int, ...] = (num_delays,)
        else:
            check_integer("trials", trials, minimum=0)
            shape = (trials, num_delays)
        return cls(
            V=np.zeros(shape, dtype=np.complex128),
            G=np.zeros(shape, dtype=np.complex128),
            F=np.zeros(shape, dtype=np.complex128),
            Q=np.zeros(shape, dtype=np.float64),
            selected=np.zeros(shape, dtype=bool),
        )

    @property
    def num_delays(self) -> int:
        """Number of delay columns covered by the file."""
        return int(self.V.shape[-1])

    @property
    def batched(self) -> bool:
        """True when the registers carry a leading ``(trials,)`` axis."""
        return self.V.ndim == 2


class FilterAndCancelBlock:
    """One FC block responsible for the delay columns ``[start, stop)``.

    Parameters
    ----------
    block_id:
        Index of this block within the core (0-based).
    start, stop:
        The contiguous global delay window owned by this block.
    datapath:
        The shared fixed-point datapath.  The block's stored matrices are
        views of its globally-quantised ``S_q``/``A_q``/``a_q``, and every
        re-quantisation goes through its
        :meth:`~repro.core.fixedpoint_mp.FixedPointMatchingPursuit.requantize`
        — the same calls the reference estimator makes, which is what the
        ``==``-on-raw-codes conformance contract rests on.

    All datapath methods take the estimation's :class:`CoreRegisters` (and
    the scales derived from its receive vector) explicitly: the block holds
    only static storage, never per-call state.
    """

    def __init__(
        self,
        block_id: int,
        start: int,
        stop: int,
        datapath: FixedPointMatchingPursuit,
    ) -> None:
        self.block_id = check_integer("block_id", block_id, minimum=0)
        num_delays = datapath.matrices.num_delays
        self.start = check_integer("start", start, minimum=0, maximum=num_delays - 1)
        self.stop = check_integer("stop", stop, minimum=start + 1, maximum=num_delays)
        self.datapath = datapath
        #: quantised block-RAM contents (views of the shared global matrices)
        self.S = datapath.S_q[:, start:stop]
        self.A = datapath.A_q[start:stop, :]
        self.a = datapath.a_q[start:stop]

    # ------------------------------------------------------------------ #
    @property
    def num_columns(self) -> int:
        """Number of delay columns owned by this block."""
        return self.stop - self.start

    @property
    def column_indices(self) -> np.ndarray:
        """The global delay indices owned by this block."""
        return np.arange(self.start, self.stop, dtype=np.int64)

    @property
    def word_length(self) -> int:
        """Datapath width in bits (the shared datapath's word length)."""
        return self.datapath.word_length

    def owns(self, global_index: int) -> bool:
        """True if the given delay column lives in this block."""
        return self.start <= int(global_index) < self.stop

    def _window(self, values: np.ndarray) -> np.ndarray:
        """This block's trailing-axis window of a register array."""
        return values[..., self.start:self.stop]

    # ------------------------------------------------------------------ #
    # Datapath operations
    # ------------------------------------------------------------------ #
    def matched_filter(self, registers: CoreRegisters, matched: np.ndarray, v_scale) -> None:
        """Steps 1–5: load V_k from the matched-filter outputs, re-quantised.

        ``matched`` is the canonical matched-filter output ``S_q^T r_q``
        computed by the shared datapath (the per-column MAC of the hardware
        is the same per-column dot product; evaluating it through the one
        canonical call keeps the bits independent of the partition).
        """
        self._window(registers.V)[...] = self.datapath.requantize(
            self._window(matched), v_scale
        )

    def cancel(self, registers: CoreRegisters, previous, coefficient, v_scale) -> None:
        """Step 8: subtract the selected path's interference from owned V_k.

        ``previous`` is the delay selected in the previous iteration and
        ``coefficient`` its committed value F_q — scalars for one trial, or
        per-trial arrays for batched registers.
        """
        if registers.batched:
            term = self.A[:, previous].T * np.asarray(coefficient)[:, np.newaxis]
        else:
            term = self.A[:, int(previous)] * coefficient
        window = self._window(registers.V)
        window[...] = self.datapath.requantize(window - term, v_scale)

    def update_decision(self, registers: CoreRegisters, g_scale, q_scale) -> None:
        """Steps 10–11: G_k = V_k a_k and Q_k = Re{G_k^* V_k} for owned columns."""
        V = self._window(registers.V)
        G = self.datapath.requantize(V * self.a, g_scale)
        self._window(registers.G)[...] = G
        self._window(registers.Q)[...] = self.datapath.requantize(
            np.real(np.conj(G) * V), q_scale
        )

    def local_candidate(self, registers: CoreRegisters) -> tuple[int, float, complex]:
        """The block's best not-yet-selected (global index, Q, G) candidate.

        First-maximum tie-break over the owned window — combined with the
        q-gen's in-order strict-``>`` reduction over the (ascending,
        contiguous) blocks, the winner is exactly ``argmax`` over the full
        masked Q array, the reference estimator's selection rule.
        """
        masked = np.where(self._window(registers.selected), -np.inf, self._window(registers.Q))
        local = int(np.argmax(masked))
        return (
            self.start + local,
            float(masked[local]),
            complex(self._window(registers.G)[local]),
        )

    def commit(self, registers: CoreRegisters, global_index: int) -> complex:
        """Step 14: latch F_q = G_q for the winning delay (must be owned here)."""
        index = int(global_index)
        if not self.owns(index):
            raise ValueError(
                f"column {index} is not owned by block {self.block_id} "
                f"(owns [{self.start}, {self.stop}))"
            )
        registers.F[..., index] = registers.G[..., index]
        committed = registers.F[..., index]
        return committed if registers.batched else complex(committed)

    # ------------------------------------------------------------------ #
    def coefficients(self, registers: CoreRegisters) -> tuple[np.ndarray, np.ndarray]:
        """(global column indices, committed F values) of this block."""
        return self.column_indices, self._window(registers.F).copy()
