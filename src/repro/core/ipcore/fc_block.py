"""One Filter-and-Cancel (FC) block of the IP core.

Each FC block owns a contiguous slice of the delay columns.  For every owned
column ``k`` it stores (in block RAM) column ``k`` of ``S``, column ``k`` of
``A`` and element ``k`` of ``a``, all quantised to the datapath word length,
and it maintains the registers the paper names VKR/VKI (matched-filter
output), GKR/GKI (temporary coefficient), FKR/FKI (committed coefficient) and
QK (decision variable).

The real and imaginary datapaths are duplicated in hardware; in the model the
complex arithmetic captures both at once.  Accumulations use the full
precision of the wide DSP48 accumulator (modelled as exact double-precision
arithmetic over the quantised operands).
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.fmt import FixedPointFormat
from repro.fixedpoint.metrics import dynamic_range_scale
from repro.fixedpoint.quantize import quantize
from repro.utils.validation import check_integer, ensure_1d_array, ensure_2d_array

__all__ = ["FilterAndCancelBlock"]


class FilterAndCancelBlock:
    """One FC block responsible for a slice of delay columns.

    Parameters
    ----------
    block_id:
        Index of this block within the core (0-based).
    column_indices:
        Global delay indices owned by this block.
    S_columns:
        ``(window_length, num_owned)`` slice of the signal matrix.
    A_columns:
        ``(num_delays, num_owned)`` slice of the Gram matrix (full columns —
        the cancellation needs every row of the selected column).
    a_elements:
        ``(num_owned,)`` slice of the reciprocal-diagonal vector.
    word_length:
        Datapath width in bits; the stored matrices are quantised to this
        width with power-of-two scaling.
    """

    def __init__(
        self,
        block_id: int,
        column_indices: np.ndarray,
        S_columns: np.ndarray,
        A_columns: np.ndarray,
        a_elements: np.ndarray,
        word_length: int = 8,
    ) -> None:
        self.block_id = check_integer("block_id", block_id, minimum=0)
        self.column_indices = ensure_1d_array("column_indices", column_indices, dtype=np.int64)
        S_columns = ensure_2d_array("S_columns", S_columns, dtype=np.float64)
        A_columns = ensure_2d_array("A_columns", A_columns, dtype=np.float64)
        a_elements = ensure_1d_array("a_elements", a_elements, dtype=np.float64)
        check_integer("word_length", word_length, minimum=2, maximum=32)

        owned = self.column_indices.shape[0]
        if owned == 0:
            raise ValueError("an FC block must own at least one column")
        if S_columns.shape[1] != owned or A_columns.shape[1] != owned or a_elements.shape[0] != owned:
            raise ValueError("column slices must all cover the owned columns")

        self.word_length = word_length
        fmt = FixedPointFormat.for_unit_range(word_length)
        s_scale = dynamic_range_scale(S_columns)
        a_mat_scale = dynamic_range_scale(A_columns)
        a_vec_scale = dynamic_range_scale(a_elements)
        #: quantised column storage (what the block RAM holds)
        self.S = quantize(S_columns / s_scale, fmt) * s_scale
        self.A = quantize(A_columns / a_mat_scale, fmt) * a_mat_scale
        self.a = quantize(a_elements / a_vec_scale, fmt) * a_vec_scale

        # registers (one per owned column)
        self.V = np.zeros(owned, dtype=np.complex128)
        self.G = np.zeros(owned, dtype=np.complex128)
        self.F = np.zeros(owned, dtype=np.complex128)
        self.Q = np.zeros(owned, dtype=np.float64)
        self._selected = np.zeros(owned, dtype=bool)

    # ------------------------------------------------------------------ #
    @property
    def num_columns(self) -> int:
        """Number of delay columns owned by this block."""
        return int(self.column_indices.shape[0])

    def reset(self) -> None:
        """Zero all registers (steps 2-4 of the algorithm)."""
        self.V[:] = 0.0
        self.G[:] = 0.0
        self.F[:] = 0.0
        self.Q[:] = 0.0
        self._selected[:] = False

    # ------------------------------------------------------------------ #
    # Datapath operations
    # ------------------------------------------------------------------ #
    def matched_filter(self, received: np.ndarray) -> None:
        """Step 1-5: compute V_k = S_k^T r for every owned column."""
        received = ensure_1d_array("received", received, dtype=np.complex128,
                                   length=self.S.shape[0])
        self.V = self.S.T @ received
        self.G[:] = 0.0
        self.F[:] = 0.0
        self.Q[:] = 0.0
        self._selected[:] = False

    def cancel(self, global_index: int, coefficient: complex) -> None:
        """Step 8: subtract the selected path's interference from every owned V_k.

        ``global_index`` is the delay selected by the q-gen block in the
        previous iteration; ``coefficient`` is its committed value F_q.
        """
        column = int(global_index)
        if not (0 <= column < self.A.shape[0]):
            raise ValueError(f"global index {column} outside the Gram matrix")
        self.V = self.V - self.A[column, :] * coefficient

    def update_decision(self) -> None:
        """Steps 10-11: G_k = V_k a_k and Q_k = Re{G_k^* V_k} for owned columns."""
        self.G = self.V * self.a
        self.Q = np.real(np.conj(self.G) * self.V)

    def local_candidate(self) -> tuple[int, float, complex]:
        """Return the block's best not-yet-selected (global index, Q, G) candidate.

        The q-gen block compares these per-block candidates to find the global
        winner (step 13).
        """
        masked = np.where(self._selected, -np.inf, self.Q)
        local = int(np.argmax(masked))
        return int(self.column_indices[local]), float(masked[local]), complex(self.G[local])

    def commit(self, global_index: int) -> complex:
        """Step 14: if the winning delay is owned here, latch F_q = G_q.

        Returns the committed coefficient; raises if the index is not owned.
        """
        matches = np.nonzero(self.column_indices == int(global_index))[0]
        if matches.size == 0:
            raise ValueError(f"column {global_index} is not owned by block {self.block_id}")
        local = int(matches[0])
        self.F[local] = self.G[local]
        self._selected[local] = True
        return complex(self.F[local])

    def owns(self, global_index: int) -> bool:
        """True if the given delay column lives in this block."""
        return bool(np.any(self.column_indices == int(global_index)))

    # ------------------------------------------------------------------ #
    def coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (global column indices, committed F values) for this block."""
        return self.column_indices.copy(), self.F.copy()
