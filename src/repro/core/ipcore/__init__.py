"""Functional + cycle-level simulator of the Matching Pursuits IP core (Figure 5).

The paper's IP core replicates a "Filter and Cancel" (FC) block once per
hypothesised delay column (fully parallel: 112 blocks) or time-multiplexes a
smaller number of blocks over the columns (14 blocks process 8 columns each,
a single block processes all 112).  A "q-gen" block reduces the per-column
decision variables to the global winner each iteration, and a small control
FSM sequences the matched-filter phase and the ``Nf`` cancel/select
iterations.

This package mirrors that structure in software:

* :class:`~repro.core.ipcore.fc_block.FilterAndCancelBlock` — one FC block:
  views of the globally-quantised S/A/a columns (block RAM) plus the
  matched-filter, cancellation and decision-variable updates over its
  window of the shared :class:`~repro.core.ipcore.fc_block.CoreRegisters`
  register file.
* :class:`~repro.core.ipcore.qgen.QGenBlock` — the arg-max reduction with the
  "not already selected" exclusion of step 13 (scalar and per-trial batched).
* :class:`~repro.core.ipcore.control.ControlUnit` — the cycle accountant: it
  knows how many clock cycles each phase of the schedule takes for a given
  level of parallelism.
* :class:`~repro.core.ipcore.simulator.IPCoreSimulator` — wires the blocks
  together; its estimate is bit-identical (raw integer codes) to
  :class:`~repro.core.fixedpoint_mp.FixedPointMatchingPursuit` at matching
  quantiser modes, plus an exact cycle count.
* :class:`~repro.core.ipcore.batch.BatchIPCoreEngine` — the batched engine:
  whole trial stacks through the same blocks, vectorised over the trial
  axis, with the schedule evaluated in closed form per configuration.
* :mod:`~repro.core.ipcore.conformance` — the three-way conformance harness
  (IP core == fixed-point MP == float reference within documented bounds).
"""

from repro.core.ipcore.fc_block import CoreRegisters, FilterAndCancelBlock
from repro.core.ipcore.qgen import QGenBlock, QGenDecision
from repro.core.ipcore.control import ControlUnit, CyclePhase, ScheduleBreakdown
from repro.core.ipcore.simulator import IPCoreConfig, IPCoreRun, IPCoreSimulator
from repro.core.ipcore.batch import BatchIPCoreEngine, BatchIPCoreRun
from repro.core.ipcore.conformance import (
    ConformanceCell,
    ConformanceReport,
    check_conformance,
)

__all__ = [
    "CoreRegisters",
    "FilterAndCancelBlock",
    "QGenBlock",
    "QGenDecision",
    "ControlUnit",
    "CyclePhase",
    "ScheduleBreakdown",
    "IPCoreConfig",
    "IPCoreRun",
    "IPCoreSimulator",
    "BatchIPCoreEngine",
    "BatchIPCoreRun",
    "ConformanceCell",
    "ConformanceReport",
    "check_conformance",
]
