"""Functional + cycle-level simulator of the Matching Pursuits IP core (Figure 5).

The paper's IP core replicates a "Filter and Cancel" (FC) block once per
hypothesised delay column (fully parallel: 112 blocks) or time-multiplexes a
smaller number of blocks over the columns (14 blocks process 8 columns each,
a single block processes all 112).  A "q-gen" block reduces the per-column
decision variables to the global winner each iteration, and a small control
FSM sequences the matched-filter phase and the ``Nf`` cancel/select
iterations.

This package mirrors that structure in software:

* :class:`~repro.core.ipcore.fc_block.FilterAndCancelBlock` — one FC block:
  stores its assigned columns of S/A/a (quantised to the configured word
  length), holds the V/G/F/Q registers for those columns, and performs the
  matched-filter, cancellation and decision-variable updates.
* :class:`~repro.core.ipcore.qgen.QGenBlock` — the arg-max reduction with the
  "not already selected" exclusion of step 13.
* :class:`~repro.core.ipcore.control.ControlUnit` — the cycle accountant: it
  knows how many clock cycles each phase of the schedule takes for a given
  level of parallelism.
* :class:`~repro.core.ipcore.simulator.IPCoreSimulator` — wires the blocks
  together, produces the same :class:`~repro.core.matching_pursuit.MatchingPursuitResult`
  as the reference algorithm plus an exact cycle count.
"""

from repro.core.ipcore.fc_block import FilterAndCancelBlock
from repro.core.ipcore.qgen import QGenBlock
from repro.core.ipcore.control import ControlUnit, CyclePhase, ScheduleBreakdown
from repro.core.ipcore.simulator import IPCoreConfig, IPCoreRun, IPCoreSimulator

__all__ = [
    "FilterAndCancelBlock",
    "QGenBlock",
    "ControlUnit",
    "CyclePhase",
    "ScheduleBreakdown",
    "IPCoreConfig",
    "IPCoreRun",
    "IPCoreSimulator",
]
