"""Event-driven simulation of an underwater sensor network deployment.

Each sensor node periodically generates a report packet that is forwarded
hop-by-hop along the static routing tree to the sink.  Every hop charges the
transmitter its transmit energy and the receiver its front-end plus
signal-processing energy (with the processing cost set by the chosen hardware
platform); idle listening energy accrues continuously; ALOHA-style contention
is modelled as an expected-retransmission multiplier.  The simulation runs
until a stop condition (first node death or a maximum simulated time) and
reports per-node energy attribution and the
deployment lifetime — the quantity experiment E9 compares across hardware
platforms.

By default :meth:`NetworkSimulator.run` executes on the vectorised
:class:`repro.network.batch.BatchNetworkEngine`, which replaces the
per-packet event loop with round-based NumPy accounting; ``batch=False``
selects the original event loop, which is kept as the executable
specification (the same role the per-frame loop plays for the batched link
engine of PR 2) and is pinned bit-for-bit equal to the batched engine by
``tests/network/test_batch_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.events import Scheduler
from repro.network.mac import SlottedAloha, TDMASchedule
from repro.network.node import Battery, NodeEnergyReport, SensorNode
from repro.network.routing import RoutingTable, shortest_path_routing
from repro.network.topology import Deployment, connectivity_graph
from repro.network.traffic import PeriodicTraffic
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["NetworkSimulationResult", "NetworkSimulator"]


@dataclass
class NetworkSimulationResult:
    """Outcome of one network simulation."""

    first_death_time_s: float | None
    simulated_time_s: float
    packets_generated: int
    packets_delivered: int
    node_reports: dict[int, NodeEnergyReport]
    node_alive: dict[int, bool]

    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated packets that reached the sink."""
        if self.packets_generated == 0:
            return 0.0
        return self.packets_delivered / self.packets_generated

    @property
    def lifetime_days(self) -> float | None:
        """Deployment lifetime (first node death) in days, None if no node died.

        Callers aggregating across trials must handle the ``None`` explicitly
        (a censored observation: the deployment outlived the horizon), not
        coerce it to 0 — see :func:`repro.analysis.ablations.summarize_lifetimes`.
        """
        if self.first_death_time_s is None:
            return None
        return self.first_death_time_s / 86_400.0

    def total_energy_by_component(self) -> dict[str, float]:
        """Network-wide energy attribution (joules) summed over all nodes."""
        totals = {"transmit_j": 0.0, "receive_frontend_j": 0.0, "processing_j": 0.0, "idle_j": 0.0}
        for report in self.node_reports.values():
            totals["transmit_j"] += report.transmit_j
            totals["receive_frontend_j"] += report.receive_frontend_j
            totals["processing_j"] += report.processing_j
            totals["idle_j"] += report.idle_j
        return totals


@dataclass
class NetworkSimulator:
    """Simulates a data-collection sensor network.

    Parameters
    ----------
    deployment:
        Node positions and the sink.
    energy_budget:
        Per-packet modem energy model (shared by every node); the processing
        energy inside it is what distinguishes hardware platforms.
    traffic:
        Report generation pattern.
    communication_range_m:
        Acoustic range used to build the connectivity graph.
    battery_capacity_j:
        Usable battery energy per node (e.g. ~10 kJ for a small alkaline pack,
        ~200 kJ for a D-cell lithium pack).
    mac:
        Either a :class:`~repro.network.mac.TDMASchedule` or
        :class:`~repro.network.mac.SlottedAloha`; only the expected number of
        transmissions per packet is used.
    rng:
        Seed or generator for traffic jitter.
    batch:
        Run on the vectorised batch engine (default); ``False`` selects the
        per-packet event loop.  Both paths produce identical results for a
        given seed.
    """

    deployment: Deployment
    energy_budget: ModemEnergyBudget
    traffic: PeriodicTraffic = field(default_factory=PeriodicTraffic)
    communication_range_m: float = 300.0
    battery_capacity_j: float = 50_000.0
    mac: TDMASchedule | SlottedAloha | None = None
    rng: np.random.Generator | int | None = None
    batch: bool = True

    def __post_init__(self) -> None:
        check_positive("communication_range_m", self.communication_range_m)
        check_positive("battery_capacity_j", self.battery_capacity_j)
        self.rng = as_rng(self.rng)
        self.graph = connectivity_graph(self.deployment, self.communication_range_m)
        self.routing: RoutingTable = shortest_path_routing(self.graph, self.deployment.sink_id)
        self.nodes: dict[int, SensorNode] = {
            node_id: SensorNode(
                node_id=node_id,
                position=position,
                battery=Battery(self.battery_capacity_j),
                energy_budget=self.energy_budget,
                is_sink=(node_id == self.deployment.sink_id),
            )
            for node_id, position in self.deployment.positions.items()
        }
        self._tx_multiplier = (
            self.mac.expected_transmissions_per_packet() if self.mac is not None else 1.0
        )
        self._packets_generated = 0
        self._packets_delivered = 0
        self._first_death: float | None = None

    # ------------------------------------------------------------------ #
    @property
    def sensor_ids(self) -> list[int]:
        """Sensor (non-sink) node ids in scheduling order."""
        return [n for n in self.nodes if n != self.deployment.sink_id]

    def _record_deaths(self, now: float) -> None:
        """Record the first battery depletion among the sensor nodes."""
        if self._first_death is not None:
            return
        for node in self.nodes.values():
            if not node.is_sink and node.battery.is_empty:
                self._first_death = now
                return

    def _advance_all(self, now: float) -> None:
        for node in self.nodes.values():
            if node.is_alive:
                node.advance_time(now)
        self._record_deaths(now)

    def _deliver_packet(self, now: float, source_id: int) -> None:
        """Forward one packet hop-by-hop from ``source_id`` to the sink."""
        path = self.routing.route(source_id)
        symbols = self.traffic.packet_symbols
        attempts = self._tx_multiplier
        delivered = True
        for sender_id, receiver_id in zip(path, path[1:]):
            sender = self.nodes[sender_id]
            receiver = self.nodes[receiver_id]
            if not sender.is_alive or not receiver.is_alive:
                delivered = False
                break
            # the MAC multiplier charges the expected retransmissions
            for _ in range(int(np.ceil(attempts))):
                sender.account_transmit(symbols)
                receiver.account_receive(symbols, forwarded=(receiver_id != self.routing.sink_id))
            if sender.battery.is_empty and not sender.is_sink and self._first_death is None:
                self._first_death = now
            if receiver.battery.is_empty and not receiver.is_sink and self._first_death is None:
                self._first_death = now
        if delivered:
            self._packets_delivered += 1

    def _account_report(self, now: float, node_id: int) -> None:
        """Account one report event: idle accrual, generation, hop-by-hop delivery.

        Shared by the event loop and the batched engine (which replays only
        the boundary events — deaths — through this exact per-packet logic).
        """
        self._advance_all(now)
        node = self.nodes[node_id]
        if node.is_alive:
            self._packets_generated += 1
            self._deliver_packet(now, node_id)
            if node.battery.is_empty and not node.is_sink and self._first_death is None:
                self._first_death = now

    def _on_report(self, scheduler: Scheduler, node_id: int) -> None:
        self._account_report(scheduler.now, node_id)
        # schedule the next report regardless (dead nodes simply skip)
        delay = self.traffic.next_interval(self.rng)
        scheduler.schedule_after(delay, self._on_report, node_id)

    def _build_result(self, end_time: float) -> NetworkSimulationResult:
        return NetworkSimulationResult(
            first_death_time_s=self._first_death,
            simulated_time_s=end_time,
            packets_generated=self._packets_generated,
            packets_delivered=self._packets_delivered,
            node_reports={nid: node.report for nid, node in self.nodes.items()},
            node_alive={nid: node.is_alive for nid, node in self.nodes.items()},
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        max_time_s: float = 30.0 * 86_400.0,
        stop_at_first_death: bool = True,
        max_events: int = 500_000,
    ) -> NetworkSimulationResult:
        """Run the simulation (once per simulator instance).

        Parameters
        ----------
        max_time_s:
            Simulation horizon.
        stop_at_first_death:
            Stop as soon as any sensor node's battery empties (the usual
            deployment-lifetime definition); otherwise run to ``max_time_s``.
        max_events:
            Safety cap on processed events.
        """
        if self.batch:
            from repro.network.batch import BatchNetworkEngine

            return BatchNetworkEngine(self).run(
                max_time_s=max_time_s,
                stop_at_first_death=stop_at_first_death,
                max_events=max_events,
            )
        return self.run_event_loop(
            max_time_s=max_time_s,
            stop_at_first_death=stop_at_first_death,
            max_events=max_events,
        )

    def run_event_loop(
        self,
        max_time_s: float = 30.0 * 86_400.0,
        stop_at_first_death: bool = True,
        max_events: int = 500_000,
    ) -> NetworkSimulationResult:
        """The per-packet reference loop (the executable specification)."""
        check_positive("max_time_s", max_time_s)
        scheduler = Scheduler()
        sensor_ids = self.sensor_ids
        for index, node_id in enumerate(sensor_ids):
            offset = self.traffic.first_offset(index, len(sensor_ids))
            scheduler.schedule_at(offset, self._on_report, node_id)

        while scheduler.queue and scheduler.events_processed < max_events:
            next_time = scheduler.queue.peek_time()
            if next_time is None or next_time > max_time_s:
                break
            scheduler.run(until=next_time, max_events=scheduler.events_processed + 1)
            if stop_at_first_death and self._first_death is not None:
                break

        end_time = min(scheduler.now, max_time_s) if scheduler.now > 0 else scheduler.now
        self._advance_all(end_time)
        return self._build_result(end_time)
