"""Event-driven simulation of an underwater sensor network deployment.

Each sensor node periodically generates a report packet that travels to the
sink either hop-by-hop along the static routing tree
(:class:`~repro.network.routing.RoutedForwarding`) or by TTL-bounded
broadcast flooding (:class:`~repro.network.routing.TtlFlooding`).  Every
transmission charges the sender its transmit energy and each receiver its
front-end plus signal-processing energy (with the processing cost set by the
chosen hardware platform); idle listening energy accrues continuously.

Contention comes in two flavours: the legacy expected-retransmission
multiplier (:class:`~repro.network.mac.SlottedAloha` /
:class:`~repro.network.mac.TDMASchedule`), and the per-packet
:class:`~repro.network.mac.CsmaMac`, where every hop's attempts are drawn
from a counter-based uniform stream (:func:`repro.utils.rng.counter_uniforms`
keyed by the report event's index) — collisions then actually lose packets,
coupling delivery ratio to density.  With a
:class:`~repro.network.topology.LinearMobility` model attached, sensor
positions drift and the topology, routes and contention tables are rebuilt
once per mobility epoch.

The simulation runs until a stop condition (first node death or a maximum
simulated time) and reports per-node energy attribution and the deployment
lifetime — the quantity experiment E9 compares across hardware platforms.

By default :meth:`NetworkSimulator.run` executes on the vectorised
:class:`repro.network.batch.BatchNetworkEngine`, which replaces the
per-packet event loop with round-based NumPy accounting; ``batch=False``
selects the original event loop, which is kept as the executable
specification (the same role the per-frame loop plays for the batched link
engine of PR 2) and is pinned bit-for-bit equal to the batched engine by
``tests/network/test_batch_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.events import Scheduler
from repro.network.mac import CsmaMac, SlottedAloha, TDMASchedule
from repro.network.node import Battery, NodeEnergyReport, SensorNode
from repro.network.routing import (
    RoutedForwarding,
    RoutingTable,
    TtlFlooding,
    flood_packet,
    shortest_path_routing,
)
from repro.network.topology import Deployment, LinearMobility, connectivity_graph
from repro.network.traffic import PeriodicTraffic
from repro.telemetry.metrics import counter
from repro.utils.rng import as_rng, counter_uniforms
from repro.utils.validation import check_positive

__all__ = ["NetworkSimulationResult", "NetworkSimulator"]

#: topology/routing rebuilds triggered by mobility epoch changes
_TOPOLOGY_REFRESHES = counter("network.topology_refreshes")
#: packets dropped after exhausting contention-MAC retries
_PACKETS_DROPPED = counter("network.packets_dropped")


@dataclass
class NetworkSimulationResult:
    """Outcome of one network simulation."""

    first_death_time_s: float | None
    simulated_time_s: float
    packets_generated: int
    packets_delivered: int
    node_reports: dict[int, NodeEnergyReport]
    node_alive: dict[int, bool]
    #: packets abandoned after exhausting contention-MAC retries (0 unless a
    #: CsmaMac with routed forwarding is in effect)
    packets_dropped: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated packets that reached the sink.

        With zero generated packets the ratio is undefined and reported as
        ``nan`` (matching the ``LinkResult.symbol_error_rate`` convention) —
        a vacuously lossless run must not read as total loss.  Aggregators
        must skip NaN explicitly (see
        :func:`repro.analysis.ablations.summarize_lifetimes`).
        """
        if self.packets_generated == 0:
            return float("nan")
        return self.packets_delivered / self.packets_generated

    @property
    def lifetime_days(self) -> float | None:
        """Deployment lifetime (first node death) in days, None if no node died.

        Callers aggregating across trials must handle the ``None`` explicitly
        (a censored observation: the deployment outlived the horizon), not
        coerce it to 0 — see :func:`repro.analysis.ablations.summarize_lifetimes`.
        """
        if self.first_death_time_s is None:
            return None
        return self.first_death_time_s / 86_400.0

    def total_energy_by_component(self) -> dict[str, float]:
        """Network-wide energy attribution (joules) summed over all nodes."""
        totals = {"transmit_j": 0.0, "receive_frontend_j": 0.0, "processing_j": 0.0, "idle_j": 0.0}
        for report in self.node_reports.values():
            totals["transmit_j"] += report.transmit_j
            totals["receive_frontend_j"] += report.receive_frontend_j
            totals["processing_j"] += report.processing_j
            totals["idle_j"] += report.idle_j
        return totals


@dataclass
class NetworkSimulator:
    """Simulates a data-collection sensor network.

    Parameters
    ----------
    deployment:
        Node positions and the sink.
    energy_budget:
        Per-packet modem energy model (shared by every node); the processing
        energy inside it is what distinguishes hardware platforms.
    traffic:
        Report generation pattern.
    communication_range_m:
        Acoustic range used to build the connectivity graph.
    battery_capacity_j:
        Usable battery energy per node (e.g. ~10 kJ for a small alkaline pack,
        ~200 kJ for a D-cell lithium pack).
    mac:
        A :class:`~repro.network.mac.TDMASchedule` or
        :class:`~repro.network.mac.SlottedAloha` (expected-retransmission
        multiplier only), or a :class:`~repro.network.mac.CsmaMac` for
        per-packet stochastic contention with bounded retries.
    rng:
        Seed or generator for traffic jitter (and, with a contention MAC, the
        contention stream's seed draw).
    batch:
        Run on the vectorised batch engine (default); ``False`` selects the
        per-packet event loop.  Both paths produce identical results for a
        given seed.
    protocol:
        :class:`~repro.network.routing.RoutedForwarding` (default) or
        :class:`~repro.network.routing.TtlFlooding`.
    mobility:
        Optional :class:`~repro.network.topology.LinearMobility`; when set,
        topology and routes are rebuilt once per mobility epoch and
        partitioned sources simply fail to deliver.
    """

    deployment: Deployment
    energy_budget: ModemEnergyBudget
    traffic: PeriodicTraffic = field(default_factory=PeriodicTraffic)
    communication_range_m: float = 300.0
    battery_capacity_j: float = 50_000.0
    mac: TDMASchedule | SlottedAloha | CsmaMac | None = None
    rng: np.random.Generator | int | None = None
    batch: bool = True
    protocol: RoutedForwarding | TtlFlooding = field(default_factory=RoutedForwarding)
    mobility: LinearMobility | None = None

    def __post_init__(self) -> None:
        check_positive("communication_range_m", self.communication_range_m)
        check_positive("battery_capacity_j", self.battery_capacity_j)
        self.rng = as_rng(self.rng)
        self._base_deployment = self.deployment
        self._epoch = 0
        # a static routed deployment must be connected (the legacy contract);
        # mobility partitions routinely, so it builds in non-strict mode
        self._strict_topology = self.mobility is None
        self._build_topology(self.deployment)
        self.nodes: dict[int, SensorNode] = {
            node_id: SensorNode(
                node_id=node_id,
                position=position,
                battery=Battery(self.battery_capacity_j),
                energy_budget=self.energy_budget,
                is_sink=(node_id == self.deployment.sink_id),
            )
            for node_id, position in self.deployment.positions.items()
        }
        self._contention: CsmaMac | None = self.mac if isinstance(self.mac, CsmaMac) else None
        self._tx_multiplier = (
            self.mac.expected_transmissions_per_packet()
            if self.mac is not None and self._contention is None
            else 1.0
        )
        # drawn only for contention MACs, so legacy RNG trajectories (and the
        # seed-locked tests pinned to them) are untouched; both engines share
        # this __post_init__, so the draw is aligned by construction
        self._contention_seed = (
            int(self.rng.integers(2**63)) if self._contention is not None else 0
        )
        self._rebuild_link_tables()
        self._event_index = 0
        self._packets_generated = 0
        self._packets_delivered = 0
        self._packets_dropped = 0
        self._first_death: float | None = None

    def _build_topology(self, deployment: Deployment) -> None:
        self.graph = connectivity_graph(
            deployment,
            self.communication_range_m,
            require_connected=self._strict_topology,
        )
        self.routing: RoutingTable = shortest_path_routing(
            self.graph, deployment.sink_id, allow_partial=not self._strict_topology
        )
        self._adjacency: dict[int, list[int]] = {
            node_id: sorted(self.graph.neighbors(node_id)) for node_id in self.graph.nodes
        }

    def _rebuild_link_tables(self) -> None:
        """Per-directed-edge contention success probabilities and draw slots.

        The slot index — the position of the edge in the sorted directed-edge
        enumeration — addresses the packet's counter-based uniform for that
        edge, identically in both engines.  Contenders at a receiver are its
        other in-range neighbours (``degree - 1``), which is what couples
        contention losses to deployment density.
        """
        self._edge_slots: dict[tuple[int, int], int] = {}
        self._edge_success: dict[tuple[int, int], float] = {}
        if self._contention is None:
            return
        degree = dict(self.graph.degree)
        edges = sorted(
            (u, v) for a, b in self.graph.edges for u, v in ((a, b), (b, a))
        )
        for slot, (u, v) in enumerate(edges):
            self._edge_slots[(u, v)] = slot
            self._edge_success[(u, v)] = self._contention.attempt_success_probability(
                degree[v] - 1
            )

    def _refresh_topology(self, now: float) -> None:
        """Rebuild connectivity/routes when ``now`` enters a new mobility epoch."""
        if self.mobility is None:
            return
        epoch = self.mobility.epoch_index(now)
        if epoch == self._epoch:
            return
        self._epoch = epoch
        self.deployment = self.mobility.positions_at(self._base_deployment, epoch)
        self._build_topology(self.deployment)
        for node_id, position in self.deployment.positions.items():
            self.nodes[node_id].position = position
        self._rebuild_link_tables()
        _TOPOLOGY_REFRESHES.inc()

    # ------------------------------------------------------------------ #
    @property
    def sensor_ids(self) -> list[int]:
        """Sensor (non-sink) node ids in scheduling order."""
        return [n for n in self.nodes if n != self.deployment.sink_id]

    def _record_deaths(self, now: float) -> None:
        """Record the first battery depletion among the sensor nodes."""
        if self._first_death is not None:
            return
        for node in self.nodes.values():
            if not node.is_sink and node.battery.is_empty:
                self._first_death = now
                return

    def _advance_all(self, now: float) -> None:
        for node in self.nodes.values():
            if node.is_alive:
                node.advance_time(now)
        self._record_deaths(now)

    def _note_death(self, now: float, node: SensorNode) -> None:
        if node.battery.is_empty and not node.is_sink and self._first_death is None:
            self._first_death = now

    def _deliver_packet(self, now: float, source_id: int, event_index: int) -> None:
        """Deliver one packet according to the protocol and MAC models."""
        if isinstance(self.protocol, TtlFlooding):
            self._deliver_flooded(now, source_id, event_index)
            return
        if not self.routing.has_route(source_id):
            # partitioned source (mobility): generated, never delivered,
            # no transmissions attempted
            return
        path = self.routing.route(source_id)
        if self._contention is not None:
            self._deliver_routed_contended(now, path, event_index)
            return
        symbols = self.traffic.packet_symbols
        attempts = self._tx_multiplier
        delivered = True
        for sender_id, receiver_id in zip(path, path[1:]):
            sender = self.nodes[sender_id]
            receiver = self.nodes[receiver_id]
            if not sender.is_alive or not receiver.is_alive:
                delivered = False
                break
            # the MAC multiplier charges the expected retransmissions
            for _ in range(int(np.ceil(attempts))):
                sender.account_transmit(symbols)
                receiver.account_receive(symbols, forwarded=(receiver_id != self.routing.sink_id))
            self._note_death(now, sender)
            self._note_death(now, receiver)
        if delivered:
            self._packets_delivered += 1

    def _deliver_routed_contended(
        self, now: float, path: list[int], event_index: int
    ) -> None:
        """Routed forwarding under the contention MAC: per-hop retry draws.

        Hop ``h``'s attempt ``a`` reads the packet's counter-based uniform at
        slot ``h * max_attempts + a``; every attempt (failed or not) charges
        the sender a transmission and the receiver a reception.  A hop whose
        retries exhaust drops the packet at that sender.
        """
        assert self._contention is not None
        mac = self._contention
        symbols = self.traffic.packet_symbols
        hops = len(path) - 1
        draws = counter_uniforms(
            self._contention_seed, event_index, hops * mac.max_attempts
        )
        delivered = True
        for hop, (sender_id, receiver_id) in enumerate(zip(path, path[1:])):
            sender = self.nodes[sender_id]
            receiver = self.nodes[receiver_id]
            if not sender.is_alive or not receiver.is_alive:
                delivered = False
                break
            success_p = self._edge_success[(sender_id, receiver_id)]
            success = False
            for attempt in range(mac.max_attempts):
                sender.account_transmit(symbols)
                receiver.account_receive(
                    symbols, forwarded=(receiver_id != self.routing.sink_id)
                )
                if draws[hop * mac.max_attempts + attempt] < success_p:
                    success = True
                    break
            self._note_death(now, sender)
            self._note_death(now, receiver)
            if not success:
                sender.packets_dropped += 1
                self._packets_dropped += 1
                _PACKETS_DROPPED.inc()
                delivered = False
                break
        if delivered:
            self._packets_delivered += 1

    def _deliver_flooded(self, now: float, source_id: int, event_index: int) -> None:
        """TTL flooding: compute the flood, then charge its broadcast list."""
        assert isinstance(self.protocol, TtlFlooding)
        symbols = self.traffic.packet_symbols
        attempts = int(np.ceil(self._tx_multiplier))
        sink_id = self.deployment.sink_id
        draws = None
        if self._contention is not None:
            draws = counter_uniforms(
                self._contention_seed, event_index, len(self._edge_slots)
            )

        def edge_success(sender_id: int, receiver_id: int) -> bool:
            if draws is None:
                return True
            slot = self._edge_slots[(sender_id, receiver_id)]
            return bool(draws[slot] < self._edge_success[(sender_id, receiver_id)])

        broadcasts, delivered = flood_packet(
            self._adjacency,
            lambda node_id: self.nodes[node_id].is_alive,
            source_id,
            sink_id,
            self.protocol.ttl,
            edge_success,
        )
        for sender_id, receivers in broadcasts:
            sender = self.nodes[sender_id]
            for _ in range(attempts):
                sender.account_transmit(symbols)
                for receiver_id in receivers:
                    self.nodes[receiver_id].account_receive(
                        symbols, forwarded=(receiver_id != sink_id)
                    )
            self._note_death(now, sender)
            for receiver_id in receivers:
                self._note_death(now, self.nodes[receiver_id])
        if delivered:
            self._packets_delivered += 1

    def _account_report(
        self, now: float, node_id: int, event_index: int | None = None
    ) -> None:
        """Account one report event: idle accrual, generation, delivery.

        Shared by the event loop and the batched engine (which replays only
        the boundary events — deaths — through this exact per-packet logic,
        passing the event's global schedule index explicitly so the packet's
        counter-based contention draws address the same stream values).
        """
        if event_index is None:
            event_index = self._event_index
        self._event_index = event_index + 1
        self._refresh_topology(now)
        self._advance_all(now)
        node = self.nodes[node_id]
        if node.is_alive:
            self._packets_generated += 1
            self._deliver_packet(now, node_id, event_index)
            self._note_death(now, node)

    def _on_report(self, scheduler: Scheduler, node_id: int) -> None:
        self._account_report(scheduler.now, node_id)
        # schedule the next report regardless (dead nodes simply skip)
        delay = self.traffic.next_interval(self.rng)
        scheduler.schedule_after(delay, self._on_report, node_id)

    def _build_result(self, end_time: float) -> NetworkSimulationResult:
        return NetworkSimulationResult(
            first_death_time_s=self._first_death,
            simulated_time_s=end_time,
            packets_generated=self._packets_generated,
            packets_delivered=self._packets_delivered,
            node_reports={nid: node.report for nid, node in self.nodes.items()},
            node_alive={nid: node.is_alive for nid, node in self.nodes.items()},
            packets_dropped=self._packets_dropped,
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        max_time_s: float = 30.0 * 86_400.0,
        stop_at_first_death: bool = True,
        max_events: int = 500_000,
    ) -> NetworkSimulationResult:
        """Run the simulation (once per simulator instance).

        Parameters
        ----------
        max_time_s:
            Simulation horizon.
        stop_at_first_death:
            Stop as soon as any sensor node's battery empties (the usual
            deployment-lifetime definition); otherwise run to ``max_time_s``.
        max_events:
            Safety cap on processed events.
        """
        if self.batch:
            from repro.network.batch import BatchNetworkEngine

            return BatchNetworkEngine(self).run(
                max_time_s=max_time_s,
                stop_at_first_death=stop_at_first_death,
                max_events=max_events,
            )
        return self.run_event_loop(
            max_time_s=max_time_s,
            stop_at_first_death=stop_at_first_death,
            max_events=max_events,
        )

    def run_event_loop(
        self,
        max_time_s: float = 30.0 * 86_400.0,
        stop_at_first_death: bool = True,
        max_events: int = 500_000,
    ) -> NetworkSimulationResult:
        """The per-packet reference loop (the executable specification)."""
        check_positive("max_time_s", max_time_s)
        scheduler = Scheduler()
        sensor_ids = self.sensor_ids
        for index, node_id in enumerate(sensor_ids):
            offset = self.traffic.first_offset(index, len(sensor_ids))
            scheduler.schedule_at(offset, self._on_report, node_id)

        while scheduler.queue and scheduler.events_processed < max_events:
            next_time = scheduler.queue.peek_time()
            if next_time is None or next_time > max_time_s:
                break
            scheduler.run(until=next_time, max_events=scheduler.events_processed + 1)
            if stop_at_first_death and self._first_death is not None:
                break

        end_time = min(scheduler.now, max_time_s) if scheduler.now > 0 else scheduler.now
        self._advance_all(end_time)
        return self._build_result(end_time)
