"""Vectorised round-based network simulation: the batched lifetime engine.

The event loop in :mod:`repro.network.simulator` prices every packet hop by
hop in Python, which makes platform/topology lifetime sweeps (experiment E9)
wall-clock bound.  This engine replaces the per-packet loop with array
accounting while reproducing the event loop bit-for-bit:

1. **Schedule** — report events (time, source) are generated lazily in
   chunks, in exactly the scheduler's order.  Jitter-free traffic is
   generated analytically round-block by round-block with sequential
   ``cumsum`` accumulation (matching the scheduler's repeated
   ``now + delay`` float trajectory); jittered traffic replays the
   scheduler's heap, drawing the identical RNG stream one uniform per event.
2. **Charge model** — who pays for whose packets is a static function of the
   routing subtree (cf. :func:`repro.network.lifetime.subtree_sizes`):
   per-source transmit/receive indicator matrices over the current alive set.
3. **Death scan** — per-node demanded energy is the closed form
   ``tx_count * tx_energy + rx_count * rx_energy + idle_power * t`` (the same
   expression :attr:`SensorNode.demanded_j` evaluates), so battery-depletion
   events are resolved by a cumulative scan over all nodes — and all trials —
   simultaneously.  Because the accounting is closed form over integer
   counts, the scan needs no running float state: each chunk starts from the
   nodes' own counts.
4. **Fast-forward + replay** — a crossing-free span is applied to the node
   states in one bulk update; only the boundary event (where a node dies and
   packet delivery may truncate mid-path) is replayed through the event
   loop's own per-hop accounting, keeping partial-delivery semantics exact.

Both engines agree exactly on death times, death order, packet counts,
delivery ratios and per-component energy — the seed-locked equivalence suite
(``tests/network/test_batch_equivalence.py``) pins this with ``==``, not
tolerances.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.network.simulator import NetworkSimulationResult, NetworkSimulator
from repro.network.traffic import PeriodicTraffic
from repro.telemetry.metrics import counter, histogram
from repro.telemetry.tracing import span
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = [
    "BatchNetworkEngine",
    "ScheduleStream",
    "generate_report_schedule",
    "simulate_network_trials",
]

# per-chunk telemetry (one update per scanned chunk, never per event)
_EVENTS = counter("engine.network.events")
_CHUNKS = counter("engine.network.chunks")
_SCAN_TRIALS = histogram("engine.network.scan_live_trials")

#: Events per generated/scanned chunk; bounds wasted schedule generation past
#: a death while keeping the NumPy call overhead amortised.
_CHUNK_EVENTS = 4096


class ScheduleStream:
    """Lazily yields report-event chunks in exactly the scheduler's order.

    Emits every event the event loop would process: (time, source) pairs with
    ``time <= max_time_s``, capped at ``max_events`` in total, ordered by
    (time, schedule sequence).  With jitter the scheduler's heap is replayed,
    consuming the RNG stream one uniform per event in the identical order;
    without jitter, times are built round-block by round-block with
    sequential ``cumsum`` accumulation, so the float trajectories match the
    event loop's repeated ``now + delay`` bit for bit.
    """

    def __init__(
        self,
        traffic: PeriodicTraffic,
        sensor_ids: list[int],
        rng: np.random.Generator,
        max_time_s: float,
        max_events: int,
    ) -> None:
        check_positive("max_time_s", max_time_s)
        self.traffic = traffic
        self.max_time_s = max_time_s
        self.rng = rng
        self._ids = np.asarray(sensor_ids, dtype=np.int64)
        self._remaining = max(0, max_events)
        num = len(sensor_ids)
        self._num = num
        if num == 0:
            self._remaining = 0
            return
        self._jittered = traffic.jitter_fraction != 0.0
        if self._jittered:
            self._heap: list[tuple[float, int, int]] = []
            for index, node_id in enumerate(sensor_ids):
                heapq.heappush(self._heap, (traffic.first_offset(index, num), index, int(node_id)))
            self._sequence = num
        else:
            # per-node times continue by sequential addition from these values
            self._last_times = np.asarray(
                [traffic.first_offset(index, num) for index in range(num)]
            )
            self._first_round = True
            self._horizon_done = False
            self._pending: tuple[np.ndarray, np.ndarray] = (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )

    def next_chunk(self, size: int = _CHUNK_EVENTS) -> tuple[np.ndarray, np.ndarray]:
        """Next up-to-``size`` events as (times, source node ids); empty when done."""
        size = min(size, self._remaining)
        if size <= 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        chunk = self._next_jittered(size) if self._jittered else self._next_periodic(size)
        self._remaining -= len(chunk[0])
        if len(chunk[0]) == 0:
            self._remaining = 0
        return chunk

    def _next_jittered(self, size: int) -> tuple[np.ndarray, np.ndarray]:
        traffic = self.traffic
        rng = self.rng
        heap = self._heap
        out_times: list[float] = []
        out_sources: list[int] = []
        while heap and len(out_times) < size:
            now, _, node_id = heapq.heappop(heap)
            if now > self.max_time_s:
                self._remaining = 0
                break
            out_times.append(now)
            out_sources.append(node_id)
            delay = traffic.next_interval(rng)
            heapq.heappush(heap, (now + delay, self._sequence, node_id))
            self._sequence += 1
        return np.asarray(out_times, dtype=np.float64), np.asarray(out_sources, dtype=np.int64)

    def _generate_rounds(self, rounds: int) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``rounds`` further report rounds (one event per node each)."""
        interval = self.traffic.report_interval_s
        num = self._num
        # the cumsum is seeded with each node's previous time so every emitted
        # value is a strict sequential sum, exactly the scheduler's repeated
        # ``now + delay`` addition
        seeded = np.empty((num, rounds + 1))
        seeded[:, 0] = self._last_times
        seeded[:, 1:] = interval
        times = np.cumsum(seeded, axis=1)
        if self._first_round:
            # round 0 is the staggered first offset itself, not offset+interval
            times = times[:, :-1]
            self._first_round = False
        else:
            times = times[:, 1:]
        self._last_times = times[:, -1].copy()
        node_index = np.repeat(np.arange(num), rounds)
        flat = times.ravel()
        keep = flat <= self.max_time_s
        if not keep.all():
            self._horizon_done = True
        flat = flat[keep]
        node_index = node_index[keep]
        order = np.argsort(flat, kind="stable")
        return flat[order], self._ids[node_index[order]]

    def _next_periodic(self, size: int) -> tuple[np.ndarray, np.ndarray]:
        times, sources = self._pending
        while len(times) < size and not self._horizon_done:
            rounds = max(1, (size - len(times)) // self._num)
            more_times, more_sources = self._generate_rounds(rounds)
            times = np.concatenate([times, more_times])
            sources = np.concatenate([sources, more_sources])
        self._pending = (times[size:], sources[size:])
        return times[:size], sources[:size]


def generate_report_schedule(
    traffic: PeriodicTraffic,
    sensor_ids: list[int],
    rng: np.random.Generator,
    max_time_s: float,
    max_events: int,
) -> tuple[np.ndarray, np.ndarray]:
    """The full event schedule as two arrays (see :class:`ScheduleStream`)."""
    stream = ScheduleStream(traffic, sensor_ids, rng, max_time_s, max_events)
    all_times: list[np.ndarray] = []
    all_sources: list[np.ndarray] = []
    while True:
        times, sources = stream.next_chunk()
        if len(times) == 0:
            break
        all_times.append(times)
        all_sources.append(sources)
    if not all_times:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    return np.concatenate(all_times), np.concatenate(all_sources)


def _first_crossings(
    times: np.ndarray,
    src_rows: np.ndarray,
    valid: np.ndarray,
    tx_ind: np.ndarray,
    rx_ind: np.ndarray,
    base_tx: np.ndarray,
    base_rx: np.ndarray,
    scan_rows: np.ndarray,
    attempts: int,
    tx_energy: float,
    rx_energy: float,
    idle_power: float,
    capacity: float,
) -> np.ndarray:
    """First event index per trial where any scanned node's demand reaches capacity.

    ``times``/``src_rows``/``valid`` are (trials, events) padded arrays (pad
    entries carry zero charge and a frozen time, so they can never introduce
    a crossing); ``base_tx``/``base_rx`` are (trials, nodes) charge counts at
    the scan start.  Returns a (trials,) array of event indices, -1 where no
    crossing occurs.  The demand expression mirrors
    :attr:`repro.network.node.SensorNode.demanded_j` term for term, so the
    crossing decision is bit-identical to the event loop's battery checks.
    """
    num_trials = times.shape[0]
    found = np.full(num_trials, -1, dtype=np.int64)
    if scan_rows.size == 0 or times.shape[1] == 0:
        return found
    inc_tx = tx_ind[scan_rows][:, src_rows] * valid[np.newaxis, :, :]  # (scanned, trials, E)
    inc_rx = rx_ind[scan_rows][:, src_rows] * valid[np.newaxis, :, :]
    ntx = base_tx[:, scan_rows].T[:, :, np.newaxis] + attempts * np.cumsum(inc_tx, axis=2)
    nrx = base_rx[:, scan_rows].T[:, :, np.newaxis] + attempts * np.cumsum(inc_rx, axis=2)
    demanded = ntx * tx_energy + nrx * rx_energy + idle_power * times[np.newaxis, :, :]
    crossed = (demanded >= capacity).any(axis=0)  # (trials, E)
    for trial in np.nonzero(crossed.any(axis=1))[0]:
        found[trial] = int(np.argmax(crossed[trial]))
    return found


@dataclass
class BatchNetworkEngine:
    """Drives one :class:`NetworkSimulator` with vectorised accounting.

    The engine mutates the simulator's node states exactly as the event loop
    would (``run`` once per simulator instance); results are therefore
    interchangeable with — and bit-identical to —
    :meth:`NetworkSimulator.run_event_loop`.
    """

    simulator: NetworkSimulator

    def __post_init__(self) -> None:
        sim = self.simulator
        self._ids = list(sim.nodes)
        self._rows = {node_id: row for row, node_id in enumerate(self._ids)}
        self._attempts = int(np.ceil(sim._tx_multiplier))
        symbols = sim.traffic.packet_symbols
        self._tx_energy = sim.energy_budget.transmit_energy_j(symbols)
        self._rx_energy = sim.energy_budget.receive_energy_j(symbols).total_j
        self._idle_power = sim.energy_budget.idle_power_w()

    # ------------------------------------------------------------------ #
    def _to_rows(self, sources: np.ndarray) -> np.ndarray:
        """Map source node ids to node rows."""
        if sources.size == 0:
            return sources.astype(np.int64)
        lut = np.full(max(self._ids) + 1, -1, dtype=np.int64)
        for node_id, row in self._rows.items():
            lut[node_id] = row
        return lut[sources]

    def _charge_model(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-source charge indicators over the current alive set.

        Column ``s`` of the transmit/receive matrices marks which nodes are
        charged when (alive) source ``s`` reports: its routing path truncated
        at the first dead node, mirroring the event loop's hop-by-hop
        aliveness checks.  ``deliverable`` marks sources whose full path to
        the sink is alive.
        """
        sim = self.simulator
        rows = self._rows
        count = len(rows)
        tx_ind = np.zeros((count, count), dtype=np.int64)
        rx_ind = np.zeros((count, count), dtype=np.int64)
        alive_source = np.zeros(count, dtype=bool)
        deliverable = np.zeros(count, dtype=bool)
        for node_id in sim.sensor_ids:
            if not sim.nodes[node_id].is_alive:
                continue
            col = rows[node_id]
            alive_source[col] = True
            path = sim.routing.route(node_id)
            cut = len(path)
            for position, hop_id in enumerate(path):
                if not sim.nodes[hop_id].is_alive:
                    cut = position
                    break
            deliverable[col] = cut == len(path)
            for hop in range(cut - 1):
                tx_ind[rows[path[hop]], col] = 1
                rx_ind[rows[path[hop + 1]], col] = 1
        return tx_ind, rx_ind, alive_source, deliverable

    def _alive_sensor_rows(self) -> np.ndarray:
        sim = self.simulator
        return np.asarray(
            [
                row
                for node_id, row in self._rows.items()
                if node_id != sim.deployment.sink_id and sim.nodes[node_id].is_alive
            ],
            dtype=np.int64,
        )

    def _base_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Current per-node charge counts (the scan's closed-form state)."""
        sim = self.simulator
        symbols = sim.traffic.packet_symbols
        counts = [sim.nodes[node_id].charge_counts(symbols) for node_id in self._ids]
        base = np.asarray(counts, dtype=np.int64)
        return base[:, 0], base[:, 1]

    def _scan(
        self,
        times: np.ndarray,
        src_rows: np.ndarray,
        tx_ind: np.ndarray,
        rx_ind: np.ndarray,
    ) -> int | None:
        base_tx, base_rx = self._base_counts()
        found = _first_crossings(
            times[np.newaxis, :],
            src_rows[np.newaxis, :],
            np.ones((1, len(times)), dtype=bool),
            tx_ind,
            rx_ind,
            base_tx[np.newaxis, :],
            base_rx[np.newaxis, :],
            self._alive_sensor_rows(),
            self._attempts,
            self._tx_energy,
            self._rx_energy,
            self._idle_power,
            self.simulator.battery_capacity_j,
        )
        return None if found[0] < 0 else int(found[0])

    def _fast_forward(
        self,
        times: np.ndarray,
        src_rows: np.ndarray,
        model: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """Apply a crossing-free span of events to the node states in bulk."""
        if len(times) == 0:
            return
        tx_ind, rx_ind, alive_source, deliverable = model
        sim = self.simulator
        counts = np.bincount(src_rows, minlength=len(self._ids))
        tx_packets = tx_ind @ counts
        rx_packets = rx_ind @ counts
        now = float(times[-1])
        symbols = sim.traffic.packet_symbols
        attempts = self._attempts
        sink_id = sim.deployment.sink_id
        for node_id, row in self._rows.items():
            node = sim.nodes[node_id]
            if not node.is_alive:
                continue
            receive = int(rx_packets[row]) * attempts
            node.apply_charges(
                symbols,
                transmit=int(tx_packets[row]) * attempts,
                receive=receive,
                forwarded=0 if node_id == sink_id else receive,
                now_s=now,
            )
        sim._packets_generated += int(alive_source[src_rows].sum())
        sim._packets_delivered += int(deliverable[src_rows].sum())

    def _consume(
        self,
        times: np.ndarray,
        sources: np.ndarray,
        src_rows: np.ndarray,
        stop_at_first_death: bool,
    ) -> tuple[float | None, bool]:
        """Process one chunk of events; returns (last event time, finished)."""
        sim = self.simulator
        last_time: float | None = None
        position = 0
        while position < len(times):
            model = self._charge_model()
            crossing = self._scan(times[position:], src_rows[position:], model[0], model[1])
            stop = len(times) if crossing is None else position + crossing
            if stop > position:
                self._fast_forward(times[position:stop], src_rows[position:stop], model)
                last_time = float(times[stop - 1])
            position = stop
            if crossing is None:
                return last_time, False
            # replay the boundary event through the event loop's own per-hop
            # accounting: partial deliveries and death ordering stay exact
            last_time = float(times[position])
            sim._account_report(last_time, int(sources[position]))
            position += 1
            if stop_at_first_death and sim._first_death is not None:
                return last_time, True
        return last_time, False

    # ------------------------------------------------------------------ #
    def run(
        self,
        max_time_s: float = 30.0 * 86_400.0,
        stop_at_first_death: bool = True,
        max_events: int = 500_000,
        schedule: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> NetworkSimulationResult:
        """Run the batched simulation (same contract as the event loop).

        Parameters
        ----------
        max_time_s, stop_at_first_death, max_events:
            As in :meth:`NetworkSimulator.run`.
        schedule:
            Optional pre-generated (times, sources) from
            :func:`generate_report_schedule`; by default events are generated
            lazily so a run that dies early never materialises the full
            horizon's schedule.
        """
        sim = self.simulator
        check_positive("max_time_s", max_time_s)
        end_time = 0.0
        with span("engine.network.run", nodes=len(self._ids)):
            if schedule is not None:
                times, sources = schedule
                _CHUNKS.inc()
                _EVENTS.inc(len(times))
                last_time, _ = self._consume(
                    times, sources, self._to_rows(sources), stop_at_first_death
                )
                if last_time is not None:
                    end_time = last_time
            else:
                stream = ScheduleStream(
                    sim.traffic, sim.sensor_ids, as_rng(sim.rng), max_time_s, max_events
                )
                while True:
                    times, sources = stream.next_chunk()
                    if len(times) == 0:
                        break
                    _CHUNKS.inc()
                    _EVENTS.inc(len(times))
                    last_time, finished = self._consume(
                        times, sources, self._to_rows(sources), stop_at_first_death
                    )
                    if last_time is not None:
                        end_time = last_time
                    if finished:
                        break
            sim._advance_all(end_time)
            return sim._build_result(end_time)


def simulate_network_trials(
    deployment,
    energy_budget,
    *,
    traffic: PeriodicTraffic | None = None,
    communication_range_m: float = 300.0,
    battery_capacity_j: float = 50_000.0,
    mac=None,
    seeds=(0,),
    max_time_s: float = 30.0 * 86_400.0,
    stop_at_first_death: bool = True,
    max_events: int = 500_000,
    batch: bool = True,
) -> list[NetworkSimulationResult]:
    """Monte-Carlo network-lifetime trials, batched across seeds.

    Runs one independent simulation per seed on a shared deployment and
    energy model.  With ``batch=True`` (default) and the usual
    ``stop_at_first_death`` mode, the death scan runs as one
    (trials x nodes x events) array operation across every live trial
    simultaneously; each trial's boundary event is then replayed exactly.
    ``batch=False`` runs the per-packet event loop per seed — results are
    identical either way, seed for seed.
    """
    traffic = traffic if traffic is not None else PeriodicTraffic()
    simulators = [
        NetworkSimulator(
            deployment=deployment,
            energy_budget=energy_budget,
            traffic=traffic,
            communication_range_m=communication_range_m,
            battery_capacity_j=battery_capacity_j,
            mac=mac,
            rng=seed,
            batch=batch,
        )
        for seed in seeds
    ]
    run_args = dict(
        max_time_s=max_time_s,
        stop_at_first_death=stop_at_first_death,
        max_events=max_events,
    )
    if not batch:
        return [sim.run_event_loop(**run_args) for sim in simulators]
    engines = [BatchNetworkEngine(sim) for sim in simulators]
    if not stop_at_first_death:
        with span("engine.network.trials", trials=len(engines), mode="per-trial"):
            return [engine.run(**run_args) for engine in engines]

    # chunked cross-trial loop: every live trial's chunk is scanned in one
    # (trials x nodes x events) pass under the shared all-alive charge model
    num_trials = len(engines)
    results: list[NetworkSimulationResult | None] = [None] * num_trials
    if num_trials == 0:
        return []
    first = engines[0]
    tx_ind, rx_ind, alive_source, deliverable = first._charge_model()
    model = (tx_ind, rx_ind, alive_source, deliverable)
    scan_rows = first._alive_sensor_rows()
    streams = [
        ScheduleStream(sim.traffic, sim.sensor_ids, as_rng(sim.rng), max_time_s, max_events)
        for sim in simulators
    ]
    end_times = [0.0] * num_trials
    live = list(range(num_trials))

    def finalize(trial: int) -> None:
        sim = simulators[trial]
        sim._advance_all(end_times[trial])
        results[trial] = sim._build_result(end_times[trial])

    with span("engine.network.trials", trials=num_trials, mode="cross-trial"):
        _run_cross_trial_scan(
            engines, simulators, streams, live, end_times, finalize,
            first, model, scan_rows, battery_capacity_j,
        )
        for trial in range(num_trials):
            if results[trial] is None:
                finalize(trial)
    return [result for result in results if result is not None]


def _run_cross_trial_scan(
    engines, simulators, streams, live, end_times, finalize,
    first, model, scan_rows, battery_capacity_j,
) -> None:
    """The chunked cross-trial death scan of :func:`simulate_network_trials`."""
    tx_ind, rx_ind, _, _ = model
    while live:
        # budget the (nodes x trials x events) scan working set: with many
        # live trials each one contributes a proportionally smaller chunk
        _SCAN_TRIALS.observe(len(live))
        chunk_size = max(256, _CHUNK_EVENTS // len(live))
        chunks = {}
        for trial in list(live):
            times, sources = streams[trial].next_chunk(chunk_size)
            if len(times) == 0:
                finalize(trial)
                live.remove(trial)
            else:
                chunks[trial] = (times, sources, engines[trial]._to_rows(sources))
        if not chunks:
            break
        _CHUNKS.inc(len(chunks))
        _EVENTS.inc(sum(len(chunk[0]) for chunk in chunks.values()))
        order = sorted(chunks)
        max_len = max(len(chunks[trial][0]) for trial in order)
        times_pad = np.zeros((len(order), max_len))
        src_pad = np.zeros((len(order), max_len), dtype=np.int64)
        valid = np.zeros((len(order), max_len), dtype=bool)
        base_tx = np.zeros((len(order), len(first._ids)), dtype=np.int64)
        base_rx = np.zeros_like(base_tx)
        for index, trial in enumerate(order):
            times, _, src_rows = chunks[trial]
            length = len(times)
            times_pad[index, :length] = times
            times_pad[index, length:] = times[-1]
            src_pad[index, :length] = src_rows
            valid[index, :length] = True
            base_tx[index], base_rx[index] = engines[trial]._base_counts()
        found = _first_crossings(
            times_pad, src_pad, valid, tx_ind, rx_ind, base_tx, base_rx, scan_rows,
            first._attempts, first._tx_energy, first._rx_energy, first._idle_power,
            battery_capacity_j,
        )
        for index, trial in enumerate(order):
            times, sources, src_rows = chunks[trial]
            engine = engines[trial]
            crossing = None if found[index] < 0 else int(found[index])
            stop = len(times) if crossing is None else crossing
            if stop > 0:
                engine._fast_forward(times[:stop], src_rows[:stop], model)
                end_times[trial] = float(times[stop - 1])
            if crossing is None:
                continue
            end_times[trial] = float(times[crossing])
            simulators[trial]._account_report(end_times[trial], int(sources[crossing]))
            if simulators[trial]._first_death is None:
                # defensive: a scanned crossing always kills a node in replay,
                # but if it ever did not, consume the rest of the chunk with
                # the single-trial engine and keep the trial live
                last_time, finished = engine._consume(
                    times[crossing + 1 :],
                    sources[crossing + 1 :],
                    src_rows[crossing + 1 :],
                    stop_at_first_death=True,
                )
                if last_time is not None:
                    end_times[trial] = last_time
                if not finished:
                    continue
            finalize(trial)
            live.remove(trial)
