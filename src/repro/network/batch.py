"""Vectorised round-based network simulation: the batched lifetime engine.

The event loop in :mod:`repro.network.simulator` prices every packet hop by
hop in Python, which makes platform/topology lifetime sweeps (experiment E9)
wall-clock bound.  This engine replaces the per-packet loop with array
accounting while reproducing the event loop bit-for-bit:

1. **Schedule** — report events (time, source) are generated lazily in
   chunks, in exactly the scheduler's order.  Jitter-free traffic is
   generated analytically round-block by round-block with sequential
   ``cumsum`` accumulation (matching the scheduler's repeated
   ``now + delay`` float trajectory); jittered traffic replays the
   scheduler's heap, drawing the identical RNG stream one uniform per event.
2. **Charge model** — who pays for whose packets is a static function of the
   routing subtree (cf. :func:`repro.network.lifetime.subtree_sizes`):
   per-source transmit/receive indicator matrices over the current alive set.
3. **Death scan** — per-node demanded energy is the closed form
   ``tx_count * tx_energy + rx_count * rx_energy + idle_power * t`` (the same
   expression :attr:`SensorNode.demanded_j` evaluates), so battery-depletion
   events are resolved by a cumulative scan over all nodes — and all trials —
   simultaneously.  Because the accounting is closed form over integer
   counts, the scan needs no running float state: each chunk starts from the
   nodes' own counts.
4. **Fast-forward + replay** — a crossing-free span is applied to the node
   states in one bulk update; only the boundary event (where a node dies and
   packet delivery may truncate mid-path) is replayed through the event
   loop's own per-hop accounting, keeping partial-delivery semantics exact.

Contention (:class:`~repro.network.mac.CsmaMac`), TTL flooding
(:class:`~repro.network.routing.TtlFlooding`) and mobility
(:class:`~repro.network.topology.LinearMobility`) run through the *general*
path: charges are no longer a static per-source function, so the engine
builds exact per-event increment matrices instead — contention retry counts
come from the same counter-based uniforms
(:func:`repro.utils.rng.counter_uniforms`, keyed by each event's global
schedule index) the event loop draws, floods are propagated
level-synchronously as boolean matrix products, and chunks are segmented at
mobility epoch boundaries so every segment sees one fixed topology.  The
cumulative death scan and boundary-event replay work unchanged on top of the
increments.

Both engines agree exactly on death times, death order, packet counts,
delivery ratios and per-component energy — the seed-locked equivalence suite
(``tests/network/test_batch_equivalence.py``) pins this with ``==``, not
tolerances.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.network.routing import RoutedForwarding, TtlFlooding
from repro.network.simulator import NetworkSimulationResult, NetworkSimulator
from repro.network.topology import LinearMobility
from repro.network.traffic import PeriodicTraffic
from repro.telemetry.metrics import counter, histogram
from repro.telemetry.tracing import span
from repro.utils.rng import as_rng, counter_uniforms
from repro.utils.validation import check_positive

__all__ = [
    "BatchNetworkEngine",
    "ScheduleStream",
    "generate_report_schedule",
    "simulate_network_trials",
]

# per-chunk telemetry (one update per scanned chunk, never per event)
_EVENTS = counter("engine.network.events")
_CHUNKS = counter("engine.network.chunks")
_SCAN_TRIALS = histogram("engine.network.scan_live_trials")
#: events processed through the general (contention/flooding/mobility) path
_GENERAL_EVENTS = counter("engine.network.general_events")
#: events per same-topology segment of the general path
_SEGMENT_EVENTS = histogram("engine.network.segment_events")
#: same counter instance the event loop increments (registry-deduplicated)
_PACKETS_DROPPED = counter("network.packets_dropped")

#: Events per generated/scanned chunk; bounds wasted schedule generation past
#: a death while keeping the NumPy call overhead amortised.
_CHUNK_EVENTS = 4096


class ScheduleStream:
    """Lazily yields report-event chunks in exactly the scheduler's order.

    Emits every event the event loop would process: (time, source) pairs with
    ``time <= max_time_s``, capped at ``max_events`` in total, ordered by
    (time, schedule sequence).  With jitter the scheduler's heap is replayed,
    consuming the RNG stream one uniform per event in the identical order;
    without jitter, times are built round-block by round-block with
    sequential ``cumsum`` accumulation, so the float trajectories match the
    event loop's repeated ``now + delay`` bit for bit.
    """

    def __init__(
        self,
        traffic: PeriodicTraffic,
        sensor_ids: list[int],
        rng: np.random.Generator,
        max_time_s: float,
        max_events: int,
    ) -> None:
        check_positive("max_time_s", max_time_s)
        self.traffic = traffic
        self.max_time_s = max_time_s
        self.rng = rng
        self._ids = np.asarray(sensor_ids, dtype=np.int64)
        self._remaining = max(0, max_events)
        num = len(sensor_ids)
        self._num = num
        if num == 0:
            self._remaining = 0
            return
        self._jittered = traffic.jitter_fraction != 0.0
        if self._jittered:
            self._heap: list[tuple[float, int, int]] = []
            for index, node_id in enumerate(sensor_ids):
                heapq.heappush(self._heap, (traffic.first_offset(index, num), index, int(node_id)))
            self._sequence = num
        else:
            # per-node times continue by sequential addition from these values
            self._last_times = np.asarray(
                [traffic.first_offset(index, num) for index in range(num)]
            )
            self._first_round = True
            self._horizon_done = False
            self._pending: tuple[np.ndarray, np.ndarray] = (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )

    def next_chunk(self, size: int = _CHUNK_EVENTS) -> tuple[np.ndarray, np.ndarray]:
        """Next up-to-``size`` events as (times, source node ids); empty when done."""
        size = min(size, self._remaining)
        if size <= 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        chunk = self._next_jittered(size) if self._jittered else self._next_periodic(size)
        self._remaining -= len(chunk[0])
        if len(chunk[0]) == 0:
            self._remaining = 0
        return chunk

    def _next_jittered(self, size: int) -> tuple[np.ndarray, np.ndarray]:
        traffic = self.traffic
        rng = self.rng
        heap = self._heap
        out_times: list[float] = []
        out_sources: list[int] = []
        while heap and len(out_times) < size:
            now, _, node_id = heapq.heappop(heap)
            if now > self.max_time_s:
                self._remaining = 0
                break
            out_times.append(now)
            out_sources.append(node_id)
            delay = traffic.next_interval(rng)
            heapq.heappush(heap, (now + delay, self._sequence, node_id))
            self._sequence += 1
        return np.asarray(out_times, dtype=np.float64), np.asarray(out_sources, dtype=np.int64)

    def _generate_rounds(self, rounds: int) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``rounds`` further report rounds (one event per node each)."""
        interval = self.traffic.report_interval_s
        num = self._num
        # the cumsum is seeded with each node's previous time so every emitted
        # value is a strict sequential sum, exactly the scheduler's repeated
        # ``now + delay`` addition
        seeded = np.empty((num, rounds + 1))
        seeded[:, 0] = self._last_times
        seeded[:, 1:] = interval
        times = np.cumsum(seeded, axis=1)
        if self._first_round:
            # round 0 is the staggered first offset itself, not offset+interval
            times = times[:, :-1]
            self._first_round = False
        else:
            times = times[:, 1:]
        self._last_times = times[:, -1].copy()
        node_index = np.repeat(np.arange(num), rounds)
        flat = times.ravel()
        keep = flat <= self.max_time_s
        if not keep.all():
            self._horizon_done = True
        flat = flat[keep]
        node_index = node_index[keep]
        order = np.argsort(flat, kind="stable")
        return flat[order], self._ids[node_index[order]]

    def _next_periodic(self, size: int) -> tuple[np.ndarray, np.ndarray]:
        times, sources = self._pending
        while len(times) < size and not self._horizon_done:
            rounds = max(1, (size - len(times)) // self._num)
            more_times, more_sources = self._generate_rounds(rounds)
            times = np.concatenate([times, more_times])
            sources = np.concatenate([sources, more_sources])
        self._pending = (times[size:], sources[size:])
        return times[:size], sources[:size]


def generate_report_schedule(
    traffic: PeriodicTraffic,
    sensor_ids: list[int],
    rng: np.random.Generator,
    max_time_s: float,
    max_events: int,
) -> tuple[np.ndarray, np.ndarray]:
    """The full event schedule as two arrays (see :class:`ScheduleStream`)."""
    stream = ScheduleStream(traffic, sensor_ids, rng, max_time_s, max_events)
    all_times: list[np.ndarray] = []
    all_sources: list[np.ndarray] = []
    while True:
        times, sources = stream.next_chunk()
        if len(times) == 0:
            break
        all_times.append(times)
        all_sources.append(sources)
    if not all_times:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    return np.concatenate(all_times), np.concatenate(all_sources)


def _first_crossings(
    times: np.ndarray,
    src_rows: np.ndarray,
    valid: np.ndarray,
    tx_ind: np.ndarray,
    rx_ind: np.ndarray,
    base_tx: np.ndarray,
    base_rx: np.ndarray,
    scan_rows: np.ndarray,
    attempts: int,
    tx_energy: float,
    rx_energy: float,
    idle_power: float,
    capacity: float,
) -> np.ndarray:
    """First event index per trial where any scanned node's demand reaches capacity.

    ``times``/``src_rows``/``valid`` are (trials, events) padded arrays (pad
    entries carry zero charge and a frozen time, so they can never introduce
    a crossing); ``base_tx``/``base_rx`` are (trials, nodes) charge counts at
    the scan start.  Returns a (trials,) array of event indices, -1 where no
    crossing occurs.  The demand expression mirrors
    :attr:`repro.network.node.SensorNode.demanded_j` term for term, so the
    crossing decision is bit-identical to the event loop's battery checks.
    """
    num_trials = times.shape[0]
    found = np.full(num_trials, -1, dtype=np.int64)
    if scan_rows.size == 0 or times.shape[1] == 0:
        return found
    inc_tx = tx_ind[scan_rows][:, src_rows] * valid[np.newaxis, :, :]  # (scanned, trials, E)
    inc_rx = rx_ind[scan_rows][:, src_rows] * valid[np.newaxis, :, :]
    ntx = base_tx[:, scan_rows].T[:, :, np.newaxis] + attempts * np.cumsum(inc_tx, axis=2)
    nrx = base_rx[:, scan_rows].T[:, :, np.newaxis] + attempts * np.cumsum(inc_rx, axis=2)
    demanded = ntx * tx_energy + nrx * rx_energy + idle_power * times[np.newaxis, :, :]
    crossed = (demanded >= capacity).any(axis=0)  # (trials, E)
    for trial in np.nonzero(crossed.any(axis=1))[0]:
        found[trial] = int(np.argmax(crossed[trial]))
    return found


@dataclass
class _EventIncrements:
    """Exact per-event charge increments for one same-topology segment.

    Row ``e`` of each matrix holds the charges event ``e`` inflicts on every
    node (already including retry attempts), computed against the alive set
    at the start of the scan — exact for every event before the first death,
    which is all the scan needs (the boundary event itself is replayed).
    """

    tx: np.ndarray  # (events, nodes) transmit charge counts
    rx: np.ndarray  # (events, nodes) receive charge counts
    fwd: np.ndarray  # (events, nodes) forwarded-packet counts
    generated: np.ndarray  # (events,) whether the source generated
    delivered: np.ndarray  # (events,) whether the sink got the packet
    dropped_row: np.ndarray  # (events,) node row of a retry-exhausted drop, -1 if none


@dataclass
class BatchNetworkEngine:
    """Drives one :class:`NetworkSimulator` with vectorised accounting.

    The engine mutates the simulator's node states exactly as the event loop
    would (``run`` once per simulator instance); results are therefore
    interchangeable with — and bit-identical to —
    :meth:`NetworkSimulator.run_event_loop`.
    """

    simulator: NetworkSimulator

    def __post_init__(self) -> None:
        sim = self.simulator
        self._ids = list(sim.nodes)
        self._rows = {node_id: row for row, node_id in enumerate(self._ids)}
        self._attempts = int(np.ceil(sim._tx_multiplier))
        symbols = sim.traffic.packet_symbols
        self._tx_energy = sim.energy_budget.transmit_energy_j(symbols)
        self._rx_energy = sim.energy_budget.receive_energy_j(symbols).total_j
        self._idle_power = sim.energy_budget.idle_power_w()
        # contention, flooding and mobility make per-event charges dynamic,
        # which selects the increment-matrix path; everything else stays on
        # the (byte-identical) static charge-model path
        self._general = (
            sim._contention is not None
            or isinstance(sim.protocol, TtlFlooding)
            or sim.mobility is not None
        )

    # ------------------------------------------------------------------ #
    def _to_rows(self, sources: np.ndarray) -> np.ndarray:
        """Map source node ids to node rows."""
        if sources.size == 0:
            return sources.astype(np.int64)
        lut = np.full(max(self._ids) + 1, -1, dtype=np.int64)
        for node_id, row in self._rows.items():
            lut[node_id] = row
        return lut[sources]

    def _charge_model(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-source charge indicators over the current alive set.

        Column ``s`` of the transmit/receive matrices marks which nodes are
        charged when (alive) source ``s`` reports: its routing path truncated
        at the first dead node, mirroring the event loop's hop-by-hop
        aliveness checks.  ``deliverable`` marks sources whose full path to
        the sink is alive.
        """
        sim = self.simulator
        rows = self._rows
        count = len(rows)
        tx_ind = np.zeros((count, count), dtype=np.int64)
        rx_ind = np.zeros((count, count), dtype=np.int64)
        alive_source = np.zeros(count, dtype=bool)
        deliverable = np.zeros(count, dtype=bool)
        for node_id in sim.sensor_ids:
            if not sim.nodes[node_id].is_alive:
                continue
            col = rows[node_id]
            alive_source[col] = True
            path = sim.routing.route(node_id)
            cut = len(path)
            for position, hop_id in enumerate(path):
                if not sim.nodes[hop_id].is_alive:
                    cut = position
                    break
            deliverable[col] = cut == len(path)
            for hop in range(cut - 1):
                tx_ind[rows[path[hop]], col] = 1
                rx_ind[rows[path[hop + 1]], col] = 1
        return tx_ind, rx_ind, alive_source, deliverable

    def _alive_sensor_rows(self) -> np.ndarray:
        sim = self.simulator
        return np.asarray(
            [
                row
                for node_id, row in self._rows.items()
                if node_id != sim.deployment.sink_id and sim.nodes[node_id].is_alive
            ],
            dtype=np.int64,
        )

    def _base_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Current per-node charge counts (the scan's closed-form state)."""
        sim = self.simulator
        symbols = sim.traffic.packet_symbols
        counts = [sim.nodes[node_id].charge_counts(symbols) for node_id in self._ids]
        base = np.asarray(counts, dtype=np.int64)
        return base[:, 0], base[:, 1]

    def _scan(
        self,
        times: np.ndarray,
        src_rows: np.ndarray,
        tx_ind: np.ndarray,
        rx_ind: np.ndarray,
    ) -> int | None:
        base_tx, base_rx = self._base_counts()
        found = _first_crossings(
            times[np.newaxis, :],
            src_rows[np.newaxis, :],
            np.ones((1, len(times)), dtype=bool),
            tx_ind,
            rx_ind,
            base_tx[np.newaxis, :],
            base_rx[np.newaxis, :],
            self._alive_sensor_rows(),
            self._attempts,
            self._tx_energy,
            self._rx_energy,
            self._idle_power,
            self.simulator.battery_capacity_j,
        )
        return None if found[0] < 0 else int(found[0])

    def _fast_forward(
        self,
        times: np.ndarray,
        src_rows: np.ndarray,
        model: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """Apply a crossing-free span of events to the node states in bulk."""
        if len(times) == 0:
            return
        tx_ind, rx_ind, alive_source, deliverable = model
        sim = self.simulator
        counts = np.bincount(src_rows, minlength=len(self._ids))
        tx_packets = tx_ind @ counts
        rx_packets = rx_ind @ counts
        now = float(times[-1])
        symbols = sim.traffic.packet_symbols
        attempts = self._attempts
        sink_id = sim.deployment.sink_id
        for node_id, row in self._rows.items():
            node = sim.nodes[node_id]
            if not node.is_alive:
                continue
            receive = int(rx_packets[row]) * attempts
            node.apply_charges(
                symbols,
                transmit=int(tx_packets[row]) * attempts,
                receive=receive,
                forwarded=0 if node_id == sink_id else receive,
                now_s=now,
            )
        sim._packets_generated += int(alive_source[src_rows].sum())
        sim._packets_delivered += int(deliverable[src_rows].sum())

    # ----------------------- general (dynamic-charge) path ------------- #
    def _alive_mask(self) -> np.ndarray:
        """Per-row aliveness of every node, in row order."""
        sim = self.simulator
        return np.asarray(
            [sim.nodes[node_id].is_alive for node_id in self._ids], dtype=bool
        )

    def _segment_end(self, times: np.ndarray, position: int) -> int:
        """End (exclusive) of the same-mobility-epoch run starting at ``position``."""
        mobility = self.simulator.mobility
        if mobility is None:
            return len(times)
        epochs = (times[position:] // mobility.epoch_s).astype(np.int64)
        boundary = np.nonzero(epochs != epochs[0])[0]
        return len(times) if boundary.size == 0 else position + int(boundary[0])

    def _event_increments(
        self, src_rows: np.ndarray, event_indices: np.ndarray
    ) -> _EventIncrements:
        if isinstance(self.simulator.protocol, TtlFlooding):
            return self._flood_increments(src_rows, event_indices)
        return self._routed_increments(src_rows, event_indices)

    def _routed_increments(
        self, src_rows: np.ndarray, event_indices: np.ndarray
    ) -> _EventIncrements:
        """Per-event charges for routed forwarding (contended or multiplier).

        Mirrors ``NetworkSimulator._deliver_routed_contended`` /
        ``_deliver_packet`` exactly: hop ``h``'s attempt ``a`` reads the
        event's counter-based uniform at slot ``h * max_attempts + a``, hops
        execute only along the alive path prefix and while every earlier hop
        succeeded, and a hop that exhausts its retries drops the packet at
        its sender.
        """
        sim = self.simulator
        rows = self._rows
        count = len(self._ids)
        num_events = len(src_rows)
        alive = self._alive_mask()
        sink_row = rows[sim.deployment.sink_id]
        contention = sim._contention
        tx = np.zeros((num_events, count), dtype=np.int64)
        rx = np.zeros_like(tx)
        fwd = np.zeros_like(tx)
        generated = alive[src_rows]
        dropped_row = np.full(num_events, -1, dtype=np.int64)
        # per-source path tables under the current alive set
        hops_total = np.zeros(count, dtype=np.int64)
        exec_hops = np.zeros(count, dtype=np.int64)
        routable = np.zeros(count, dtype=bool)
        paths: dict[int, list[int]] = {}
        max_hops = 0
        for node_id in sim.sensor_ids:
            row = rows[node_id]
            if not alive[row] or not sim.routing.has_route(node_id):
                continue
            path_rows = [rows[hop_id] for hop_id in sim.routing.route(node_id)]
            routable[row] = True
            hops_total[row] = len(path_rows) - 1
            cut = len(path_rows)
            for index, hop_row in enumerate(path_rows):
                if not alive[hop_row]:
                    cut = index
                    break
            exec_hops[row] = cut - 1
            paths[row] = path_rows
            max_hops = max(max_hops, len(path_rows) - 1)
        if max_hops == 0:
            return _EventIncrements(
                tx, rx, fwd, generated, np.zeros(num_events, dtype=bool), dropped_row
            )
        path_pad = np.zeros((count, max_hops + 1), dtype=np.int64)
        p_hop = np.zeros((count, max_hops), dtype=np.float64)
        for row, path_rows in paths.items():
            path_pad[row, : len(path_rows)] = path_rows
            if contention is not None:
                for hop in range(len(path_rows) - 1):
                    edge = (self._ids[path_rows[hop]], self._ids[path_rows[hop + 1]])
                    p_hop[row, hop] = sim._edge_success[edge]
        hop_index = np.arange(max_hops)
        real = hop_index[np.newaxis, :] < hops_total[src_rows][:, np.newaxis]
        if contention is not None:
            num_attempts = contention.max_attempts
            draws = counter_uniforms(
                sim._contention_seed, event_indices, max_hops * num_attempts
            ).reshape(num_events, max_hops, num_attempts)
            success = draws < p_hop[src_rows][:, :, np.newaxis]
            hop_ok = success.any(axis=2)
            attempts = np.where(hop_ok, success.argmax(axis=2) + 1, num_attempts)
        else:
            hop_ok = np.ones((num_events, max_hops), dtype=bool)
            attempts = np.full((num_events, max_hops), self._attempts, dtype=np.int64)
        prefix_ok = np.ones((num_events, max_hops), dtype=bool)
        if max_hops > 1:
            prefix_ok[:, 1:] = np.cumprod(hop_ok[:, :-1], axis=1).astype(bool)
        executed = (
            (hop_index[np.newaxis, :] < exec_hops[src_rows][:, np.newaxis])
            & prefix_ok
            & generated[:, np.newaxis]
            & routable[src_rows][:, np.newaxis]
        )
        charge = np.where(executed, attempts, 0)
        event_of = np.repeat(np.arange(num_events), max_hops)
        flat = charge.ravel()
        senders = path_pad[src_rows][:, :max_hops].ravel()
        receivers = path_pad[src_rows][:, 1 : max_hops + 1].ravel()
        nonzero = flat > 0
        np.add.at(tx, (event_of[nonzero], senders[nonzero]), flat[nonzero])
        np.add.at(rx, (event_of[nonzero], receivers[nonzero]), flat[nonzero])
        np.add.at(
            fwd,
            (event_of[nonzero], receivers[nonzero]),
            flat[nonzero] * (receivers[nonzero] != sink_row),
        )
        all_hops_ok = (hop_ok | ~real).all(axis=1)
        delivered = (
            generated
            & routable[src_rows]
            & (exec_hops[src_rows] == hops_total[src_rows])
            & all_hops_ok
        )
        if contention is not None:
            fail = ~hop_ok & real
            has_fail = fail.any(axis=1)
            first_fail = fail.argmax(axis=1)
            drop = (
                generated
                & routable[src_rows]
                & has_fail
                & (first_fail < exec_hops[src_rows])
            )
            dropped_row[drop] = path_pad[src_rows[drop], first_fail[drop]]
        return _EventIncrements(tx, rx, fwd, generated, delivered, dropped_row)

    def _flood_increments(
        self, src_rows: np.ndarray, event_indices: np.ndarray
    ) -> _EventIncrements:
        """Per-event charges for TTL flooding, level-synchronous as matrices.

        Mirrors :func:`repro.network.routing.flood_packet`: each level's
        frontier broadcasts (sink excluded), every alive neighbour pays
        reception whether or not the copy decodes, and only decoded first
        copies (per-edge counter-based draws under contention) propagate.
        """
        sim = self.simulator
        rows = self._rows
        count = len(self._ids)
        num_events = len(src_rows)
        alive = self._alive_mask()
        sink_row = rows[sim.deployment.sink_id]
        attempts = self._attempts
        contention = sim._contention
        adjacency = np.zeros((count, count), dtype=bool)
        for node_id, neighbours in sim._adjacency.items():
            for neighbour in neighbours:
                adjacency[rows[node_id], rows[neighbour]] = True
        adj_alive = (adjacency & alive[np.newaxis, :]).astype(np.int64)
        generated = alive[src_rows]
        tx = np.zeros((num_events, count), dtype=np.int64)
        rx = np.zeros_like(tx)
        heard = np.zeros((num_events, count), dtype=bool)
        heard[np.arange(num_events), src_rows] = generated
        frontier = heard.copy()
        if contention is not None:
            # slot order == insertion order of the sorted directed-edge dict
            edge_list = list(sim._edge_slots)
            u_rows = np.asarray([rows[u] for u, _ in edge_list], dtype=np.int64)
            v_rows = np.asarray([rows[v] for _, v in edge_list], dtype=np.int64)
            probs = np.asarray([sim._edge_success[edge] for edge in edge_list])
            draws = counter_uniforms(
                sim._contention_seed, event_indices, len(edge_list)
            )
            edge_ok = (draws < probs[np.newaxis, :]) & alive[v_rows][np.newaxis, :]
            v_onehot = np.zeros((len(edge_list), count), dtype=np.int64)
            if edge_list:
                v_onehot[np.arange(len(edge_list)), v_rows] = 1
        for _ in range(sim.protocol.ttl):
            senders = frontier.copy()
            senders[:, sink_row] = False
            if not senders.any():
                break
            sender_counts = senders.astype(np.int64)
            tx += attempts * sender_counts
            rx += attempts * (sender_counts @ adj_alive)
            if contention is not None:
                contrib = (senders[:, u_rows] & edge_ok).astype(np.int64)
                reached = (contrib @ v_onehot) > 0
            else:
                reached = (sender_counts @ adj_alive) > 0
            frontier = reached & ~heard
            heard |= frontier
        fwd = rx.copy()
        fwd[:, sink_row] = 0
        delivered = heard[:, sink_row].copy()
        return _EventIncrements(
            tx, rx, fwd, generated, delivered, np.full(num_events, -1, dtype=np.int64)
        )

    def _scan_increments(self, times: np.ndarray, inc: _EventIncrements) -> int | None:
        """First event index whose cumulative increments kill a node, or None.

        Same closed-form demand expression as :func:`_first_crossings` (and
        :attr:`repro.network.node.SensorNode.demanded_j`), with the retry
        attempts already folded into the increment counts.
        """
        scan_rows = self._alive_sensor_rows()
        if scan_rows.size == 0 or len(times) == 0:
            return None
        base_tx, base_rx = self._base_counts()
        ntx = base_tx[scan_rows][np.newaxis, :] + np.cumsum(inc.tx[:, scan_rows], axis=0)
        nrx = base_rx[scan_rows][np.newaxis, :] + np.cumsum(inc.rx[:, scan_rows], axis=0)
        demanded = (
            ntx * self._tx_energy
            + nrx * self._rx_energy
            + self._idle_power * times[:, np.newaxis]
        )
        crossed = (demanded >= self.simulator.battery_capacity_j).any(axis=1)
        if not crossed.any():
            return None
        return int(np.argmax(crossed))

    def _apply_increments(
        self, times: np.ndarray, inc: _EventIncrements, stop: int
    ) -> None:
        """Bulk-apply the first ``stop`` events' increments to the node states."""
        sim = self.simulator
        symbols = sim.traffic.packet_symbols
        tx_total = inc.tx[:stop].sum(axis=0)
        rx_total = inc.rx[:stop].sum(axis=0)
        fwd_total = inc.fwd[:stop].sum(axis=0)
        now = float(times[stop - 1])
        for node_id, row in self._rows.items():
            node = sim.nodes[node_id]
            if not node.is_alive:
                continue
            node.apply_charges(
                symbols,
                transmit=int(tx_total[row]),
                receive=int(rx_total[row]),
                forwarded=int(fwd_total[row]),
                now_s=now,
            )
        sim._packets_generated += int(inc.generated[:stop].sum())
        sim._packets_delivered += int(inc.delivered[:stop].sum())
        drops = inc.dropped_row[:stop]
        drops = drops[drops >= 0]
        if drops.size:
            for row, count in zip(*np.unique(drops, return_counts=True)):
                sim.nodes[self._ids[int(row)]].packets_dropped += int(count)
            sim._packets_dropped += int(drops.size)
            _PACKETS_DROPPED.inc(int(drops.size))

    def _consume_general(
        self,
        times: np.ndarray,
        sources: np.ndarray,
        src_rows: np.ndarray,
        stop_at_first_death: bool,
        offset: int,
    ) -> tuple[float | None, bool]:
        """The general-path chunk consumer: segment, scan increments, replay.

        ``offset`` is the global schedule index of ``times[0]`` — the key
        into the counter-based contention stream, which is how the two
        engines observe identical per-packet draws without any stream state.
        """
        sim = self.simulator
        last_time: float | None = None
        position = 0
        _GENERAL_EVENTS.inc(len(times))
        while position < len(times):
            sim._refresh_topology(float(times[position]))
            segment_end = self._segment_end(times, position)
            seg_times = times[position:segment_end]
            seg_rows = src_rows[position:segment_end]
            _SEGMENT_EVENTS.observe(len(seg_times))
            event_indices = offset + np.arange(position, segment_end, dtype=np.int64)
            inc = self._event_increments(seg_rows, event_indices)
            crossing = self._scan_increments(seg_times, inc)
            stop = len(seg_times) if crossing is None else crossing
            if stop > 0:
                self._apply_increments(seg_times, inc, stop)
                last_time = float(seg_times[stop - 1])
            position += stop
            if crossing is None:
                continue
            # replay the boundary event through the event loop's own
            # accounting, at its exact global schedule index
            last_time = float(times[position])
            sim._account_report(
                last_time, int(sources[position]), event_index=offset + position
            )
            position += 1
            if stop_at_first_death and sim._first_death is not None:
                return last_time, True
        return last_time, False

    # ------------------------------------------------------------------ #
    def _consume(
        self,
        times: np.ndarray,
        sources: np.ndarray,
        src_rows: np.ndarray,
        stop_at_first_death: bool,
        offset: int = 0,
    ) -> tuple[float | None, bool]:
        """Process one chunk of events; returns (last event time, finished)."""
        sim = self.simulator
        if self._general:
            return self._consume_general(
                times, sources, src_rows, stop_at_first_death, offset
            )
        last_time: float | None = None
        position = 0
        while position < len(times):
            model = self._charge_model()
            crossing = self._scan(times[position:], src_rows[position:], model[0], model[1])
            stop = len(times) if crossing is None else position + crossing
            if stop > position:
                self._fast_forward(times[position:stop], src_rows[position:stop], model)
                last_time = float(times[stop - 1])
            position = stop
            if crossing is None:
                return last_time, False
            # replay the boundary event through the event loop's own per-hop
            # accounting: partial deliveries and death ordering stay exact
            last_time = float(times[position])
            sim._account_report(last_time, int(sources[position]))
            position += 1
            if stop_at_first_death and sim._first_death is not None:
                return last_time, True
        return last_time, False

    # ------------------------------------------------------------------ #
    def run(
        self,
        max_time_s: float = 30.0 * 86_400.0,
        stop_at_first_death: bool = True,
        max_events: int = 500_000,
        schedule: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> NetworkSimulationResult:
        """Run the batched simulation (same contract as the event loop).

        Parameters
        ----------
        max_time_s, stop_at_first_death, max_events:
            As in :meth:`NetworkSimulator.run`.
        schedule:
            Optional pre-generated (times, sources) from
            :func:`generate_report_schedule`; by default events are generated
            lazily so a run that dies early never materialises the full
            horizon's schedule.
        """
        sim = self.simulator
        check_positive("max_time_s", max_time_s)
        end_time = 0.0
        with span("engine.network.run", nodes=len(self._ids)):
            if schedule is not None:
                times, sources = schedule
                _CHUNKS.inc()
                _EVENTS.inc(len(times))
                last_time, _ = self._consume(
                    times, sources, self._to_rows(sources), stop_at_first_death
                )
                if last_time is not None:
                    end_time = last_time
            else:
                stream = ScheduleStream(
                    sim.traffic, sim.sensor_ids, as_rng(sim.rng), max_time_s, max_events
                )
                offset = 0
                while True:
                    times, sources = stream.next_chunk()
                    if len(times) == 0:
                        break
                    _CHUNKS.inc()
                    _EVENTS.inc(len(times))
                    last_time, finished = self._consume(
                        times,
                        sources,
                        self._to_rows(sources),
                        stop_at_first_death,
                        offset=offset,
                    )
                    offset += len(times)
                    if last_time is not None:
                        end_time = last_time
                    if finished:
                        break
            sim._advance_all(end_time)
            return sim._build_result(end_time)


def simulate_network_trials(
    deployment,
    energy_budget,
    *,
    traffic: PeriodicTraffic | None = None,
    communication_range_m: float = 300.0,
    battery_capacity_j: float = 50_000.0,
    mac=None,
    protocol: RoutedForwarding | TtlFlooding | None = None,
    mobility: LinearMobility | None = None,
    seeds=(0,),
    max_time_s: float = 30.0 * 86_400.0,
    stop_at_first_death: bool = True,
    max_events: int = 500_000,
    batch: bool = True,
) -> list[NetworkSimulationResult]:
    """Monte-Carlo network-lifetime trials, batched across seeds.

    Runs one independent simulation per seed on a shared deployment and
    energy model.  With ``batch=True`` (default) and the usual
    ``stop_at_first_death`` mode, the death scan runs as one
    (trials x nodes x events) array operation across every live trial
    simultaneously; each trial's boundary event is then replayed exactly.
    Contention/flooding/mobility configurations make the charge model
    per-trial dynamic, so they run each trial on its own batched engine
    instead of the cross-trial scan.  ``batch=False`` runs the per-packet
    event loop per seed — results are identical either way, seed for seed.
    """
    traffic = traffic if traffic is not None else PeriodicTraffic()
    simulators = [
        NetworkSimulator(
            deployment=deployment,
            energy_budget=energy_budget,
            traffic=traffic,
            communication_range_m=communication_range_m,
            battery_capacity_j=battery_capacity_j,
            mac=mac,
            rng=seed,
            batch=batch,
            protocol=protocol if protocol is not None else RoutedForwarding(),
            mobility=mobility,
        )
        for seed in seeds
    ]
    run_args = dict(
        max_time_s=max_time_s,
        stop_at_first_death=stop_at_first_death,
        max_events=max_events,
    )
    if not batch:
        return [sim.run_event_loop(**run_args) for sim in simulators]
    engines = [BatchNetworkEngine(sim) for sim in simulators]
    general = bool(engines) and engines[0]._general
    if not stop_at_first_death or general:
        with span("engine.network.trials", trials=len(engines), mode="per-trial"):
            return [engine.run(**run_args) for engine in engines]

    # chunked cross-trial loop: every live trial's chunk is scanned in one
    # (trials x nodes x events) pass under the shared all-alive charge model
    num_trials = len(engines)
    results: list[NetworkSimulationResult | None] = [None] * num_trials
    if num_trials == 0:
        return []
    first = engines[0]
    tx_ind, rx_ind, alive_source, deliverable = first._charge_model()
    model = (tx_ind, rx_ind, alive_source, deliverable)
    scan_rows = first._alive_sensor_rows()
    streams = [
        ScheduleStream(sim.traffic, sim.sensor_ids, as_rng(sim.rng), max_time_s, max_events)
        for sim in simulators
    ]
    end_times = [0.0] * num_trials
    live = list(range(num_trials))

    def finalize(trial: int) -> None:
        sim = simulators[trial]
        sim._advance_all(end_times[trial])
        results[trial] = sim._build_result(end_times[trial])

    with span("engine.network.trials", trials=num_trials, mode="cross-trial"):
        _run_cross_trial_scan(
            engines, simulators, streams, live, end_times, finalize,
            first, model, scan_rows, battery_capacity_j,
        )
        for trial in range(num_trials):
            if results[trial] is None:
                finalize(trial)
    return [result for result in results if result is not None]


def _run_cross_trial_scan(
    engines, simulators, streams, live, end_times, finalize,
    first, model, scan_rows, battery_capacity_j,
) -> None:
    """The chunked cross-trial death scan of :func:`simulate_network_trials`."""
    tx_ind, rx_ind, _, _ = model
    while live:
        # budget the (nodes x trials x events) scan working set: with many
        # live trials each one contributes a proportionally smaller chunk
        _SCAN_TRIALS.observe(len(live))
        chunk_size = max(256, _CHUNK_EVENTS // len(live))
        chunks = {}
        for trial in list(live):
            times, sources = streams[trial].next_chunk(chunk_size)
            if len(times) == 0:
                finalize(trial)
                live.remove(trial)
            else:
                chunks[trial] = (times, sources, engines[trial]._to_rows(sources))
        if not chunks:
            break
        _CHUNKS.inc(len(chunks))
        _EVENTS.inc(sum(len(chunk[0]) for chunk in chunks.values()))
        order = sorted(chunks)
        max_len = max(len(chunks[trial][0]) for trial in order)
        times_pad = np.zeros((len(order), max_len))
        src_pad = np.zeros((len(order), max_len), dtype=np.int64)
        valid = np.zeros((len(order), max_len), dtype=bool)
        base_tx = np.zeros((len(order), len(first._ids)), dtype=np.int64)
        base_rx = np.zeros_like(base_tx)
        for index, trial in enumerate(order):
            times, _, src_rows = chunks[trial]
            length = len(times)
            times_pad[index, :length] = times
            times_pad[index, length:] = times[-1]
            src_pad[index, :length] = src_rows
            valid[index, :length] = True
            base_tx[index], base_rx[index] = engines[trial]._base_counts()
        found = _first_crossings(
            times_pad, src_pad, valid, tx_ind, rx_ind, base_tx, base_rx, scan_rows,
            first._attempts, first._tx_energy, first._rx_energy, first._idle_power,
            battery_capacity_j,
        )
        for index, trial in enumerate(order):
            times, sources, src_rows = chunks[trial]
            engine = engines[trial]
            crossing = None if found[index] < 0 else int(found[index])
            stop = len(times) if crossing is None else crossing
            if stop > 0:
                engine._fast_forward(times[:stop], src_rows[:stop], model)
                end_times[trial] = float(times[stop - 1])
            if crossing is None:
                continue
            end_times[trial] = float(times[crossing])
            simulators[trial]._account_report(end_times[trial], int(sources[crossing]))
            if simulators[trial]._first_death is None:
                # defensive: a scanned crossing always kills a node in replay,
                # but if it ever did not, consume the rest of the chunk with
                # the single-trial engine and keep the trial live
                last_time, finished = engine._consume(
                    times[crossing + 1 :],
                    sources[crossing + 1 :],
                    src_rows[crossing + 1 :],
                    stop_at_first_death=True,
                )
                if last_time is not None:
                    end_times[trial] = last_time
                if not finished:
                    continue
            finalize(trial)
            live.remove(trial)
