"""Analytical deployment-lifetime estimation.

A fast closed-form cross-check of the event-driven simulator: given the
per-packet energy costs, the traffic pattern and the routing tree, the
average power of each node is

``P_node = P_idle + (E_tx * tx_rate) + (E_rx * rx_rate)``

where the transmit/receive rates follow from the node's own reports plus the
traffic it forwards for its subtree.  The node lifetime is then simply the
battery capacity divided by that average power, and the deployment lifetime
is the minimum over the sensor nodes (usually a bottleneck node next to the
sink).

:func:`lifetime_by_platform` runs this estimate for a set of hardware
platforms that differ only in their signal-processing energy — the bridge
between the paper's per-estimation energy numbers and the sensor-network
motivation of its introduction (experiment E9).  By default it evaluates
every platform and every node in one NumPy broadcast
(``platforms x nodes``); ``batch=False`` selects the per-node scalar loop of
:func:`analytical_node_lifetime`, which is kept as the executable
specification — both paths produce identical floats.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.routing import RoutingTable
from repro.network.traffic import PeriodicTraffic
from repro.utils.validation import check_positive

__all__ = [
    "NodeLifetimeEstimate",
    "analytical_node_lifetime",
    "lifetime_by_platform",
    "subtree_sizes",
]


@dataclass(frozen=True)
class NodeLifetimeEstimate:
    """Average power and lifetime of one node."""

    node_id: int
    average_power_w: float
    lifetime_s: float
    transmissions_per_interval: float
    receptions_per_interval: float


def subtree_sizes(routing: RoutingTable) -> dict[int, int]:
    """Number of source nodes whose traffic passes through (or originates at) each node.

    This is the routing-subtree size that drives both the analytical model
    below and the batched simulation engine's charge model: per report
    interval a node transmits ``subtree_size`` packets and receives
    ``subtree_size - 1``.
    """
    tree = nx.DiGraph()
    for node, hop in routing.next_hop.items():
        if node != routing.sink_id:
            tree.add_edge(node, hop)
    sizes: dict[int, int] = {}
    for node in routing.next_hop:
        if node == routing.sink_id:
            continue
        # every node on this node's path to the sink carries its traffic
        for carrier in routing.route(node)[:-1]:
            sizes[carrier] = sizes.get(carrier, 0) + 1
    return sizes


#: Backwards-compatible alias (pre-PR-3 private name).
_subtree_sizes = subtree_sizes


def analytical_node_lifetime(
    routing: RoutingTable,
    energy_budget: ModemEnergyBudget,
    traffic: PeriodicTraffic,
    battery_capacity_j: float,
    mac_transmissions_per_packet: float = 1.0,
) -> dict[int, NodeLifetimeEstimate]:
    """Closed-form lifetime estimate for every sensor node.

    Parameters
    ----------
    routing:
        The static routing tree.
    energy_budget:
        Per-packet modem energy model.
    traffic:
        Periodic traffic pattern (every source generates one packet per interval).
    battery_capacity_j:
        Usable battery energy per node.
    mac_transmissions_per_packet:
        Expected transmissions per delivered packet (1.0 for TDMA, ``e^G``-ish
        for ALOHA).
    """
    check_positive("battery_capacity_j", battery_capacity_j)
    check_positive("mac_transmissions_per_packet", mac_transmissions_per_packet)

    symbols = traffic.packet_symbols
    interval = traffic.report_interval_s
    tx_energy = energy_budget.transmit_energy_j(symbols) * mac_transmissions_per_packet
    rx_breakdown = energy_budget.receive_energy_j(symbols)
    rx_energy = rx_breakdown.total_j * mac_transmissions_per_packet
    idle_power = energy_budget.idle_power_w()

    carried = subtree_sizes(routing)
    estimates: dict[int, NodeLifetimeEstimate] = {}
    for node in routing.next_hop:
        if node == routing.sink_id:
            continue
        # packets transmitted per interval = own packet + packets forwarded
        transmitted = float(carried.get(node, 1))
        # packets received per interval = packets forwarded (traffic from children)
        received = transmitted - 1.0
        average_power = (
            idle_power
            + transmitted * tx_energy / interval
            + received * rx_energy / interval
        )
        lifetime = battery_capacity_j / average_power if average_power > 0 else float("inf")
        estimates[node] = NodeLifetimeEstimate(
            node_id=node,
            average_power_w=average_power,
            lifetime_s=lifetime,
            transmissions_per_interval=transmitted,
            receptions_per_interval=received,
        )
    return estimates


def _platform_budget(
    base: ModemEnergyBudget,
    processing_energy_j: float,
    platform_idle_power_w: dict[str, float] | None,
    label: str,
) -> ModemEnergyBudget:
    idle = (
        platform_idle_power_w.get(label, base.processing_idle_power_w)
        if platform_idle_power_w
        else base.processing_idle_power_w
    )
    return ModemEnergyBudget(
        config=base.config,
        transmit_power_w=base.transmit_power_w,
        receive_frontend_power_w=base.receive_frontend_power_w,
        processing_energy_per_estimation_j=processing_energy_j,
        processing_idle_power_w=idle,
        estimations_per_symbol=base.estimations_per_symbol,
    )


def lifetime_by_platform(
    routing: RoutingTable,
    traffic: PeriodicTraffic,
    battery_capacity_j: float,
    platform_processing_energy_j: dict[str, float],
    platform_idle_power_w: dict[str, float] | None = None,
    base_budget: ModemEnergyBudget | None = None,
    batch: bool = True,
) -> dict[str, float]:
    """Deployment lifetime (seconds) for each candidate processing platform.

    Parameters
    ----------
    routing, traffic, battery_capacity_j:
        Network configuration shared by all platforms.
    platform_processing_energy_j:
        Mapping from platform label to its energy per channel estimation
        (e.g. the Table 3 values converted to joules).
    platform_idle_power_w:
        Optional per-platform idle power of the processing hardware.
    base_budget:
        Template for the non-processing parameters (transmit power, front end);
        defaults to :class:`ModemEnergyBudget`'s defaults.
    batch:
        Evaluate all platforms and nodes in one NumPy broadcast (default);
        ``False`` runs the scalar per-node loop.  The floats are identical.
    """
    if not platform_processing_energy_j:
        raise ValueError("at least one platform must be given")
    base = base_budget if base_budget is not None else ModemEnergyBudget()

    if not batch:
        results: dict[str, float] = {}
        for label, processing_energy in platform_processing_energy_j.items():
            budget = _platform_budget(base, processing_energy, platform_idle_power_w, label)
            estimates = analytical_node_lifetime(routing, budget, traffic, battery_capacity_j)
            results[label] = min(e.lifetime_s for e in estimates.values())
        return results

    check_positive("battery_capacity_j", battery_capacity_j)
    symbols = traffic.packet_symbols
    interval = traffic.report_interval_s
    carried = subtree_sizes(routing)
    sensors = [node for node in routing.next_hop if node != routing.sink_id]
    transmitted = np.asarray([float(carried.get(node, 1)) for node in sensors])
    received = transmitted - 1.0

    labels = list(platform_processing_energy_j)
    tx_energy = np.empty(len(labels))
    rx_energy = np.empty(len(labels))
    idle_power = np.empty(len(labels))
    for index, label in enumerate(labels):
        budget = _platform_budget(
            base, platform_processing_energy_j[label], platform_idle_power_w, label
        )
        # * 1.0 keeps the expression identical to analytical_node_lifetime's
        # mac_transmissions_per_packet scaling
        tx_energy[index] = budget.transmit_energy_j(symbols) * 1.0
        rx_energy[index] = budget.receive_energy_j(symbols).total_j * 1.0
        idle_power[index] = budget.idle_power_w()

    # (platforms x nodes) broadcast of the scalar expression, term for term
    power = (
        idle_power[:, np.newaxis]
        + transmitted[np.newaxis, :] * tx_energy[:, np.newaxis] / interval
        + received[np.newaxis, :] * rx_energy[:, np.newaxis] / interval
    )
    with np.errstate(divide="ignore"):
        lifetime = np.where(power > 0, battery_capacity_j / power, np.inf)
    return {label: float(np.min(lifetime[index])) for index, label in enumerate(labels)}
