"""A minimal discrete-event scheduler.

The network simulator schedules packet generation, transmission and reception
events on a priority queue keyed by simulation time.  Ties are broken by a
monotonically increasing sequence number so event ordering is deterministic,
which keeps the whole network simulation reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.utils.validation import check_non_negative

__all__ = ["Event", "EventQueue", "Scheduler"]


@dataclass(order=True)
class Event:
    """One scheduled event.

    Events order by ``(time, sequence)``; the payload and callback do not
    participate in the ordering.
    """

    time: float
    sequence: int
    callback: Callable[["Scheduler", Any], None] = field(compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it is popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable, payload: Any = None) -> Event:
        """Add an event at ``time``; returns the event (for cancellation)."""
        check_non_negative("time", time)
        event = Event(time=time, sequence=next(self._counter), callback=callback, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next non-cancelled event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0


class Scheduler:
    """Drives an :class:`EventQueue` forward in time."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.events_processed: int = 0

    def schedule_at(self, time: float, callback: Callable, payload: Any = None) -> Event:
        """Schedule an event at an absolute time (must not be in the past)."""
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time} before current time {self.now}")
        return self.queue.push(time, callback, payload)

    def schedule_after(self, delay: float, callback: Callable, payload: Any = None) -> Event:
        """Schedule an event ``delay`` seconds from now."""
        check_non_negative("delay", delay)
        return self.queue.push(self.now + delay, callback, payload)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would be after this time (the clock is
            advanced to ``until``).
        max_events:
            Safety limit on the number of events processed.
        """
        while self.queue:
            if max_events is not None and self.events_processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return
            event = self.queue.pop()
            if event is None:
                break
            self.now = event.time
            self.events_processed += 1
            event.callback(self, event.payload)
        if until is not None and self.now < until:
            self.now = until
