"""Static shortest-path routing toward the sink.

Routing protocols are out of scope for the paper (they live in the layers
above the modem, Figure 1), so a simple static scheme is sufficient: every
node forwards toward the sink along the minimum-total-distance path computed
once over the connectivity graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

__all__ = ["RoutingTable", "shortest_path_routing"]


@dataclass(frozen=True)
class RoutingTable:
    """Next-hop table toward a single sink.

    Attributes
    ----------
    sink_id:
        Destination of every route.
    next_hop:
        Mapping from node id to the neighbour it forwards to (the sink maps to
        itself).
    paths:
        Full node-id path from each node to the sink (inclusive).
    """

    sink_id: int
    next_hop: dict[int, int]
    paths: dict[int, list[int]]

    def hops(self, node_id: int) -> int:
        """Number of transmissions needed to move a packet from ``node_id`` to the sink."""
        return len(self.paths[node_id]) - 1

    def route(self, node_id: int) -> list[int]:
        """The full path from ``node_id`` to the sink."""
        return list(self.paths[node_id])

    @property
    def max_hops(self) -> int:
        """Depth of the routing tree."""
        return max(self.hops(n) for n in self.paths)


def shortest_path_routing(graph: nx.Graph, sink_id: int) -> RoutingTable:
    """Compute minimum-distance routes from every node to the sink.

    Uses Dijkstra over the distance-weighted connectivity graph.
    """
    if sink_id not in graph:
        raise ValueError(f"sink id {sink_id} is not a node of the graph")
    paths = nx.shortest_path(graph, target=sink_id, weight="weight")
    next_hop: dict[int, int] = {}
    full_paths: dict[int, list[int]] = {}
    for node, path in paths.items():
        full_paths[node] = list(path)
        next_hop[node] = path[1] if len(path) > 1 else sink_id
    missing = set(graph.nodes) - set(full_paths)
    if missing:
        raise ValueError(f"nodes {sorted(missing)} have no route to the sink")
    return RoutingTable(sink_id=sink_id, next_hop=next_hop, paths=full_paths)
