"""Routing and forwarding protocols toward the sink.

Routing protocols are out of scope for the paper (they live in the layers
above the modem, Figure 1), so a simple static scheme is sufficient: every
node forwards toward the sink along the minimum-total-distance path computed
once over the connectivity graph.

Two *protocol models* select how a generated report travels:

* :class:`RoutedForwarding` — hop-by-hop unicast along the shortest-path tree
  (the default, and the only mode prior to the contention layer);
* :class:`TtlFlooding` — TTL-bounded broadcast flooding: every node that
  first hears a packet rebroadcasts it once (while the TTL allows), every
  in-range neighbour pays reception energy, and delivery means the sink heard
  any copy.  Flooding needs no routing state, so it keeps working on
  partitioned/mobile topologies where unicast routes do not exist.

:func:`flood_packet` is the executable specification of one flood — the
event-loop simulator charges energy from its broadcast list, and the batched
engine reproduces the identical outcome vectorised over whole event chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx

from repro.utils.validation import check_integer

__all__ = [
    "RoutingTable",
    "RoutedForwarding",
    "TtlFlooding",
    "flood_packet",
    "shortest_path_routing",
]


@dataclass(frozen=True)
class RoutingTable:
    """Next-hop table toward a single sink.

    Attributes
    ----------
    sink_id:
        Destination of every route.
    next_hop:
        Mapping from node id to the neighbour it forwards to (the sink maps to
        itself).
    paths:
        Full node-id path from each node to the sink (inclusive).  Built with
        ``allow_partial=True``, nodes without a path to the sink are simply
        absent (check :meth:`has_route` before :meth:`route`).
    """

    sink_id: int
    next_hop: dict[int, int]
    paths: dict[int, list[int]]

    def has_route(self, node_id: int) -> bool:
        """Whether ``node_id`` has a path to the sink in this table."""
        return node_id in self.paths

    def hops(self, node_id: int) -> int:
        """Number of transmissions needed to move a packet from ``node_id`` to the sink."""
        return len(self.paths[node_id]) - 1

    def route(self, node_id: int) -> list[int]:
        """The full path from ``node_id`` to the sink."""
        return list(self.paths[node_id])

    @property
    def max_hops(self) -> int:
        """Depth of the routing tree."""
        return max(self.hops(n) for n in self.paths)


@dataclass(frozen=True)
class RoutedForwarding:
    """Hop-by-hop unicast along the shortest-path routing tree (the default)."""

    name: str = "routed"


@dataclass(frozen=True)
class TtlFlooding:
    """TTL-bounded broadcast flooding.

    Parameters
    ----------
    ttl:
        Maximum number of hops a packet may travel from its source; the
        source's own broadcast consumes the first hop.
    """

    ttl: int = 4
    name: str = "flooding"

    def __post_init__(self) -> None:
        check_integer("ttl", self.ttl, minimum=1)


def flood_packet(
    adjacency: dict[int, list[int]],
    alive: Callable[[int], bool],
    source: int,
    sink: int,
    ttl: int,
    edge_success: Callable[[int, int], bool],
) -> tuple[list[tuple[int, list[int]]], bool]:
    """One level-synchronous TTL flood; the executable flooding specification.

    Nodes that first heard the packet at hop ``k`` rebroadcast (once) at hop
    ``k + 1`` while ``k + 1 <= ttl``; the sink never rebroadcasts.  Every
    broadcast is heard — and paid for — by every *alive* neighbour of the
    broadcaster, whether or not the copy decodes (``edge_success``) or the
    neighbour already held the packet; only successfully decoded first copies
    propagate.  All alive/success decisions are evaluated against the state
    at the start of the event, which makes the outcome independent of
    per-broadcast ordering (the property the batched engine relies on).

    Returns the ordered broadcast list ``[(sender, alive receivers), ...]``
    and whether the sink heard a decodable copy.
    """
    heard = {source}
    frontier = [source]
    broadcasts: list[tuple[int, list[int]]] = []
    for _ in range(ttl):
        next_frontier: list[int] = []
        for sender in frontier:
            if sender == sink or not alive(sender):
                continue
            receivers = [n for n in adjacency.get(sender, ()) if alive(n)]
            broadcasts.append((sender, receivers))
            for receiver in receivers:
                if receiver not in heard and edge_success(sender, receiver):
                    heard.add(receiver)
                    next_frontier.append(receiver)
        frontier = sorted(next_frontier)
        if not frontier:
            break
    return broadcasts, sink in heard


def shortest_path_routing(
    graph: nx.Graph, sink_id: int, allow_partial: bool = False
) -> RoutingTable:
    """Compute minimum-distance routes from every node to the sink.

    Uses Dijkstra over the distance-weighted connectivity graph.  With
    ``allow_partial=True`` nodes with no path to the sink are left out of the
    table (mobile topologies partition routinely) instead of raising.
    """
    if sink_id not in graph:
        raise ValueError(f"sink id {sink_id} is not a node of the graph")
    paths = nx.shortest_path(graph, target=sink_id, weight="weight")
    next_hop: dict[int, int] = {}
    full_paths: dict[int, list[int]] = {}
    for node, path in paths.items():
        full_paths[node] = list(path)
        next_hop[node] = path[1] if len(path) > 1 else sink_id
    missing = set(graph.nodes) - set(full_paths)
    if missing and not allow_partial:
        raise ValueError(f"nodes {sorted(missing)} have no route to the sink")
    return RoutingTable(sink_id=sink_id, next_hop=next_hop, paths=full_paths)
