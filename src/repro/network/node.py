"""Sensor nodes and their energy accounting.

Each node owns a battery (a finite energy store), a modem energy budget
(:class:`repro.modem.energy_budget.ModemEnergyBudget`) and counters that
attribute every joule drawn to transmit, receive-front-end, signal-processing
or idle consumption — which is exactly the attribution the platform-choice
argument of the paper needs.

Accounting is *closed form*: a node tracks integer charge counts (how many
packet transmissions and receptions it has been billed, per packet length)
plus the absolute time it has spent idle listening, and derives its energy
report and battery state as ``count * per_packet_energy + idle_power * time``
whenever they are read.  Deriving energy from counts instead of accumulating
floats charge-by-charge makes the event-driven simulator and the vectorised
:class:`repro.network.batch.BatchNetworkEngine` produce bit-identical
energies, battery levels and death decisions — the foundation of the
seed-locked equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.modem.energy_budget import ModemEnergyBudget, PacketEnergyBreakdown
from repro.utils.validation import check_integer, check_non_negative, check_positive

__all__ = ["Battery", "NodeEnergyReport", "SensorNode"]


@dataclass
class Battery:
    """A finite energy store.

    Parameters
    ----------
    capacity_j:
        Total usable energy in joules.
    """

    capacity_j: float

    def __post_init__(self) -> None:
        check_positive("capacity_j", self.capacity_j)
        self.remaining_j: float = self.capacity_j

    def draw(self, energy_j: float) -> float:
        """Draw energy; returns the amount actually supplied (clipped at empty)."""
        check_non_negative("energy_j", energy_j)
        supplied = min(energy_j, self.remaining_j)
        self.remaining_j -= supplied
        return supplied

    @property
    def is_empty(self) -> bool:
        """True once the battery can no longer supply energy."""
        return self.remaining_j <= 0.0

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction of the original capacity (0..1)."""
        return self.remaining_j / self.capacity_j


@dataclass
class NodeEnergyReport:
    """Cumulative per-component energy drawn by one node (joules)."""

    transmit_j: float = 0.0
    receive_frontend_j: float = 0.0
    processing_j: float = 0.0
    idle_j: float = 0.0

    @property
    def total_j(self) -> float:
        """Total energy drawn."""
        return self.transmit_j + self.receive_frontend_j + self.processing_j + self.idle_j

    def fraction(self, component: str) -> float:
        """Share of the total drawn by one component ('transmit', 'processing', ...)."""
        total = self.total_j
        if total == 0.0:
            return 0.0
        value = getattr(self, f"{component}_j")
        return value / total


@dataclass
class SensorNode:
    """One node of the underwater sensor network.

    Parameters
    ----------
    node_id:
        Unique integer identifier (0 is conventionally the sink).
    position:
        (x, y) coordinates in metres.
    battery:
        The node's energy store.
    energy_budget:
        The modem energy model used to price packet transactions.  The
        per-packet prices are cached per packet length at first use, so the
        budget's parameters must not be mutated after accounting starts.
    is_sink:
        Sinks are externally powered: they account energy but never die.
    """

    node_id: int
    position: tuple[float, float]
    battery: Battery
    energy_budget: ModemEnergyBudget
    is_sink: bool = False
    packets_sent: int = 0
    packets_received: int = 0
    packets_forwarded: int = 0
    #: packets this node abandoned after exhausting its contention-MAC retries
    #: (stays 0 for the expected-multiplier MACs and for flooding, which does
    #: not retransmit)
    packets_dropped: int = 0
    last_accounted_time: float = 0.0

    def __post_init__(self) -> None:
        # charge counts per packet length (symbols); insertion-ordered so the
        # closed-form sums below are deterministic
        self._tx_charges: dict[int, int] = {}
        self._rx_charges: dict[int, int] = {}
        self._manual_idle_s: float = 0.0
        self._price_cache: dict[int, tuple[float, PacketEnergyBreakdown]] = {}
        # a battery handed over partially drained keeps that deficit; after
        # construction the node's accounting owns the battery state (direct
        # Battery.draw calls are overwritten by the next closed-form refresh)
        self._predrained_j: float = self.battery.capacity_j - self.battery.remaining_j

    # ------------------------------------------------------------------ #
    @property
    def is_alive(self) -> bool:
        """Sinks never die; other nodes die when their battery empties."""
        return self.is_sink or not self.battery.is_empty

    @property
    def idle_seconds(self) -> float:
        """Total idle-listening time billed so far (seconds)."""
        return self._manual_idle_s + self.last_accounted_time

    def packet_prices(self, num_symbols: int) -> tuple[float, PacketEnergyBreakdown]:
        """(transmit energy, receive breakdown) for one packet of ``num_symbols``."""
        cached = self._price_cache.get(num_symbols)
        if cached is None:
            cached = (
                self.energy_budget.transmit_energy_j(num_symbols),
                self.energy_budget.receive_energy_j(num_symbols),
            )
            self._price_cache[num_symbols] = cached
        return cached

    def charge_counts(self, num_symbols: int) -> tuple[int, int]:
        """(transmit, receive) charge counts billed so far for ``num_symbols``."""
        return self._tx_charges.get(num_symbols, 0), self._rx_charges.get(num_symbols, 0)

    @property
    def demanded_j(self) -> float:
        """Total energy demanded from the battery so far (closed form).

        The batched engine evaluates the identical expression
        ``tx_count * tx_energy + rx_count * rx_energy + idle_power * idle_s``
        as array ops, so both engines agree bit-for-bit on battery state.
        """
        demanded = 0.0
        for num_symbols, count in self._tx_charges.items():
            demanded += count * self.packet_prices(num_symbols)[0]
        for num_symbols, count in self._rx_charges.items():
            demanded += count * self.packet_prices(num_symbols)[1].total_j
        demanded += self.energy_budget.idle_power_w() * self.idle_seconds
        return demanded

    @property
    def report(self) -> NodeEnergyReport:
        """Per-component energy attribution derived from the charge counts."""
        transmit = 0.0
        receive_frontend = 0.0
        processing = 0.0
        for num_symbols, count in self._tx_charges.items():
            transmit += count * self.packet_prices(num_symbols)[0]
        for num_symbols, count in self._rx_charges.items():
            breakdown = self.packet_prices(num_symbols)[1]
            receive_frontend += count * breakdown.receive_frontend_j
            processing += count * breakdown.processing_j
        idle = self.energy_budget.idle_power_w() * self.idle_seconds
        return NodeEnergyReport(
            transmit_j=transmit,
            receive_frontend_j=receive_frontend,
            processing_j=processing,
            idle_j=idle,
        )

    def _refresh_battery(self) -> None:
        """Re-derive the battery level from the demanded total (sinks never drain)."""
        if self.is_sink:
            return
        usable = self.battery.capacity_j - self._predrained_j
        self.battery.remaining_j = max(0.0, usable - self.demanded_j)

    # ------------------------------------------------------------------ #
    def account_transmit(self, num_symbols: int) -> None:
        """Charge the node for transmitting one packet."""
        check_integer("num_symbols", num_symbols, minimum=1)
        self._tx_charges[num_symbols] = self._tx_charges.get(num_symbols, 0) + 1
        self.packets_sent += 1
        self._refresh_battery()

    def account_receive(self, num_symbols: int, forwarded: bool = False) -> None:
        """Charge the node for receiving (and processing) one packet."""
        check_integer("num_symbols", num_symbols, minimum=1)
        self._rx_charges[num_symbols] = self._rx_charges.get(num_symbols, 0) + 1
        self.packets_received += 1
        if forwarded:
            self.packets_forwarded += 1
        self._refresh_battery()

    def account_idle(self, duration_s: float) -> None:
        """Charge the node for ``duration_s`` of idle listening."""
        check_non_negative("duration_s", duration_s)
        self._manual_idle_s += duration_s
        self._refresh_battery()

    def advance_time(self, now_s: float) -> None:
        """Accrue idle energy up to the absolute instant ``now_s``."""
        if now_s < self.last_accounted_time:
            raise ValueError(
                f"time moved backwards: {now_s} < {self.last_accounted_time}"
            )
        self.last_accounted_time = now_s
        self._refresh_battery()

    def apply_charges(
        self,
        num_symbols: int,
        transmit: int = 0,
        receive: int = 0,
        forwarded: int = 0,
        now_s: float | None = None,
    ) -> None:
        """Bulk equivalent of repeated ``account_*`` calls plus ``advance_time``.

        Used by the batched engine to fast-forward a node through a span of
        fully-delivered report events in one call; because the report and
        battery are closed forms over the counts, the resulting state is
        bit-identical to issuing the individual calls.
        """
        check_integer("transmit", transmit, minimum=0)
        check_integer("receive", receive, minimum=0)
        check_integer("forwarded", forwarded, minimum=0)
        if transmit or receive:
            check_integer("num_symbols", num_symbols, minimum=1)
        if transmit:
            self._tx_charges[num_symbols] = self._tx_charges.get(num_symbols, 0) + transmit
            self.packets_sent += transmit
        if receive:
            self._rx_charges[num_symbols] = self._rx_charges.get(num_symbols, 0) + receive
            self.packets_received += receive
            self.packets_forwarded += forwarded
        if now_s is not None:
            if now_s < self.last_accounted_time:
                raise ValueError(
                    f"time moved backwards: {now_s} < {self.last_accounted_time}"
                )
            self.last_accounted_time = now_s
        self._refresh_battery()
