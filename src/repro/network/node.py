"""Sensor nodes and their energy accounting.

Each node owns a battery (a finite energy store), a modem energy budget
(:class:`repro.modem.energy_budget.ModemEnergyBudget`) and counters that
attribute every joule drawn to transmit, receive-front-end, signal-processing
or idle consumption — which is exactly the attribution the platform-choice
argument of the paper needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.modem.energy_budget import ModemEnergyBudget, PacketEnergyBreakdown
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["Battery", "NodeEnergyReport", "SensorNode"]


@dataclass
class Battery:
    """A finite energy store.

    Parameters
    ----------
    capacity_j:
        Total usable energy in joules.
    """

    capacity_j: float

    def __post_init__(self) -> None:
        check_positive("capacity_j", self.capacity_j)
        self.remaining_j: float = self.capacity_j

    def draw(self, energy_j: float) -> float:
        """Draw energy; returns the amount actually supplied (clipped at empty)."""
        check_non_negative("energy_j", energy_j)
        supplied = min(energy_j, self.remaining_j)
        self.remaining_j -= supplied
        return supplied

    @property
    def is_empty(self) -> bool:
        """True once the battery can no longer supply energy."""
        return self.remaining_j <= 0.0

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction of the original capacity (0..1)."""
        return self.remaining_j / self.capacity_j


@dataclass
class NodeEnergyReport:
    """Cumulative per-component energy drawn by one node (joules)."""

    transmit_j: float = 0.0
    receive_frontend_j: float = 0.0
    processing_j: float = 0.0
    idle_j: float = 0.0

    @property
    def total_j(self) -> float:
        """Total energy drawn."""
        return self.transmit_j + self.receive_frontend_j + self.processing_j + self.idle_j

    def fraction(self, component: str) -> float:
        """Share of the total drawn by one component ('transmit', 'processing', ...)."""
        total = self.total_j
        if total == 0.0:
            return 0.0
        value = getattr(self, f"{component}_j")
        return value / total


@dataclass
class SensorNode:
    """One node of the underwater sensor network.

    Parameters
    ----------
    node_id:
        Unique integer identifier (0 is conventionally the sink).
    position:
        (x, y) coordinates in metres.
    battery:
        The node's energy store.
    energy_budget:
        The modem energy model used to price packet transactions.
    is_sink:
        Sinks are externally powered: they account energy but never die.
    """

    node_id: int
    position: tuple[float, float]
    battery: Battery
    energy_budget: ModemEnergyBudget
    is_sink: bool = False
    report: NodeEnergyReport = field(default_factory=NodeEnergyReport)
    packets_sent: int = 0
    packets_received: int = 0
    packets_forwarded: int = 0
    last_accounted_time: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def is_alive(self) -> bool:
        """Sinks never die; other nodes die when their battery empties."""
        return self.is_sink or not self.battery.is_empty

    def _draw(self, breakdown: PacketEnergyBreakdown) -> None:
        total = breakdown.total_j
        if not self.is_sink:
            self.battery.draw(total)
        self.report.transmit_j += breakdown.transmit_j
        self.report.receive_frontend_j += breakdown.receive_frontend_j
        self.report.processing_j += breakdown.processing_j

    # ------------------------------------------------------------------ #
    def account_transmit(self, num_symbols: int) -> None:
        """Charge the node for transmitting one packet."""
        breakdown = self.energy_budget.packet_transaction_energy_j(
            num_symbols, transmit=True, receive=False
        )
        self._draw(breakdown)
        self.packets_sent += 1

    def account_receive(self, num_symbols: int, forwarded: bool = False) -> None:
        """Charge the node for receiving (and processing) one packet."""
        breakdown = self.energy_budget.packet_transaction_energy_j(
            num_symbols, transmit=False, receive=True
        )
        self._draw(breakdown)
        self.packets_received += 1
        if forwarded:
            self.packets_forwarded += 1

    def account_idle(self, duration_s: float) -> None:
        """Charge the node for ``duration_s`` of idle listening."""
        check_non_negative("duration_s", duration_s)
        energy = self.energy_budget.idle_power_w() * duration_s
        if not self.is_sink:
            self.battery.draw(energy)
        self.report.idle_j += energy

    def advance_time(self, now_s: float) -> None:
        """Accrue idle energy for the interval since the last accounting instant."""
        if now_s < self.last_accounted_time:
            raise ValueError(
                f"time moved backwards: {now_s} < {self.last_accounted_time}"
            )
        self.account_idle(now_s - self.last_accounted_time)
        self.last_accounted_time = now_s
