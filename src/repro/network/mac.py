"""Medium-access control models: TDMA, slotted ALOHA and contention CSMA.

The MAC layer sits above the modem (Figure 1) and determines how often a
packet must be retransmitted — which multiplies the per-packet energy.  Three
models bracket the design space:

* **TDMA** — every node owns a slot; transmissions never collide, but a node
  must wait for its slot (latency, not energy, is affected).
* **Slotted ALOHA** — nodes transmit in a random slot; collisions force
  retransmissions.  The expected number of attempts per delivered packet is
  ``exp(G)`` for offered load ``G`` per slot (the classical result), which the
  simulator uses as an energy multiplier.
* **CSMA with capture** (:class:`CsmaMac`) — the contention-*realistic*
  model: each transmission attempt succeeds with a probability that falls
  with the receiver's neighbour count (more contenders, more collisions) and
  the simulator draws that outcome per packet per hop, retrying up to
  ``max_attempts`` before dropping the packet.  Unlike the expected-value
  models above, collisions here actually lose packets, so delivery ratio
  degrades with deployment density.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import (
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = ["TDMASchedule", "SlottedAloha", "CsmaMac"]


@dataclass(frozen=True)
class TDMASchedule:
    """A fixed TDMA schedule.

    Parameters
    ----------
    num_nodes:
        Number of transmitting nodes sharing the frame.
    slot_duration_s:
        Length of one slot; must be at least one packet airtime.
    """

    num_nodes: int
    slot_duration_s: float

    def __post_init__(self) -> None:
        check_integer("num_nodes", self.num_nodes, minimum=1)
        check_positive("slot_duration_s", self.slot_duration_s)

    @property
    def frame_duration_s(self) -> float:
        """One full TDMA frame (every node gets one slot)."""
        return self.num_nodes * self.slot_duration_s

    def slot_start(self, node_index: int, frame_index: int = 0) -> float:
        """Absolute start time of ``node_index``'s slot in ``frame_index``."""
        check_integer("node_index", node_index, minimum=0, maximum=self.num_nodes - 1)
        check_integer("frame_index", frame_index, minimum=0)
        return frame_index * self.frame_duration_s + node_index * self.slot_duration_s

    def expected_transmissions_per_packet(self) -> float:
        """TDMA never collides, so exactly one transmission per packet."""
        return 1.0

    def wait_time_s(
        self, node_index: int, ready_time_s: float, airtime_s: float = 0.0
    ) -> float:
        """Time a packet ready at ``ready_time_s`` waits before it can transmit.

        The transmission occupies ``[start, start + airtime_s)`` and must fit
        entirely inside one of the owner's slots.  A packet ready mid-slot
        transmits immediately only when the remaining slot residue still fits
        one packet airtime; otherwise it rolls to the owner's slot in the next
        frame.  A packet ready exactly at its slot start waits zero; one ready
        exactly at its slot end has no residue left and always rolls over.
        """
        check_non_negative("ready_time_s", ready_time_s)
        check_non_negative("airtime_s", airtime_s)
        if airtime_s > self.slot_duration_s:
            raise ValueError(
                f"airtime_s must be <= slot_duration_s ({self.slot_duration_s}), "
                f"got {airtime_s}"
            )
        frame = int(ready_time_s // self.frame_duration_s)
        slot = self.slot_start(node_index, frame)
        slot_end = slot + self.slot_duration_s
        if slot <= ready_time_s:
            if ready_time_s < slot_end and ready_time_s + airtime_s <= slot_end:
                return 0.0
            slot = self.slot_start(node_index, frame + 1)
        return slot - ready_time_s


@dataclass(frozen=True)
class SlottedAloha:
    """Slotted-ALOHA contention model.

    Parameters
    ----------
    offered_load:
        Average number of packets offered to the channel per slot (G).
    max_attempts:
        Retransmission cap per packet.
    """

    offered_load: float
    max_attempts: int = 10

    def __post_init__(self) -> None:
        check_non_negative("offered_load", self.offered_load)
        check_integer("max_attempts", self.max_attempts, minimum=1)

    @property
    def success_probability(self) -> float:
        """Probability a given slot's transmission does not collide (e^-G)."""
        return math.exp(-self.offered_load)

    @property
    def throughput(self) -> float:
        """Classical slotted-ALOHA throughput ``G e^-G`` (packets per slot)."""
        return self.offered_load * self.success_probability

    def expected_transmissions_per_packet(self) -> float:
        """Expected attempts until success, truncated at ``max_attempts``.

        For success probability p the untruncated expectation is 1/p; the
        truncated value is ``sum_{k=1..N} k p (1-p)^{k-1} + N (1-p)^N``.
        """
        p = self.success_probability
        if p >= 1.0:
            return 1.0
        n = self.max_attempts
        expected = sum(k * p * (1 - p) ** (k - 1) for k in range(1, n + 1))
        expected += n * (1 - p) ** n
        return expected

    def delivery_probability(self) -> float:
        """Probability a packet is delivered within ``max_attempts`` tries."""
        p = self.success_probability
        return 1.0 - (1.0 - p) ** self.max_attempts


@dataclass(frozen=True)
class CsmaMac:
    """CSMA-style contention with capture and bounded retries.

    A transmission attempt on the link toward a receiver with ``c`` other
    in-range neighbours finds the channel clear with probability
    ``(1 - channel_load) ** c`` (each contender independently occupies the
    channel with probability ``channel_load``); a collided attempt may still
    be decoded with ``capture_probability`` (near-far capture).  The simulator
    draws each attempt's outcome per packet and retries a failed hop up to
    ``max_attempts`` times before dropping the packet — so, unlike
    :class:`SlottedAloha`'s expected-energy multiplier, contention here
    actually loses packets and couples delivery ratio to deployment density.

    Parameters
    ----------
    channel_load:
        Probability that one contending neighbour occupies the channel during
        an attempt window.
    max_attempts:
        Attempts per hop before the packet is dropped.
    capture_probability:
        Probability a collided attempt is still decoded.
    """

    channel_load: float = 0.1
    max_attempts: int = 5
    capture_probability: float = 0.0

    def __post_init__(self) -> None:
        check_probability("channel_load", self.channel_load)
        check_integer("max_attempts", self.max_attempts, minimum=1)
        check_probability("capture_probability", self.capture_probability)

    def attempt_success_probability(self, contenders: int) -> float:
        """Per-attempt success probability against ``contenders`` neighbours."""
        check_integer("contenders", contenders, minimum=0)
        clear = (1.0 - self.channel_load) ** contenders
        return clear + (1.0 - clear) * self.capture_probability

    def delivery_probability(self, contenders: int) -> float:
        """Probability one hop succeeds within ``max_attempts`` tries."""
        p = self.attempt_success_probability(contenders)
        return 1.0 - (1.0 - p) ** self.max_attempts

    def expected_transmissions_per_packet(self, contenders: int = 0) -> float:
        """Truncated-geometric expected attempts per hop (same form as ALOHA's)."""
        p = self.attempt_success_probability(contenders)
        if p >= 1.0:
            return 1.0
        n = self.max_attempts
        expected = sum(k * p * (1 - p) ** (k - 1) for k in range(1, n + 1))
        expected += n * (1 - p) ** n
        return expected
