"""Medium-access control models: TDMA and slotted ALOHA.

The MAC layer sits above the modem (Figure 1) and determines how often a
packet must be retransmitted — which multiplies the per-packet energy.  Two
simple models bracket the design space:

* **TDMA** — every node owns a slot; transmissions never collide, but a node
  must wait for its slot (latency, not energy, is affected).
* **Slotted ALOHA** — nodes transmit in a random slot; collisions force
  retransmissions.  The expected number of attempts per delivered packet is
  ``exp(G)`` for offered load ``G`` per slot (the classical result), which the
  simulator uses as an energy multiplier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_integer, check_non_negative, check_positive

__all__ = ["TDMASchedule", "SlottedAloha"]


@dataclass(frozen=True)
class TDMASchedule:
    """A fixed TDMA schedule.

    Parameters
    ----------
    num_nodes:
        Number of transmitting nodes sharing the frame.
    slot_duration_s:
        Length of one slot; must be at least one packet airtime.
    """

    num_nodes: int
    slot_duration_s: float

    def __post_init__(self) -> None:
        check_integer("num_nodes", self.num_nodes, minimum=1)
        check_positive("slot_duration_s", self.slot_duration_s)

    @property
    def frame_duration_s(self) -> float:
        """One full TDMA frame (every node gets one slot)."""
        return self.num_nodes * self.slot_duration_s

    def slot_start(self, node_index: int, frame_index: int = 0) -> float:
        """Absolute start time of ``node_index``'s slot in ``frame_index``."""
        check_integer("node_index", node_index, minimum=0, maximum=self.num_nodes - 1)
        check_integer("frame_index", frame_index, minimum=0)
        return frame_index * self.frame_duration_s + node_index * self.slot_duration_s

    def expected_transmissions_per_packet(self) -> float:
        """TDMA never collides, so exactly one transmission per packet."""
        return 1.0

    def wait_time_s(self, node_index: int, ready_time_s: float) -> float:
        """Time a packet ready at ``ready_time_s`` waits for its owner's next slot."""
        check_non_negative("ready_time_s", ready_time_s)
        frame = int(ready_time_s // self.frame_duration_s)
        slot = self.slot_start(node_index, frame)
        if slot < ready_time_s:
            slot = self.slot_start(node_index, frame + 1)
        return slot - ready_time_s


@dataclass(frozen=True)
class SlottedAloha:
    """Slotted-ALOHA contention model.

    Parameters
    ----------
    offered_load:
        Average number of packets offered to the channel per slot (G).
    max_attempts:
        Retransmission cap per packet.
    """

    offered_load: float
    max_attempts: int = 10

    def __post_init__(self) -> None:
        check_non_negative("offered_load", self.offered_load)
        check_integer("max_attempts", self.max_attempts, minimum=1)

    @property
    def success_probability(self) -> float:
        """Probability a given slot's transmission does not collide (e^-G)."""
        return math.exp(-self.offered_load)

    @property
    def throughput(self) -> float:
        """Classical slotted-ALOHA throughput ``G e^-G`` (packets per slot)."""
        return self.offered_load * self.success_probability

    def expected_transmissions_per_packet(self) -> float:
        """Expected attempts until success, truncated at ``max_attempts``.

        For success probability p the untruncated expectation is 1/p; the
        truncated value is ``sum_{k=1..N} k p (1-p)^{k-1} + N (1-p)^N``.
        """
        p = self.success_probability
        if p >= 1.0:
            return 1.0
        n = self.max_attempts
        expected = sum(k * p * (1 - p) ** (k - 1) for k in range(1, n + 1))
        expected += n * (1 - p) ** n
        return expected

    def delivery_probability(self) -> float:
        """Probability a packet is delivered within ``max_attempts`` tries."""
        p = self.success_probability
        return 1.0 - (1.0 - p) ** self.max_attempts
