"""Underwater sensor-network substrate.

The paper's motivation (Section I) is a small, dense underwater sensor
network — tens to hundreds of nodes, a few hundred metres apart — whose
deployment lifetime is limited by each node's energy budget.  This subpackage
provides the network-level machinery needed to turn the per-estimation energy
numbers of :mod:`repro.hardware` into deployment lifetimes (experiment E9):

* :mod:`repro.network.events` — a minimal discrete-event scheduler;
* :mod:`repro.network.node` — batteries and sensor nodes with per-component
  energy accounting;
* :mod:`repro.network.topology` — grid / random deployments and the
  connectivity graph (networkx) induced by the acoustic range;
* :mod:`repro.network.routing` — static shortest-path routing to the sink,
  plus the protocol models (unicast :class:`RoutedForwarding`, TTL-bounded
  :class:`TtlFlooding`);
* :mod:`repro.network.mac` — TDMA, slotted-ALOHA and contention CSMA
  (:class:`CsmaMac`: per-packet collision draws, bounded retries) models;
* :mod:`repro.network.traffic` — periodic sensing traffic;
* :mod:`repro.network.simulator` — the event-driven network simulator;
* :mod:`repro.network.batch` — the vectorised batch engine (round-based
  NumPy accounting, multi-trial batching; bit-identical to the event loop);
* :mod:`repro.network.lifetime` — analytical lifetime estimation (a fast
  cross-check of the simulator).
"""

from repro.network.batch import BatchNetworkEngine, generate_report_schedule, simulate_network_trials
from repro.network.events import Event, EventQueue, Scheduler
from repro.network.node import Battery, SensorNode, NodeEnergyReport
from repro.network.topology import (
    Deployment,
    LinearMobility,
    grid_deployment,
    random_deployment,
    connectivity_graph,
)
from repro.network.routing import (
    RoutedForwarding,
    RoutingTable,
    TtlFlooding,
    flood_packet,
    shortest_path_routing,
)
from repro.network.mac import TDMASchedule, SlottedAloha, CsmaMac
from repro.network.traffic import PeriodicTraffic
from repro.network.simulator import NetworkSimulator, NetworkSimulationResult
from repro.network.lifetime import analytical_node_lifetime, lifetime_by_platform, subtree_sizes

__all__ = [
    "BatchNetworkEngine",
    "generate_report_schedule",
    "simulate_network_trials",
    "subtree_sizes",
    "Event",
    "EventQueue",
    "Scheduler",
    "Battery",
    "SensorNode",
    "NodeEnergyReport",
    "Deployment",
    "LinearMobility",
    "grid_deployment",
    "random_deployment",
    "connectivity_graph",
    "shortest_path_routing",
    "RoutedForwarding",
    "RoutingTable",
    "TtlFlooding",
    "flood_packet",
    "TDMASchedule",
    "SlottedAloha",
    "CsmaMac",
    "PeriodicTraffic",
    "NetworkSimulator",
    "NetworkSimulationResult",
    "analytical_node_lifetime",
    "lifetime_by_platform",
]
