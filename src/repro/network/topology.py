"""Deployment geometries and acoustic connectivity graphs.

The paper targets deployments of "10s to 100s of nodes spaced a relatively
small distance apart (up to a few hundred meters)".  Two deployment
generators are provided — a regular grid and a uniform random scatter over a
rectangular area — plus the connectivity graph induced by a maximum acoustic
communication range (built with networkx, so routing can reuse its
shortest-path machinery).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_integer, check_positive

__all__ = ["Deployment", "grid_deployment", "random_deployment", "connectivity_graph"]


@dataclass(frozen=True)
class Deployment:
    """A set of node positions plus the designated sink.

    Attributes
    ----------
    positions:
        Mapping from node id to (x, y) position in metres.
    sink_id:
        The node acting as the data sink / gateway.
    """

    positions: dict[int, tuple[float, float]]
    sink_id: int = 0

    def __post_init__(self) -> None:
        if self.sink_id not in self.positions:
            raise ValueError(f"sink id {self.sink_id} is not among the deployed nodes")
        if len(self.positions) < 2:
            raise ValueError("a deployment needs at least two nodes (sink + one sensor)")

    @property
    def num_nodes(self) -> int:
        """Number of deployed nodes, sink included."""
        return len(self.positions)

    def position_array(self) -> tuple[list[int], np.ndarray]:
        """Node ids (in insertion order) and their positions as an (N, 2) array."""
        ids = list(self.positions)
        return ids, np.asarray([self.positions[node_id] for node_id in ids], dtype=np.float64)

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes in metres."""
        xa, ya = self.positions[a]
        xb, yb = self.positions[b]
        return math.hypot(xa - xb, ya - yb)

    def max_pairwise_distance(self) -> float:
        """Largest node-to-node distance (the deployment's diameter)."""
        ids = list(self.positions)
        return max(
            self.distance(a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]
        )


def grid_deployment(
    rows: int,
    cols: int,
    spacing_m: float = 200.0,
    sink_id: int = 0,
) -> Deployment:
    """Regular ``rows x cols`` grid with ``spacing_m`` between neighbours.

    Node ids are assigned row-major starting at 0; the sink defaults to node 0
    (a grid corner).
    """
    check_integer("rows", rows, minimum=1)
    check_integer("cols", cols, minimum=1)
    check_positive("spacing_m", spacing_m)
    if rows * cols < 2:
        raise ValueError("grid must contain at least two nodes")
    positions = {
        r * cols + c: (c * spacing_m, r * spacing_m)
        for r in range(rows)
        for c in range(cols)
    }
    return Deployment(positions=positions, sink_id=sink_id)


def random_deployment(
    num_nodes: int,
    area_m: tuple[float, float] = (1000.0, 1000.0),
    rng: np.random.Generator | int | None = None,
    sink_at_center: bool = True,
) -> Deployment:
    """Uniform random scatter of ``num_nodes`` nodes over a rectangle.

    The sink (node 0) is placed at the centre of the area by default, which is
    the usual gateway placement for a moored buoy.
    """
    check_integer("num_nodes", num_nodes, minimum=2)
    width, height = area_m
    check_positive("area width", width)
    check_positive("area height", height)
    rng = as_rng(rng)
    positions: dict[int, tuple[float, float]] = {}
    start = 0
    if sink_at_center:
        positions[0] = (width / 2.0, height / 2.0)
        start = 1
    for node_id in range(start, num_nodes):
        positions[node_id] = (float(rng.uniform(0, width)), float(rng.uniform(0, height)))
    return Deployment(positions=positions, sink_id=0)


def connectivity_graph(deployment: Deployment, communication_range_m: float) -> nx.Graph:
    """Build the connectivity graph: an edge joins nodes within acoustic range.

    Edge weights carry the inter-node distance (metres), which the routing
    layer uses as its path metric.

    Raises
    ------
    ValueError
        If the resulting graph leaves any node disconnected from the sink —
        an unusable deployment for a data-collection network.
    """
    check_positive("communication_range_m", communication_range_m)
    graph = nx.Graph()
    graph.add_nodes_from(deployment.positions)
    ids, points = deployment.position_array()
    # vectorised candidate selection (squared distances, with a small margin
    # against rounding), then the exact per-pair hypot check so the edge set
    # and weights match the scalar definition bit for bit
    deltas = points[:, np.newaxis, :] - points[np.newaxis, :, :]
    squared = np.einsum("ijk,ijk->ij", deltas, deltas)
    margin = (communication_range_m * (1.0 + 1e-9)) ** 2
    candidates = np.argwhere(np.triu(squared <= margin, k=1))
    for i, j in candidates:
        a, b = ids[i], ids[j]
        distance = deployment.distance(a, b)
        if distance <= communication_range_m:
            graph.add_edge(a, b, weight=distance)
    unreachable = [
        n for n in graph.nodes
        if n != deployment.sink_id and not nx.has_path(graph, n, deployment.sink_id)
    ]
    if unreachable:
        raise ValueError(
            f"nodes {unreachable} cannot reach the sink with range {communication_range_m} m; "
            "increase the range or densify the deployment"
        )
    return graph
