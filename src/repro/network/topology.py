"""Deployment geometries, acoustic connectivity graphs and node mobility.

The paper targets deployments of "10s to 100s of nodes spaced a relatively
small distance apart (up to a few hundred meters)".  Two deployment
generators are provided — a regular grid and a uniform random scatter over a
rectangular area — plus the connectivity graph induced by a maximum acoustic
communication range (built with networkx, so routing can reuse its
shortest-path machinery), and :class:`LinearMobility`, a current-drift model
that displaces sensor positions over time (the moored sink stays put) so the
topology and routes can be rebuilt epoch by epoch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.utils.rng import as_rng, counter_uniforms
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "Deployment",
    "LinearMobility",
    "grid_deployment",
    "random_deployment",
    "connectivity_graph",
]


@dataclass(frozen=True)
class Deployment:
    """A set of node positions plus the designated sink.

    Attributes
    ----------
    positions:
        Mapping from node id to (x, y) position in metres.
    sink_id:
        The node acting as the data sink / gateway.
    """

    positions: dict[int, tuple[float, float]]
    sink_id: int = 0

    def __post_init__(self) -> None:
        if self.sink_id not in self.positions:
            raise ValueError(f"sink id {self.sink_id} is not among the deployed nodes")
        if len(self.positions) < 2:
            raise ValueError("a deployment needs at least two nodes (sink + one sensor)")

    @property
    def num_nodes(self) -> int:
        """Number of deployed nodes, sink included."""
        return len(self.positions)

    def position_array(self) -> tuple[list[int], np.ndarray]:
        """Node ids (in insertion order) and their positions as an (N, 2) array."""
        ids = list(self.positions)
        return ids, np.asarray([self.positions[node_id] for node_id in ids], dtype=np.float64)

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes in metres."""
        xa, ya = self.positions[a]
        xb, yb = self.positions[b]
        return math.hypot(xa - xb, ya - yb)

    def max_pairwise_distance(self) -> float:
        """Largest node-to-node distance (the deployment's diameter)."""
        ids = list(self.positions)
        return max(
            self.distance(a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]
        )


def grid_deployment(
    rows: int,
    cols: int,
    spacing_m: float = 200.0,
    sink_id: int = 0,
) -> Deployment:
    """Regular ``rows x cols`` grid with ``spacing_m`` between neighbours.

    Node ids are assigned row-major starting at 0; the sink defaults to node 0
    (a grid corner).
    """
    check_integer("rows", rows, minimum=1)
    check_integer("cols", cols, minimum=1)
    check_positive("spacing_m", spacing_m)
    if rows * cols < 2:
        raise ValueError("grid must contain at least two nodes")
    positions = {
        r * cols + c: (c * spacing_m, r * spacing_m)
        for r in range(rows)
        for c in range(cols)
    }
    return Deployment(positions=positions, sink_id=sink_id)


def random_deployment(
    num_nodes: int,
    area_m: tuple[float, float] = (1000.0, 1000.0),
    rng: np.random.Generator | int | None = None,
    sink_at_center: bool = True,
) -> Deployment:
    """Uniform random scatter of ``num_nodes`` nodes over a rectangle.

    The sink (node 0) is placed at the centre of the area by default, which is
    the usual gateway placement for a moored buoy.
    """
    check_integer("num_nodes", num_nodes, minimum=2)
    width, height = area_m
    check_positive("area width", width)
    check_positive("area height", height)
    rng = as_rng(rng)
    positions: dict[int, tuple[float, float]] = {}
    start = 0
    if sink_at_center:
        positions[0] = (width / 2.0, height / 2.0)
        start = 1
    for node_id in range(start, num_nodes):
        positions[node_id] = (float(rng.uniform(0, width)), float(rng.uniform(0, height)))
    return Deployment(positions=positions, sink_id=0)


@dataclass(frozen=True)
class LinearMobility:
    """Constant-velocity drift of the sensor nodes (ocean-current mobility).

    Each sensor drifts at ``speed_mps`` along a fixed per-node heading derived
    deterministically from ``heading_seed`` (a counter-based hash, so no RNG
    stream state is consumed); the sink is a moored buoy and never moves.
    Positions are piecewise constant over epochs of ``epoch_s`` seconds — the
    granularity at which the simulator rebuilds connectivity and routing.
    Drifted deployments may disconnect; the simulator builds the graph in
    non-strict mode and treats partitioned sources as undeliverable.

    Parameters
    ----------
    speed_mps:
        Drift speed magnitude applied to every sensor node.
    epoch_s:
        Topology refresh period in seconds.
    heading_seed:
        Seed of the per-node heading hash.
    """

    speed_mps: float
    epoch_s: float = 21_600.0
    heading_seed: int = 0

    def __post_init__(self) -> None:
        check_positive("speed_mps", self.speed_mps)
        check_positive("epoch_s", self.epoch_s)

    def epoch_index(self, time_s: float) -> int:
        """The epoch containing absolute time ``time_s``."""
        return int(time_s // self.epoch_s)

    def heading_rad(self, node_id: int) -> float:
        """The node's fixed drift heading in radians (deterministic per node)."""
        return float(2.0 * math.pi * counter_uniforms(self.heading_seed, node_id, 1)[0])

    def positions_at(self, deployment: Deployment, epoch: int) -> Deployment:
        """The deployment as displaced at the *start* of ``epoch``."""
        check_integer("epoch", epoch, minimum=0)
        if epoch == 0:
            return deployment
        distance = self.speed_mps * epoch * self.epoch_s
        positions: dict[int, tuple[float, float]] = {}
        for node_id, (x, y) in deployment.positions.items():
            if node_id == deployment.sink_id:
                positions[node_id] = (x, y)
                continue
            heading = self.heading_rad(node_id)
            positions[node_id] = (
                x + distance * math.cos(heading),
                y + distance * math.sin(heading),
            )
        return Deployment(positions=positions, sink_id=deployment.sink_id)


def connectivity_graph(
    deployment: Deployment,
    communication_range_m: float,
    require_connected: bool = True,
) -> nx.Graph:
    """Build the connectivity graph: an edge joins nodes within acoustic range.

    Edge weights carry the inter-node distance (metres), which the routing
    layer uses as its path metric.  ``require_connected=False`` permits nodes
    with no path to the sink (drifted/mobile deployments partition routinely;
    the simulator then treats partitioned sources as undeliverable).

    Raises
    ------
    ValueError
        If ``require_connected`` and the graph leaves any node disconnected
        from the sink — an unusable deployment for a data-collection network.
    """
    check_positive("communication_range_m", communication_range_m)
    graph = nx.Graph()
    graph.add_nodes_from(deployment.positions)
    ids, points = deployment.position_array()
    # vectorised candidate selection (squared distances, with a small margin
    # against rounding), then the exact per-pair hypot check so the edge set
    # and weights match the scalar definition bit for bit
    deltas = points[:, np.newaxis, :] - points[np.newaxis, :, :]
    squared = np.einsum("ijk,ijk->ij", deltas, deltas)
    margin = (communication_range_m * (1.0 + 1e-9)) ** 2
    candidates = np.argwhere(np.triu(squared <= margin, k=1))
    for i, j in candidates:
        a, b = ids[i], ids[j]
        distance = deployment.distance(a, b)
        if distance <= communication_range_m:
            graph.add_edge(a, b, weight=distance)
    unreachable = [
        n for n in graph.nodes
        if n != deployment.sink_id and not nx.has_path(graph, n, deployment.sink_id)
    ]
    if unreachable and require_connected:
        raise ValueError(
            f"nodes {unreachable} cannot reach the sink with range {communication_range_m} m; "
            "increase the range or densify the deployment"
        )
    return graph
