"""Traffic models for the sensing workload.

Environmental-monitoring deployments generate low-rate periodic traffic: each
node samples its sensors and reports a short packet toward the sink every few
minutes.  :class:`PeriodicTraffic` captures that pattern (with optional
per-node jitter so nodes do not all transmit at the same instant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_integer, check_non_negative, check_positive

__all__ = ["PeriodicTraffic"]


@dataclass(frozen=True)
class PeriodicTraffic:
    """Periodic report generation.

    Parameters
    ----------
    report_interval_s:
        Time between consecutive reports from one node.
    packet_symbols:
        Packet length in modem symbols (payload + headers).
    jitter_fraction:
        Uniform jitter applied to each interval, as a fraction of the interval
        (0 disables jitter).
    """

    report_interval_s: float = 300.0
    packet_symbols: int = 32
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        check_positive("report_interval_s", self.report_interval_s)
        check_integer("packet_symbols", self.packet_symbols, minimum=1)
        check_non_negative("jitter_fraction", self.jitter_fraction)
        if self.jitter_fraction >= 1.0:
            raise ValueError("jitter_fraction must be < 1")

    def first_offset(self, node_index: int, num_nodes: int) -> float:
        """Deterministic stagger of the first report so nodes do not collide at t=0.

        ``node_index`` must address one of the ``num_nodes`` transmitters; an
        out-of-range index raises rather than silently wrapping onto another
        node's stagger slot.
        """
        check_integer("num_nodes", num_nodes, minimum=1)
        check_integer("node_index", node_index, minimum=0, maximum=num_nodes - 1)
        return node_index * self.report_interval_s / num_nodes

    def next_interval(self, rng: np.random.Generator | int | None = None) -> float:
        """Draw the time to the next report (interval plus jitter)."""
        if self.jitter_fraction == 0.0:
            return self.report_interval_s
        rng = as_rng(rng)
        jitter = rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return self.report_interval_s * (1.0 + jitter)

    def reports_per_day(self) -> float:
        """Average number of reports per node per day."""
        return 86_400.0 / self.report_interval_s
