"""Command-line interface: regenerate the paper's experiments from a shell.

Usage (after ``pip install -e .``)::

    python -m repro table1          # Table 1  — AquaModem design parameters
    python -m repro table2          # Table 2  — area / timing / throughput DSE
    python -m repro figure6         # Figure 6 — power / energy DSE
    python -m repro table3          # Table 3  — platform comparison (210X / 52X)
    python -m repro report          # all of the above, paper vs measured
    python -m repro bitwidth        # E6 ablation — accuracy vs word length
    python -m repro lifetime        # E9 extension — network lifetime by platform
    python -m repro estimate        # run one MP estimation on a random channel
    python -m repro ipcore          # IP-core cycle cost vs accuracy (--parallelism)
    python -m repro ser             # E7 — DS-SS vs FSK SER sweep (batched engine)
    python -m repro scenarios       # list the sweepable experiment scenarios
    python -m repro sweep <name>    # run a scenario sweep (parallel + cached)
    python -m repro trace <file>    # summarise a sweep's trace JSONL
    python -m repro serve           # run the sweep service daemon (HTTP/JSON)
    python -m repro submit <name>   # submit a sweep to a running daemon
    python -m repro ingest <path>   # index result/cache artifacts into the warehouse
    python -m repro query           # list/filter warehouse runs and trial records
    python -m repro compare A B     # diff two runs' metrics (regression report)

Every command prints plain text to stdout; ``--num-paths`` changes the MP
workload (Nf) where applicable.  ``sweep`` accepts ``--set axis=v1,v2,...``
to override any parameter axis, ``--jobs N`` for a worker pool, and writes
tidy JSONL/CSV results plus a manifest to ``--output`` — plus ``--progress``
heartbeats on stderr and a ``--trace`` span export readable by ``repro
trace``.  The global ``--verbose``/``--quiet`` flags control the stdlib
:mod:`logging` diagnostics every layer emits through named loggers.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import Sequence

from repro.analysis.ablations import (
    aquamodem_signal_matrices,
    bitwidth_accuracy_ablation,
    network_lifetime_study,
)
from repro.analysis.figure6 import render_figure6, reproduce_figure6
from repro.analysis.report import comparison_report
from repro.analysis.table1 import render_table1, reproduce_table1
from repro.analysis.table2 import render_table2, reproduce_table2
from repro.analysis.table3 import render_table3, reproduce_table3
from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.matching_pursuit import matching_pursuit
from repro.modem.config import AquaModemConfig
from repro.utils.tables import format_table

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'Energy Benefits of Reconfigurable "
        "Hardware for Use in Underwater Sensor Nets' (Benson et al., 2009).",
    )
    parser.add_argument(
        "--num-paths", type=int, default=6,
        help="number of Matching Pursuits iterations Nf (default: 6)",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose", "-v", action="store_true",
        help="emit DEBUG-level diagnostics from the repro loggers on stderr",
    )
    verbosity.add_argument(
        "--quiet", "-q", action="store_true",
        help="silence everything below ERROR on the repro loggers",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("table1", "AquaModem design parameters (Table 1)"),
        ("table2", "area / timing / throughput design-space exploration (Table 2)"),
        ("figure6", "power / energy design-space exploration (Figure 6)"),
        ("table3", "platform comparison and the 210X / 52X headline (Table 3)"),
        ("report", "full paper-vs-measured report"),
    ):
        subparsers.add_parser(name, help=help_text)

    bitwidth = subparsers.add_parser("bitwidth", help="fixed-point accuracy ablation (E6)")
    bitwidth.add_argument("--trials", type=int, default=12, help="Monte-Carlo trials per word length")
    bitwidth.add_argument("--snr-db", type=float, default=25.0, help="per-sample SNR")
    bitwidth.add_argument("--jobs", type=int, default=1,
                          help="worker processes (applies to the --no-batch sweep)")
    bitwidth.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="run the whole ablation on the batched fixed-point engine "
        "(--no-batch runs the scalar datapath trial by trial; results are identical)",
    )

    lifetime = subparsers.add_parser("lifetime", help="network lifetime by platform (E9)")
    lifetime.add_argument("--grid", type=int, default=5, help="grid side length (grid x grid nodes)")
    lifetime.add_argument("--battery-kj", type=float, default=200.0, help="battery capacity in kJ")
    lifetime.add_argument("--report-interval-s", type=float, default=120.0,
                          help="sensing report interval per node")
    lifetime.add_argument("--jobs", type=int, default=1, help="worker processes for the sweep")
    lifetime.add_argument(
        "--trials", type=int, default=0,
        help="run the packet-level network simulator for this many Monte-Carlo "
        "trials per platform (0 = the analytical estimate, the default)",
    )
    lifetime.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="use the vectorised engine (--no-batch runs the scalar/event-loop "
        "reference; results are identical)",
    )
    lifetime.add_argument("--seed", type=int, default=0,
                          help="base seed for the simulated trials")
    lifetime.add_argument(
        "--topology", choices=("grid", "random"), default="grid",
        help="deployment geometry (applies to both the analytical estimate "
        "and --trials simulation)",
    )
    lifetime.add_argument(
        "--mac", choices=("none", "csma"), default="none",
        help="MAC model for --trials: 'csma' draws per-packet contention "
        "(collisions, bounded retries); 'none' is the contention-free default",
    )
    lifetime.add_argument("--channel-load", type=float, default=0.1,
                          help="per-contender channel occupancy for --mac csma")
    lifetime.add_argument("--max-attempts", type=int, default=5,
                          help="per-hop retry cap for --mac csma")
    lifetime.add_argument("--capture", type=float, default=0.0,
                          help="capture probability of a collided attempt for --mac csma")
    lifetime.add_argument(
        "--protocol", choices=("routed", "flooding"), default="routed",
        help="packet forwarding for --trials: shortest-path unicast or "
        "TTL-bounded flooding",
    )
    lifetime.add_argument("--ttl", type=int, default=4,
                          help="hop budget for --protocol flooding")
    lifetime.add_argument(
        "--drift-speed", type=float, default=0.0,
        help="node drift speed in m/s for --trials (0 = static deployment); "
        "topology and routes are rebuilt once per drift epoch",
    )
    lifetime.add_argument("--drift-epoch-s", type=float, default=21_600.0,
                          help="topology refresh period for --drift-speed")

    ipcore = subparsers.add_parser(
        "ipcore",
        help="Filter-and-Cancel IP-core study: cycle cost vs accuracy (Figure 5)",
    )
    ipcore.add_argument(
        "--parallelism", action="store_true",
        help="sweep every conformance parallelism level 1/2/4/8/14/28/56/112 "
        "(default: the Table 2 levels 1/14/112)",
    )
    ipcore.add_argument("--word-length", type=int, default=8, help="datapath width in bits")
    ipcore.add_argument("--trials", type=int, default=8, help="Monte-Carlo trials per level")
    ipcore.add_argument("--snr-db", type=float, default=25.0, help="per-sample SNR")
    ipcore.add_argument("--seed", type=int, default=0, help="base seed for channels/noise")
    ipcore.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="run each level's trials through the batched IP-core engine "
        "(--no-batch walks the scalar FC-block simulator; results are identical)",
    )

    ser = subparsers.add_parser(
        "ser", help="DS-SS vs FSK symbol error rate sweep (E7, batched link engine)"
    )
    ser.add_argument(
        "--snr-db", default="-9,-6,-3,0,3", metavar="V1,V2,...",
        help="comma-separated SNR points in dB (default: -9,-6,-3,0,3); "
        "write lists starting with a negative value as --snr-db=-12,-9,...",
    )
    ser.add_argument("--symbols", type=int, default=120, help="symbols per scheme per SNR point")
    ser.add_argument("--frames", type=int, default=10, help="frames per SNR point")
    ser.add_argument("--seed", type=int, default=0, help="base seed for channels/symbols/noise")
    ser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="use the batched link engine (--no-batch runs the per-frame reference loop)",
    )

    subparsers.add_parser(
        "scenarios", help="list the sweepable experiment scenarios and their axes"
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a declarative scenario sweep (parallel execution + result cache)"
    )
    sweep.add_argument("scenario", help="scenario name (see 'repro scenarios')")
    sweep.add_argument(
        "--set", dest="overrides", action="append", default=[], metavar="AXIS=V1,V2,...",
        help="override a parameter axis (repeatable); one value pins it, several sweep "
        "it; on a zipped axis the values select rows (pairing kept)",
    )
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes (default: serial)")
    sweep.add_argument("--replicates", type=int, default=None,
                       help="override the scenario's replicate count")
    sweep.add_argument("--seed", type=int, default=None, help="override the base seed")
    sweep.add_argument("--cache-dir", default=".repro_cache",
                       help="result cache directory (default: .repro_cache)")
    sweep.add_argument("--no-cache", action="store_true", help="disable the result cache")
    sweep.add_argument("--output", default=None,
                       help="results directory (default: results/sweeps/<scenario>)")
    sweep.add_argument(
        "--trace", action="store_true",
        help="record tracing spans for the run and write them as trace.jsonl "
        "next to the results (inspect with 'repro trace')",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="print live progress heartbeats (completed/total, trials/s, cache "
        "hit rate, ETA) on stderr while the sweep runs",
    )
    sweep.add_argument(
        "--progress-interval", type=float, default=0.5, metavar="SECONDS",
        help="minimum seconds between intermediate --progress heartbeats "
        "(default: 0.5; first and final updates always print)",
    )
    adaptive = sweep.add_argument_group(
        "adaptive sampling",
        "sequential stopping: grow the sweep in waves of replicates and stop "
        "each parameter point once the confidence interval on --metric is "
        "tighter than --ci-width (results stream to segments/ and merge at "
        "the end, so trial counts can exceed memory)",
    )
    adaptive.add_argument("--adaptive", action="store_true",
                          help="enable sequential stopping (--replicates is ignored)")
    adaptive.add_argument("--metric", default="symbol_error_rate",
                          help="binomial record metric the stopping rule gates on "
                          "(default: symbol_error_rate)")
    adaptive.add_argument("--ci-width", type=float, default=0.01, metavar="W",
                          help="stop a point once its CI half-width is <= W "
                          "(default: 0.01)")
    adaptive.add_argument("--confidence", type=float, default=0.95,
                          help="confidence level of the stopping interval "
                          "(default: 0.95)")
    adaptive.add_argument("--ci-method", choices=("wilson", "clopper-pearson"),
                          default="wilson",
                          help="interval method (default: wilson; clopper-pearson "
                          "is exact/conservative)")
    adaptive.add_argument("--max-trials", type=int, default=256, metavar="N",
                          help="hard per-point replicate ceiling (default: 256)")
    adaptive.add_argument("--min-trials", type=int, default=4, metavar="N",
                          help="replicates every point runs before it may stop "
                          "(default: 4)")
    adaptive.add_argument("--wave", type=int, default=8, metavar="N", dest="wave_trials",
                          help="replicates each wave adds per active point "
                          "(default: 8)")

    serve = subparsers.add_parser(
        "serve", help="run the sweep service: a daemon with an HTTP/JSON job API"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (default: 8765; 0 picks an ephemeral port)")
    serve.add_argument("--data-dir", default="results/service",
                       help="per-job results directory (default: results/service)")
    serve.add_argument("--cache-dir", default=".repro_cache",
                       help="shared trial cache directory (default: .repro_cache)")
    serve.add_argument("--no-cache", action="store_true",
                       help="run without the shared result cache")
    serve.add_argument("--max-workers", type=int, default=2,
                       help="concurrent sweep jobs (default: 2)")
    serve.add_argument(
        "--warehouse", default=None, metavar="DB",
        help="warehouse SQLite file completed jobs are auto-ingested into, "
        "serving GET /api/v1/runs (default: <data-dir>/warehouse.sqlite)",
    )
    serve.add_argument("--no-warehouse", action="store_true",
                       help="disable job auto-ingestion and the /api/v1/runs endpoint")

    submit = subparsers.add_parser(
        "submit", help="submit a scenario sweep to a running 'repro serve' daemon"
    )
    submit.add_argument("scenario", help="scenario name (see 'repro scenarios')")
    submit.add_argument(
        "--set", dest="overrides", action="append", default=[], metavar="AXIS=V1,V2,...",
        help="override a parameter axis (same semantics as 'repro sweep --set')",
    )
    submit.add_argument("--replicates", type=int, default=None,
                        help="override the scenario's replicate count")
    submit.add_argument("--seed", type=int, default=None, help="override the base seed")
    submit.add_argument("--url", default="http://127.0.0.1:8765",
                        help="daemon base URL (default: http://127.0.0.1:8765)")
    submit.add_argument("--jobs", type=int, default=1,
                        help="worker processes the daemon uses for this sweep")
    submit.add_argument("--no-cache-job", action="store_true",
                        help="ask the daemon to bypass its shared cache for this job")
    submit.add_argument("--trace-job", action="store_true",
                        help="ask the daemon to record a per-job trace.jsonl")
    submit.add_argument("--adaptive", action="store_true",
                        help="run the job with sequential stopping (see "
                        "'repro sweep' adaptive options)")
    submit.add_argument("--metric", default="symbol_error_rate",
                        help="binomial metric the adaptive rule gates on "
                        "(default: symbol_error_rate)")
    submit.add_argument("--ci-width", type=float, default=0.01, metavar="W",
                        help="adaptive CI half-width target (default: 0.01)")
    submit.add_argument("--confidence", type=float, default=0.95,
                        help="adaptive confidence level (default: 0.95)")
    submit.add_argument("--ci-method", choices=("wilson", "clopper-pearson"),
                        default="wilson", help="adaptive interval method")
    submit.add_argument("--max-trials", type=int, default=256, metavar="N",
                        help="adaptive per-point replicate ceiling (default: 256)")
    submit.add_argument("--min-trials", type=int, default=4, metavar="N",
                        help="adaptive minimum replicates per point (default: 4)")
    submit.add_argument("--wave", type=int, default=8, metavar="N", dest="wave_trials",
                        help="adaptive replicates added per wave (default: 8)")
    submit.add_argument(
        "--watch", action="store_true",
        help="poll the job to completion, printing progress heartbeats on stderr",
    )
    submit.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS",
                        help="--watch polling timeout (default: 600)")

    trace = subparsers.add_parser(
        "trace", help="summarise a trace JSONL written by 'repro sweep --trace'"
    )
    trace.add_argument("file", help="path to a trace.jsonl file")
    trace.add_argument("--slowest", type=int, default=5, metavar="N",
                       help="number of slowest trial spans to list (default: 5)")
    trace.add_argument(
        "--check", action="store_true",
        help="validate the span records against the trace schema (and, when a "
        "sibling manifest.json exists, cross-check the trial span count "
        "against the recorded sweep stats); exit non-zero on any problem",
    )

    ingest = subparsers.add_parser(
        "ingest",
        help="index sweep results, service job artifacts and trial caches "
        "into the result warehouse",
    )
    ingest.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="directories to scan: ResultStore outputs, 'repro serve' data "
        "dirs, and/or trial cache dirs (auto-detected, recursively)",
    )
    ingest.add_argument("--db", default="results/warehouse.sqlite",
                        help="warehouse SQLite file (default: results/warehouse.sqlite)")

    query = subparsers.add_parser(
        "query", help="query the result warehouse: runs (default) or trial records"
    )
    query.add_argument("--db", default="results/warehouse.sqlite",
                       help="warehouse SQLite file (default: results/warehouse.sqlite)")
    query.add_argument("--scenario", default=None, help="filter by scenario name")
    query.add_argument("--version", default=None, dest="scenario_version",
                       help="filter by scenario version")
    query.add_argument("--source", default=None, choices=("store", "service", "cache"),
                       help="filter by artifact source kind")
    query.add_argument("--since", default=None, metavar="ISO",
                       help="only runs ingested at or after this ISO date/time")
    query.add_argument("--until", default=None, metavar="ISO",
                       help="only runs ingested at or before this ISO date/time")
    query.add_argument(
        "--where", action="append", default=[], metavar="PARAM<OP>VALUE",
        help="trial-parameter predicate, repeatable (ops: = != < <= > >=); "
        "e.g. --where snr_db>=-3 --where scheme=DSSS",
    )
    query.add_argument("--trials", action="store_true",
                       help="print the matching trial records instead of the runs")
    query.add_argument("--limit", type=int, default=None,
                       help="maximum trial records to print (with --trials)")
    query.add_argument("--format", choices=("table", "csv", "json"), default="table",
                       help="output format (default: table)")

    compare = subparsers.add_parser(
        "compare",
        help="diff two warehouse runs' metrics with regression highlighting",
    )
    compare.add_argument(
        "run_a", help="baseline run: an id from 'repro query', or 'latest'/'prev' "
        "(scoped by --scenario)",
    )
    compare.add_argument("run_b", help="candidate run (same forms as run_a)")
    compare.add_argument("--db", default="results/warehouse.sqlite",
                         help="warehouse SQLite file (default: results/warehouse.sqlite)")
    compare.add_argument("--scenario", default=None,
                         help="scenario scope for 'latest'/'prev' references")
    compare.add_argument(
        "--metric", action="append", default=[], metavar="NAME",
        help="metric to diff, repeatable (default: every numeric metric both runs share)",
    )
    compare.add_argument(
        "--by", default=None, metavar="AXIS",
        help="parameter axis to group by — diffs the metric curve point by point "
        "(e.g. --by snr_db for SER-vs-SNR)",
    )
    compare.add_argument("--threshold", type=float, default=10.0, metavar="PCT",
                         help="relative change (percent) beyond which a diff is "
                         "flagged (default: 10)")
    compare.add_argument(
        "--higher-is-better", action="store_true",
        help="treat increases as improvements (lifetime, delivery ratio); "
        "the default flags increases as regressions (error rates)",
    )
    compare.add_argument("--format", choices=("table", "json"), default="table",
                         help="output format (default: table)")
    compare.add_argument("--fail-on-regression", action="store_true",
                         help="exit non-zero when any diff is classified a regression")

    estimate = subparsers.add_parser("estimate", help="run one MP channel estimation")
    estimate.add_argument("--seed", type=int, default=0, help="channel / noise seed")
    estimate.add_argument("--snr-db", type=float, default=20.0, help="per-sample SNR")
    estimate.add_argument("--channel-paths", type=int, default=4, help="true number of paths")

    export = subparsers.add_parser(
        "export", help="write every regenerated table/figure as CSV plus a JSON summary"
    )
    export.add_argument("--output-dir", default="results", help="directory for the CSV/JSON files")

    return parser


def _run_estimate(args: argparse.Namespace) -> str:
    config = AquaModemConfig(num_paths=args.num_paths)
    matrices = aquamodem_signal_matrices(config)
    channel = random_sparse_channel(
        num_paths=args.channel_paths,
        max_delay=config.multipath_spread_samples,
        rng=args.seed,
        min_separation=4,
    )
    received = add_noise_for_snr(
        matrices.synthesize(channel.coefficient_vector(matrices.num_delays)),
        args.snr_db,
        rng=args.seed + 1,
    )
    result = matching_pursuit(received, matrices, num_paths=args.num_paths)
    lines = [
        "True channel taps (delay, |gain|): "
        + str([(int(d), round(float(abs(g)), 3)) for d, g in zip(channel.delays, channel.gains)]),
        "Estimated taps   (delay, |gain|): "
        + str([(int(d), round(float(abs(g)), 3)) for d, g in result.as_delay_gain_pairs()]),
    ]
    return "\n".join(lines)


def _run_bitwidth(args: argparse.Namespace) -> str:
    results = bitwidth_accuracy_ablation(
        word_lengths=(4, 6, 8, 10, 12, 16),
        num_trials=args.trials,
        snr_db=args.snr_db,
        rng=0,
        jobs=args.jobs,
        batch=args.batch,
    )
    engine = "batched engine" if args.batch else "scalar datapath"
    return format_table(
        ["Bits", "Error vs truth", "Support recovery", "Error vs float"],
        [
            (r.word_length, r.mean_normalized_error, r.mean_support_recovery, r.mean_error_vs_float)
            for r in results
        ],
        title=f"Fixed-point MP accuracy vs word length ({engine})",
    )


def _run_lifetime(args: argparse.Namespace) -> str:
    if args.trials > 0:
        from repro.analysis.ablations import simulated_network_lifetime_study
        from repro.network.mac import CsmaMac
        from repro.network.routing import TtlFlooding
        from repro.network.topology import LinearMobility

        mac = None
        if args.mac == "csma":
            mac = CsmaMac(
                channel_load=args.channel_load,
                max_attempts=args.max_attempts,
                capture_probability=args.capture,
            )
        protocol = TtlFlooding(ttl=args.ttl) if args.protocol == "flooding" else None
        mobility = None
        if args.drift_speed > 0.0:
            mobility = LinearMobility(
                speed_mps=args.drift_speed, epoch_s=args.drift_epoch_s
            )
        summaries = simulated_network_lifetime_study(
            grid_size=(args.grid, args.grid),
            battery_capacity_j=args.battery_kj * 1e3,
            report_interval_s=args.report_interval_s,
            trials=args.trials,
            base_seed=args.seed,
            batch=args.batch,
            topology=args.topology,
            mac=mac,
            protocol=protocol,
            mobility=mobility,
        )
        engine = "batched engine" if args.batch else "event loop"
        rows = [
            (
                summary.platform,
                # a censored run (no death within the horizon) is reported as
                # such, never as a zero lifetime
                "> horizon" if summary.mean_lifetime_days is None
                else round(summary.mean_lifetime_days, 2),
                f"{summary.died_trials}/{summary.trials}",
                round(summary.mean_delivery_ratio, 4),
            )
            for summary in sorted(
                summaries.values(),
                key=lambda s: (s.mean_lifetime_days is None, s.mean_lifetime_days or 0.0),
            )
        ]
        table = format_table(
            ["Platform", "Mean lifetime (days)", "Died/trials", "Delivery ratio"],
            rows,
            title=f"{args.grid * args.grid}-node simulated deployment lifetime "
            f"({args.topology} topology, {args.trials} trials, {engine})",
        )
        if args.jobs != 1:
            table += ("\nnote: --jobs applies to the analytical sweep; simulated "
                      "trials already run batched in-process")
        return table
    lifetimes = network_lifetime_study(
        grid_size=(args.grid, args.grid),
        battery_capacity_j=args.battery_kj * 1e3,
        report_interval_s=args.report_interval_s,
        jobs=args.jobs,
        batch=args.batch,
        topology=args.topology,
    )
    return format_table(
        ["Platform", "Deployment lifetime (days)"],
        sorted(lifetimes.items(), key=lambda kv: kv[1]),
        title=f"{args.grid * args.grid}-node deployment lifetime by platform "
        f"({args.topology} topology)",
    )


def _run_ipcore(args: argparse.Namespace) -> str:
    from repro.analysis.ablations import ipcore_parallelism_study

    levels = (1, 2, 4, 8, 14, 28, 56, 112) if args.parallelism else (1, 14, 112)
    results = ipcore_parallelism_study(
        parallelism_levels=levels,
        word_length=args.word_length,
        num_trials=args.trials,
        snr_db=args.snr_db,
        rng=args.seed,
        batch=args.batch,
    )
    engine = "batched engine" if args.batch else "scalar FC-block walk"
    table = format_table(
        ["P", "Cycles", "MF cycles", "Iter cycles", "Time (us)",
         "Error vs truth", "Support recovery", "Error vs float"],
        [
            (
                r.num_fc_blocks, r.total_cycles, r.matched_filter_cycles,
                r.iteration_cycles, round(r.execution_time_us, 2),
                round(r.mean_normalized_error, 4), round(r.mean_support_recovery, 4),
                round(r.mean_error_vs_float, 6),
            )
            for r in results
        ],
        title=f"IP core — cycle cost vs accuracy at {args.word_length} bits ({engine})",
    )
    return (
        f"{table}\n"
        "estimates are bit-identical at every P (cross-P conformance asserted "
        "on the raw integer codes); only the schedule changes"
    )


def _run_ser(args: argparse.Namespace) -> str:
    import time

    from repro.analysis.ablations import dsss_vs_fsk_ablation

    try:
        snr_points = tuple(float(token) for token in args.snr_db.split(","))
    except ValueError:
        raise SystemExit(
            f"error: --snr-db expects comma-separated numbers, got {args.snr_db!r}"
        ) from None
    start = time.perf_counter()
    curves = dsss_vs_fsk_ablation(
        snr_points_db=snr_points,
        num_symbols=args.symbols,
        rng=args.seed,
        batch=args.batch,
        num_frames=args.frames,
    )
    elapsed = time.perf_counter() - start
    engine = "batched engine" if args.batch else "per-frame reference"
    table = format_table(
        ["SNR (dB)", "DS-SS SER", "FSK SER"],
        [
            (d.snr_db, round(d.symbol_error_rate, 4), round(f.symbol_error_rate, 4))
            for d, f in zip(curves["DSSS"], curves["FSK"])
        ],
        title=f"E7 — symbol error rate, DS-SS vs FSK ({engine})",
    )
    return f"{table}\nelapsed: {elapsed:.3f}s ({engine})"


def _parse_axis_value(token: str) -> int | float | str | bool:
    """Parse one ``--set`` value: int, then float, then bool, then string."""
    for parser in (int, float):
        try:
            return parser(token)
        except ValueError:
            pass
    if token.lower() in ("true", "false"):
        return token.lower() == "true"
    return token


def _parse_set_option(option: str) -> tuple[str, tuple]:
    """Split one ``--set axis=v1,v2,...`` option into (axis, values)."""
    name, separator, values = option.partition("=")
    if not separator or not name or not values:
        raise ValueError(f"--set expects AXIS=V1,V2,..., got {option!r}")
    return name, tuple(_parse_axis_value(token) for token in values.split(","))


def _run_scenarios(args: argparse.Namespace) -> str:
    from repro.experiments import list_scenarios

    rows = []
    for scenario in list_scenarios():
        spec = scenario.spec
        axes = ", ".join(
            f"{name}[{len(values)}]"
            for name, values in {**spec.grid, **spec.zipped}.items()
        )
        rows.append((scenario.name, "/".join(scenario.layers), spec.num_trials, axes,
                     scenario.description))
    return format_table(
        ["Scenario", "Layers", "Trials", "Axes", "Description"],
        rows,
        title="Sweepable experiment scenarios (run with 'repro sweep <name>')",
    )


def _resolve_spec(args: argparse.Namespace):
    """Resolve a scenario name + --set/--seed/--replicates flags into a spec.

    Shared by ``repro sweep`` (runs it in-process) and ``repro submit``
    (ships it to a daemon); every user error becomes a clean ``SystemExit``.
    """
    from repro.experiments import get_scenario

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as error:
        raise SystemExit(error.args[0]) from None

    spec = scenario.spec
    try:
        for option in args.overrides:
            name, values = _parse_set_option(option)
            known = set(spec.grid) | set(spec.zipped) | set(spec.base)
            if name not in known:
                raise ValueError(
                    f"unknown axis {name!r} for scenario {scenario.name!r}; "
                    f"known parameters: {', '.join(sorted(known))}"
                )
            if name in spec.zipped:
                # zipped axes are paired data: select rows, keep the pairing
                spec = spec.select_zipped(name, values)
            else:
                spec = spec.with_axis(name, values)
        if args.seed is not None or args.replicates is not None:
            spec = spec.with_seed(base_seed=args.seed, replicates=args.replicates)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    return scenario, spec


def _adaptive_config(args: argparse.Namespace):
    """Build the sequential-stopping rule from the adaptive CLI flags."""
    from repro.experiments import AdaptiveConfig

    try:
        return AdaptiveConfig(
            metric=args.metric,
            ci_width=args.ci_width,
            max_trials=args.max_trials,
            confidence=args.confidence,
            method=args.ci_method,
            min_trials=args.min_trials,
            wave_trials=args.wave_trials,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None


def _run_sweep(args: argparse.Namespace) -> str:
    from repro.experiments import (
        ResultCache,
        ResultStore,
        SegmentedResultStore,
        run_adaptive_sweep,
        run_fingerprint,
        run_sweep,
    )
    from repro.experiments.store import tidy_headers
    from repro.telemetry import progress_printer, start_trace, write_trace

    scenario, spec = _resolve_spec(args)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = progress_printer(sys.stderr) if args.progress else None

    output_dir = args.output if args.output else f"results/sweeps/{scenario.name}"

    def _execute():
        if args.adaptive:
            config = _adaptive_config(args)
            try:
                # the fingerprint refuses an output dir whose leftover
                # segments came from a different spec/config/version
                store = SegmentedResultStore(output_dir, fingerprint=run_fingerprint(
                    spec=spec.to_dict(),
                    adaptive=config.to_dict(),
                    scenario={"name": scenario.name, "version": scenario.version},
                ))
                return run_adaptive_sweep(
                    spec, config, jobs=args.jobs, cache=cache,
                    progress=progress, progress_interval_s=args.progress_interval,
                    store=store,
                ), store
            except ValueError as error:
                raise SystemExit(f"error: {error}") from None
        return run_sweep(
            spec, jobs=args.jobs, cache=cache,
            progress=progress, progress_interval_s=args.progress_interval,
        ), None

    if args.trace:
        with start_trace() as tracer:
            result, store = _execute()
            trace_records = tracer.records
    else:
        result, store = _execute()
        trace_records = None
    stats = result.stats

    if store is not None:
        # merged artefacts are byte-compatible with a ResultStore.write of
        # the same records, and the segments stay behind for resume/audit
        written = store.merge(spec=spec.to_dict(), stats=result.stats_payload())
    else:
        written = ResultStore(output_dir).write(
            result.records, spec=spec.to_dict(), stats=stats.to_dict()
        )
    if trace_records is not None:
        written["trace"] = str(write_trace(
            os.path.join(output_dir, "trace.jsonl"), trace_records
        ))

    headers = tidy_headers(result.records)
    preview_limit = 12
    preview = format_table(
        headers,
        [[record.get(column, "") for column in headers]
         for record in result.records[:preview_limit]],
        title=f"{scenario.name} — first {min(preview_limit, len(result.records))} "
        f"of {len(result.records)} records",
    )
    lines = [
        preview,
        "",
        f"trials: {stats.num_trials}  executed: {stats.executed}  "
        f"cache hits: {stats.cache_hits} ({stats.cache_hit_rate:.0%})  "
        f"jobs: {stats.jobs}  elapsed: {stats.elapsed_s:.2f}s  "
        f"({stats.trials_per_second:.1f} trials/s)",
    ]
    if args.adaptive:
        lines.append(
            f"adaptive: {result.points_stopped_early}/{len(result.points)} points "
            f"stopped early in {result.waves} wave(s); realised "
            f"{stats.num_trials}/{result.ceiling_trials} ceiling trials "
            f"(ci_width={result.config.ci_width:g}, {result.config.method} @ "
            f"{result.config.confidence:.0%}, {len(store.segments())} segment(s))"
        )
    lines.extend(f"{name}: {path}" for name, path in sorted(written.items()))
    return "\n".join(lines)


def _run_serve(args: argparse.Namespace) -> str:
    from repro.experiments import ResultCache
    from repro.service import JobQueue, make_server, serve
    from repro.warehouse import Warehouse

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    warehouse = None
    if not args.no_warehouse:
        warehouse = Warehouse(args.warehouse or os.path.join(args.data_dir, "warehouse.sqlite"))
    queue = JobQueue(
        args.data_dir, cache=cache, max_workers=args.max_workers, warehouse=warehouse
    )
    server = make_server(args.host, args.port, queue)
    host, port = server.server_address[0], server.server_address[1]
    print(f"sweep service listening on http://{host}:{port}{'' if cache else ' (cache off)'}",
          flush=True)
    if warehouse is not None:
        print(f"warehouse: {warehouse.path} (query with: repro query --db {warehouse.path})",
              flush=True)
    print(f"submit with: repro submit <scenario> --url http://{host}:{port}", flush=True)
    serve(server, queue)
    return "sweep service stopped"


def _run_submit(args: argparse.Namespace) -> str:
    from repro.service import ServiceError, SweepServiceClient
    from repro.telemetry.progress import ProgressEvent, render_progress

    _, spec = _resolve_spec(args)
    client = SweepServiceClient(args.url)
    adaptive = _adaptive_config(args).to_dict() if args.adaptive else None
    try:
        response = client.submit(
            spec, jobs=args.jobs, cache=not args.no_cache_job,
            trace=args.trace_job, adaptive=adaptive,
        )
    except ServiceError as error:
        raise SystemExit(f"error: {error}") from None
    job = response["job"]
    job_id = job["job_id"]
    lines = [
        f"job: {job_id}  state: {job['state']}  "
        f"trials: {job['num_trials']}"
        + ("  (deduplicated: joined an existing job)" if response["deduplicated"] else ""),
    ]
    if not args.watch:
        lines.append(f"poll with: curl {args.url}/api/v1/jobs/{job_id}")
        return "\n".join(lines)

    def heartbeat(status: dict) -> None:
        progress = status.get("progress")
        if progress:
            event = ProgressEvent(
                completed=progress["completed"], total=progress["total"],
                executed=progress["executed"], cache_hits=progress["cache_hits"],
                elapsed_s=progress["elapsed_s"], final=progress["final"],
            )
            print(render_progress(event), file=sys.stderr, flush=True)

    try:
        status = client.wait(job_id, timeout_s=args.timeout, on_progress=heartbeat)
    except (ServiceError, TimeoutError) as error:
        raise SystemExit(f"error: {error}") from None
    if status["state"] != "done":
        raise SystemExit(f"error: job {job_id} {status['state']}: {status.get('error')}")
    stats = status["stats"] or {}
    records = client.records(job_id)
    lines.append(
        f"done: {records['count']} records  "
        f"executed: {stats.get('executed')}  cache hits: {stats.get('cache_hits')}  "
        f"elapsed: {stats.get('elapsed_s', 0.0):.2f}s"
    )
    lines.extend(
        f"{name}: {path}" for name, path in sorted((status.get("artifacts") or {}).items())
    )
    return "\n".join(lines)


def _parse_when(token: str | None, option: str) -> float | None:
    """Parse an ISO date/time CLI value into POSIX seconds (None passes through)."""
    if token is None:
        return None
    from datetime import datetime

    try:
        return datetime.fromisoformat(token).timestamp()
    except ValueError:
        raise SystemExit(
            f"error: {option} expects an ISO date/time (e.g. 2026-08-01 or "
            f"2026-08-01T12:30), got {token!r}"
        ) from None


def _warehouse_filters(expressions: Sequence[str]):
    """Parse every ``--where`` expression, mapping bad syntax to SystemExit."""
    from repro.warehouse import parse_filter

    try:
        return [parse_filter(expression) for expression in expressions]
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None


def _run_ingest(args: argparse.Namespace) -> str:
    from repro.warehouse import SchemaVersionError, Warehouse

    warehouse = Warehouse(args.db)
    try:
        report = warehouse.ingest(*args.paths)
    except (FileNotFoundError, SchemaVersionError) as error:
        raise SystemExit(f"error: {error}") from None
    counts = report.to_dict()
    summary = "  ".join(f"{name}: {value}" for name, value in counts.items())
    return f"warehouse: {args.db}\n{summary}"


def _run_query(args: argparse.Namespace) -> str:
    import csv
    import json
    from datetime import datetime

    from repro.experiments.store import tidy_headers
    from repro.warehouse import SchemaVersionError, Warehouse

    filters = _warehouse_filters(args.where)
    warehouse = Warehouse(args.db)
    try:
        runs = warehouse.runs(
            scenario=args.scenario,
            version=args.scenario_version,
            source=args.source,
            since=_parse_when(args.since, "--since"),
            until=_parse_when(args.until, "--until"),
            where=filters,
        )
    except SchemaVersionError as error:
        raise SystemExit(f"error: {error}") from None

    if args.trials:
        rows = warehouse.trials(
            run_ids=[run.run_id for run in runs] or None,
            where=filters,
            limit=args.limit,
        ) if runs else []
        records = [{"run_id": row.run_id, **row.record} for row in rows]
        if args.format == "json":
            return json.dumps(records, indent=2, sort_keys=True)
        headers = ["run_id"] + [h for h in tidy_headers(records) if h != "run_id"]
        if args.format == "csv":
            import io

            buffer = io.StringIO()
            writer = csv.writer(buffer)
            writer.writerow(headers)
            for record in records:
                writer.writerow([record.get(column, "") for column in headers])
            return buffer.getvalue().rstrip("\n")
        table = format_table(
            headers,
            [[record.get(column, "") for column in headers] for record in records],
            title=f"{len(records)} trial record(s) from {len(runs)} run(s)",
        )
        return table

    if args.format == "json":
        return json.dumps([run.to_dict() for run in runs], indent=2, sort_keys=True)
    headers = ["Run", "Scenario", "Version", "Source", "Trials", "Ingested", "Path"]
    rows = [
        (
            run.run_id,
            run.scenario,
            run.scenario_version or "-",
            run.source,
            run.num_trials,
            datetime.fromtimestamp(run.ingested_at).strftime("%Y-%m-%d %H:%M:%S"),
            run.source_path,
        )
        for run in runs
    ]
    if args.format == "csv":
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(header.lower() for header in headers)
        writer.writerows(rows)
        return buffer.getvalue().rstrip("\n")
    return format_table(
        headers, rows,
        title=f"{len(rows)} warehouse run(s) in {args.db} "
        "(inspect records with --trials, diff with 'repro compare')",
    )


def _run_compare(args: argparse.Namespace) -> str:
    import json

    from repro.warehouse import SchemaVersionError, Warehouse, render_comparison

    warehouse = Warehouse(args.db)
    try:
        report = warehouse.compare(
            args.run_a,
            args.run_b,
            metrics=args.metric or None,
            by=args.by,
            threshold=args.threshold / 100.0,
            higher_is_better=args.higher_is_better,
            scenario=args.scenario,
        )
    except (LookupError, SchemaVersionError) as error:
        raise SystemExit(f"error: {error}") from None
    output = (
        json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.format == "json"
        else render_comparison(report)
    )
    if args.fail_on_regression and report.regressions:
        print(output)
        raise SystemExit(
            f"error: {len(report.regressions)} metric regression(s) beyond "
            f"{args.threshold:g}%"
        )
    return output


def _run_trace(args: argparse.Namespace) -> str:
    import json

    from repro.telemetry.summary import render_trace_summary
    from repro.telemetry.tracing import read_trace, validate_trace

    try:
        records = read_trace(args.file)
    except OSError as error:
        raise SystemExit(f"error: cannot read trace file: {error}") from None
    except (ValueError, KeyError) as error:
        raise SystemExit(f"error: malformed trace file {args.file!r}: {error}") from None

    lines = [render_trace_summary(records, slowest=args.slowest)]
    if args.check:
        problems = validate_trace(records)
        manifest_path = os.path.join(os.path.dirname(os.path.abspath(args.file)),
                                     "manifest.json")
        if os.path.exists(manifest_path):
            # the sweep manifest sits next to the trace: cross-check the
            # trial span count against the recorded stats
            with open(manifest_path) as handle:
                manifest = json.load(handle)
            expected = (manifest.get("stats") or {}).get("num_trials")
            trial_spans = sum(1 for record in records if record.name == "trial")
            if expected is not None and trial_spans != expected:
                problems.append(
                    f"trace has {trial_spans} trial spans but the manifest "
                    f"records num_trials={expected}"
                )
            else:
                lines.append(f"manifest cross-check: {trial_spans} trial spans "
                             f"== stats.num_trials")
        if problems:
            print("\n".join(lines))
            raise SystemExit(
                "trace check FAILED:\n" + "\n".join(f"  - {p}" for p in problems)
            )
        lines.append(f"trace check OK: {len(records)} spans, schema and "
                     f"span-tree integrity verified")
    return "\n".join(lines)


def _configure_logging(args: argparse.Namespace) -> None:
    """Wire --verbose/--quiet to the stdlib logging tree (stderr)."""
    if args.verbose:
        level = logging.DEBUG
    elif args.quiet:
        level = logging.ERROR
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )
    # basicConfig is a no-op when the root logger is already configured
    # (e.g. under a test runner) — force the level so the flags still apply
    logging.getLogger().setLevel(level)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)

    if args.command == "table1":
        output = render_table1(reproduce_table1())
    elif args.command == "table2":
        output = render_table2(reproduce_table2(num_paths=args.num_paths))
    elif args.command == "figure6":
        output = render_figure6(reproduce_figure6(num_paths=args.num_paths))
    elif args.command == "table3":
        output = render_table3(reproduce_table3(num_paths=args.num_paths))
    elif args.command == "report":
        output = comparison_report(num_paths=args.num_paths)
    elif args.command == "bitwidth":
        output = _run_bitwidth(args)
    elif args.command == "lifetime":
        output = _run_lifetime(args)
    elif args.command == "estimate":
        output = _run_estimate(args)
    elif args.command == "ipcore":
        output = _run_ipcore(args)
    elif args.command == "ser":
        output = _run_ser(args)
    elif args.command == "scenarios":
        output = _run_scenarios(args)
    elif args.command == "sweep":
        output = _run_sweep(args)
    elif args.command == "serve":
        output = _run_serve(args)
    elif args.command == "submit":
        output = _run_submit(args)
    elif args.command == "trace":
        output = _run_trace(args)
    elif args.command == "ingest":
        output = _run_ingest(args)
    elif args.command == "query":
        output = _run_query(args)
    elif args.command == "compare":
        output = _run_compare(args)
    elif args.command == "export":
        from repro.analysis.export import export_all

        written = export_all(args.output_dir, num_paths=args.num_paths)
        output = "\n".join(f"{name}: {path}" for name, path in sorted(written.items()))
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        print(output)
    except BrokenPipeError:  # e.g. `repro sweep ... | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
