"""Power model: quiescent plus activity-proportional dynamic power.

The model is

``P_total = P_quiescent(device) + kappa(device) * slices * f_clk``

i.e. the dynamic power of the synthesised design is proportional to the
amount of switching logic (occupied slices) times the clock frequency, with a
per-device coefficient ``kappa`` that absorbs node capacitance, supply voltage
and average switching activity.  This is the standard CV^2 f abstraction, and
its two coefficients are calibrated against the four design-point powers the
paper reports in Table 3 (reproduced within ~3 %, see
``tests/hardware/test_paper_calibration.py``), which also reproduces the
qualitative Figure 6 behaviour: power rises with parallelism and with bit
width, the Virtex-4 always burns more than the Spartan-3, and the most serial
designs sit just above the quiescent floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.area import AreaEstimate
from repro.hardware.devices import FPGADevice
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["PowerEstimate", "estimate_power"]


@dataclass(frozen=True)
class PowerEstimate:
    """Power breakdown of one design point."""

    quiescent_power_w: float
    dynamic_power_w: float

    @property
    def total_power_w(self) -> float:
        """Total (quiescent + dynamic) power while processing."""
        return self.quiescent_power_w + self.dynamic_power_w

    @property
    def dynamic_fraction(self) -> float:
        """Share of the total power that is dynamic (0 for an idle design)."""
        total = self.total_power_w
        return self.dynamic_power_w / total if total > 0 else 0.0


def estimate_power(
    device: FPGADevice,
    area: AreaEstimate | int,
    clock_frequency_hz: float,
    activity_factor: float = 1.0,
) -> PowerEstimate:
    """Estimate the power of a design point.

    Parameters
    ----------
    device:
        Target FPGA (supplies the quiescent power and the dynamic coefficient).
    area:
        Either an :class:`~repro.hardware.area.AreaEstimate` or a raw slice count.
    clock_frequency_hz:
        Operating clock frequency.
    activity_factor:
        Relative switching activity (1.0 = the calibrated MP datapath
        activity); exposed for ablations.
    """
    slices = area.slices if isinstance(area, AreaEstimate) else int(area)
    if slices < 0:
        raise ValueError(f"slices must be >= 0, got {slices}")
    check_positive("clock_frequency_hz", clock_frequency_hz)
    check_non_negative("activity_factor", activity_factor)
    dynamic = (
        device.dynamic_power_per_slice_hz * slices * clock_frequency_hz * activity_factor
    )
    return PowerEstimate(
        quiescent_power_w=device.quiescent_power_w,
        dynamic_power_w=dynamic,
    )
