"""Timing model: clock frequency, execution time and throughput.

The execution time of one channel estimation is

``time = cycles / f_max(device, word_length)``

where the cycle count comes from the IP core's control schedule
(:class:`repro.core.ipcore.control.ControlUnit`) and the maximum clock
frequency from the device calibration table.  The paper's Table 2 "timing"
column assumes the receive vector is already in on-chip memory, and so does
this model.

Throughput follows the paper's definition — "maximum clock frequency divided
by the number of clock cycles", i.e. channel estimations per second; the
Table 2 column reports it per microsecond, and :attr:`TimingEstimate.throughput_per_us`
matches that unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ipcore.control import ControlUnit, ScheduleBreakdown
from repro.hardware.devices import FPGADevice
from repro.utils.validation import check_integer

__all__ = [
    "TimingEstimate",
    "max_clock_frequency",
    "estimate_timing",
    "timing_from_schedule",
]


@dataclass(frozen=True)
class TimingEstimate:
    """Timing of one channel estimation on one design point."""

    cycles: int
    clock_frequency_hz: float
    execution_time_s: float

    @property
    def execution_time_us(self) -> float:
        """Execution time in microseconds (the paper's Table 2 unit)."""
        return self.execution_time_s * 1e6

    @property
    def throughput_hz(self) -> float:
        """Channel estimations per second (f_max / cycles)."""
        return self.clock_frequency_hz / self.cycles

    @property
    def throughput_per_us(self) -> float:
        """Channel estimations per microsecond (the unit of the Table 2 column)."""
        return self.throughput_hz * 1e-6

    def meets_deadline(self, deadline_s: float) -> bool:
        """True if the estimation finishes within ``deadline_s`` (e.g. 22.4 ms)."""
        return self.execution_time_s <= deadline_s


def max_clock_frequency(device: FPGADevice, word_length: int) -> float:
    """Maximum clock frequency of the IP core on ``device`` at ``word_length`` bits."""
    return device.max_clock_hz(word_length)


def timing_from_schedule(
    device: FPGADevice, schedule: ScheduleBreakdown, word_length: int
) -> TimingEstimate:
    """Turn a closed-form control schedule into a timing estimate.

    The IP core's schedule depends only on the geometry (never on the data),
    so a single :class:`~repro.core.ipcore.control.ScheduleBreakdown` —
    e.g. the one every trial of a :class:`~repro.core.ipcore.batch.BatchIPCoreRun`
    shares — prices a whole batch of estimations on ``device``.
    """
    cycles = schedule.total_cycles
    clock = max_clock_frequency(device, word_length)
    return TimingEstimate(
        cycles=cycles,
        clock_frequency_hz=clock,
        execution_time_s=cycles / clock,
    )


def estimate_timing(
    device: FPGADevice,
    num_fc_blocks: int,
    word_length: int,
    num_paths: int = 6,
    num_delays: int = 112,
    window_length: int = 224,
    **control_overrides: int,
) -> TimingEstimate:
    """Estimate cycles, clock and execution time for a design point.

    ``control_overrides`` are forwarded to the cycle model (e.g.
    ``qgen_cycles_per_iteration``) for sensitivity studies.
    """
    check_integer("num_paths", num_paths, minimum=1)
    control = ControlUnit(
        num_delays=num_delays,
        window_length=window_length,
        num_fc_blocks=num_fc_blocks,
        num_paths=num_paths,
        **control_overrides,
    )
    return timing_from_schedule(device, control.schedule(), word_length)
