"""Cycle-cost models of the sequential processor baselines.

Two baselines appear in Table 3:

* the **TI TMS320C6713** floating-point VLIW DSP (the AquaModem's original
  processor), whose execution time the paper measured as ~78 us per estimated
  coefficient and whose power TI's spreadsheet estimator put at 1.07 W;
* a **MicroBlaze** 32-bit soft-core microprocessor, whose execution time was
  measured with an embedded timer at 6341.84 us.

Neither processor is available here, so each is modelled as a sequential
machine with per-operation cycle costs applied to the operation counts of
:func:`repro.hardware.opcounts.matching_pursuit_operation_counts`:

``cycles = sum_op count_op * cost_op + inner_loop_iterations * loop_overhead``

The cost constants are chosen from the architectures (the C6713 dual-issues
floating-point MACs, so arithmetic costs ~0.5 cycles; the MicroBlaze performs
floating point in multi-cycle software/FPU sequences) and land within ~1 % of
the paper's measured times for the AquaModem workload — see
``tests/hardware/test_paper_calibration.py``.

Note on MicroBlaze power: Table 3 lists 0.38 W but also lists 2000.40 uJ for
6341.84 us, which implies 0.3155 W; the 210.57x headline ratio is derived from
the energy number, so the model is calibrated to the energy-consistent power
and the discrepancy is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.energy import EnergyEstimate
from repro.hardware.opcounts import OperationCounts, matching_pursuit_operation_counts
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "ProcessorModel",
    "ProcessorImplementation",
    "ti_c6713",
    "microblaze_soft_core",
]


@dataclass(frozen=True)
class ProcessorModel:
    """A sequential processor characterised by per-operation cycle costs.

    Parameters
    ----------
    name:
        Human-readable platform name.
    clock_hz:
        Core clock frequency.
    cycles_per_multiply, cycles_per_addition, cycles_per_comparison,
    cycles_per_memory_access:
        Average cost of each primitive operation (fractional values model
        multi-issue pipelines).
    cycles_per_loop_iteration:
        Loop control / branch overhead charged once per inner-loop iteration.
    active_power_w:
        Power drawn while executing the workload.
    idle_power_w:
        Power drawn in the post-processing idle mode.
    word_length:
        Native arithmetic width (bits) — informational, used in reports.
    """

    name: str
    clock_hz: float
    cycles_per_multiply: float
    cycles_per_addition: float
    cycles_per_comparison: float
    cycles_per_memory_access: float
    cycles_per_loop_iteration: float
    active_power_w: float
    idle_power_w: float = 0.0
    word_length: int = 32

    def __post_init__(self) -> None:
        check_positive("clock_hz", self.clock_hz)
        check_non_negative("cycles_per_multiply", self.cycles_per_multiply)
        check_non_negative("cycles_per_addition", self.cycles_per_addition)
        check_non_negative("cycles_per_comparison", self.cycles_per_comparison)
        check_non_negative("cycles_per_memory_access", self.cycles_per_memory_access)
        check_non_negative("cycles_per_loop_iteration", self.cycles_per_loop_iteration)
        check_positive("active_power_w", self.active_power_w)
        check_non_negative("idle_power_w", self.idle_power_w)

    # ------------------------------------------------------------------ #
    def cycles(self, ops: OperationCounts) -> float:
        """Estimated cycles to execute a workload with the given operation counts."""
        return (
            ops.multiplies * self.cycles_per_multiply
            + ops.additions * self.cycles_per_addition
            + ops.comparisons * self.cycles_per_comparison
            + ops.memory_accesses * self.cycles_per_memory_access
            + ops.inner_loop_iterations * self.cycles_per_loop_iteration
        )

    def execution_time_s(self, ops: OperationCounts) -> float:
        """Estimated execution time in seconds."""
        return self.cycles(ops) / self.clock_hz

    def energy(self, ops: OperationCounts) -> EnergyEstimate:
        """Energy to execute the workload once (idle mode afterwards)."""
        time_s = self.execution_time_s(ops)
        return EnergyEstimate(
            energy_j=self.active_power_w * time_s,
            power_w=self.active_power_w,
            execution_time_s=time_s,
        )


@dataclass
class ProcessorImplementation:
    """A processor model applied to the MP workload (the Table 3 rows).

    Parameters
    ----------
    model:
        The processor.
    num_delays, window_length, num_paths:
        Workload geometry (AquaModem defaults).
    """

    model: ProcessorModel
    num_delays: int = 112
    window_length: int = 224
    num_paths: int = 6

    @property
    def operation_counts(self) -> OperationCounts:
        """The MP operation counts for this workload geometry."""
        if not hasattr(self, "_ops"):
            self._ops = matching_pursuit_operation_counts(
                self.num_delays, self.window_length, self.num_paths
            )
        return self._ops

    @property
    def execution_time_s(self) -> float:
        """Execution time of one channel estimation."""
        return self.model.execution_time_s(self.operation_counts)

    @property
    def execution_time_us(self) -> float:
        """Execution time in microseconds."""
        return self.execution_time_s * 1e6

    @property
    def time_per_coefficient_us(self) -> float:
        """Average time per estimated coefficient (the paper's DSP measurement unit)."""
        return self.execution_time_us / self.num_paths

    @property
    def power_w(self) -> float:
        """Active power while processing."""
        return self.model.active_power_w

    @property
    def energy(self) -> EnergyEstimate:
        """Energy per channel estimation."""
        return self.model.energy(self.operation_counts)

    @property
    def label(self) -> str:
        """Human-readable platform label."""
        return f"{self.model.name} {self.model.word_length}bit"

    def report_row(self) -> dict[str, float | str | int]:
        """Flat dictionary of the modelled quantities (one Table 3 row)."""
        return {
            "platform": self.model.name,
            "word_length": self.model.word_length,
            "clock_mhz": self.model.clock_hz / 1e6,
            "time_us": self.execution_time_us,
            "power_w": self.power_w,
            "energy_uj": self.energy.energy_uj,
        }


# --------------------------------------------------------------------------- #
# Calibrated baselines
# --------------------------------------------------------------------------- #
def ti_c6713(clock_hz: float = 225e6, active_power_w: float = 1.07) -> ProcessorModel:
    """The TI TMS320C6713 floating-point DSP baseline.

    The C6713 issues up to two floating-point multiplies and two adds per
    cycle from its eight functional units, hence the 0.5-cycle average costs;
    the 1-cycle per-iteration overhead covers loop control and the imperfect
    software pipelining of the measured implementation.
    """
    return ProcessorModel(
        name="TI C6713 DSP",
        clock_hz=clock_hz,
        cycles_per_multiply=0.5,
        cycles_per_addition=0.5,
        cycles_per_comparison=0.5,
        cycles_per_memory_access=0.5,
        cycles_per_loop_iteration=1.0,
        active_power_w=active_power_w,
        idle_power_w=0.15,
        word_length=32,
    )


def microblaze_soft_core(clock_hz: float = 100e6, active_power_w: float = 0.3155) -> ProcessorModel:
    """The MicroBlaze 32-bit soft-core baseline.

    Floating-point operations take multiple cycles (the measured design used
    the single-precision sequences typical of the soft core), memory accesses
    go over the LMB at one cycle each, and every inner-loop iteration pays a
    two-cycle branch penalty — the paper attributes the platform's very high
    latency to exactly this lack of specialised DSP hardware.

    The default ``active_power_w`` of 0.3155 W is the value consistent with
    the paper's reported 2000.40 uJ / 6341.84 us (Table 3 also prints 0.38 W;
    see the module docstring).
    """
    return ProcessorModel(
        name="MicroBlaze",
        clock_hz=clock_hz,
        cycles_per_multiply=6.0,
        cycles_per_addition=4.0,
        cycles_per_comparison=1.0,
        cycles_per_memory_access=1.0,
        cycles_per_loop_iteration=2.0,
        active_power_w=active_power_w,
        idle_power_w=0.10,
        word_length=32,
    )
