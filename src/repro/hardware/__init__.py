"""Hardware platform models: FPGA devices, area/timing/power/energy estimation,
and instruction-cost models for the DSP and microcontroller baselines.

The paper obtained its numbers from Xilinx ISE 9.1 synthesis reports, the
Xilinx Power Estimator, TI's spreadsheet power estimator and an embedded
timer.  None of those tools are available here, so this subpackage provides
*calibrated analytical models* of the same quantities (see DESIGN.md §2):

* :mod:`repro.hardware.devices` — the FPGA device database (resources,
  quiescent power, per-slice dynamic-power coefficient, clock calibration).
* :mod:`repro.hardware.area` — slices / DSP48 / BRAM usage of an IP-core
  configuration, with a per-device feasibility check.
* :mod:`repro.hardware.timing` — maximum clock frequency and execution time.
* :mod:`repro.hardware.power` — quiescent + dynamic power.
* :mod:`repro.hardware.energy` — energy per estimation and duty-cycled
  average power.
* :mod:`repro.hardware.fpga` — :class:`FPGAImplementation`, the one-stop
  evaluation of a design point (used by the DSE engine).
* :mod:`repro.hardware.opcounts` — operation counts of the MP workload.
* :mod:`repro.hardware.processors` — cycle-cost models of the TI C6713 DSP
  and the MicroBlaze soft core.
* :mod:`repro.hardware.comparison` — the Table 3 platform comparison.
"""

from repro.hardware.devices import FPGADevice, VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000, DEVICE_LIBRARY, get_device
from repro.hardware.area import AreaEstimate, estimate_area, is_feasible
from repro.hardware.timing import TimingEstimate, max_clock_frequency, estimate_timing
from repro.hardware.power import PowerEstimate, estimate_power
from repro.hardware.energy import EnergyEstimate, estimate_energy, duty_cycled_average_power
from repro.hardware.fpga import FPGAImplementation
from repro.hardware.opcounts import OperationCounts, matching_pursuit_operation_counts
from repro.hardware.processors import ProcessorModel, ProcessorImplementation, ti_c6713, microblaze_soft_core
from repro.hardware.comparison import PlatformComparison, PlatformResult, compare_platforms
from repro.hardware.reconfiguration import (
    ReconfigurationModel,
    amortized_energy_per_estimation,
    break_even_estimations,
)
from repro.hardware.asic import ASICModel, ASICImplementation, cost_crossover_volume

__all__ = [
    "FPGADevice",
    "VIRTEX4_XC4VSX55",
    "SPARTAN3_XC3S5000",
    "DEVICE_LIBRARY",
    "get_device",
    "AreaEstimate",
    "estimate_area",
    "is_feasible",
    "TimingEstimate",
    "max_clock_frequency",
    "estimate_timing",
    "PowerEstimate",
    "estimate_power",
    "EnergyEstimate",
    "estimate_energy",
    "duty_cycled_average_power",
    "FPGAImplementation",
    "OperationCounts",
    "matching_pursuit_operation_counts",
    "ProcessorModel",
    "ProcessorImplementation",
    "ti_c6713",
    "microblaze_soft_core",
    "PlatformComparison",
    "PlatformResult",
    "compare_platforms",
    "ReconfigurationModel",
    "amortized_energy_per_estimation",
    "break_even_estimations",
    "ASICModel",
    "ASICImplementation",
    "cost_crossover_volume",
]
