"""Area model: slices, DSP48 tiles and block RAM of an IP-core configuration.

Calibration (DESIGN.md §2): the Table 2 area figures are reproduced exactly by

``slices = ceil(P * slices_per_fc_block(device, bits))``

with the per-device calibration tables stored on :class:`~repro.hardware.devices.FPGADevice`.
Each FC block uses two dedicated multiplier tiles (one each for the real and
imaginary datapaths), so the fully parallel design needs 224 DSP48s — which is
why it cannot be placed on the Spartan-3 xc3s5000 (104 available), exactly as
the paper notes under Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.devices import FPGADevice
from repro.utils.validation import check_integer

__all__ = ["AreaEstimate", "estimate_area", "is_feasible", "DSP48_PER_FC_BLOCK"]

#: Dedicated multiplier tiles per FC block (real + imaginary datapath).
DSP48_PER_FC_BLOCK = 2

#: Number of values held in block RAM per delay column: one column of S
#: (window samples), one column of A (num_delays values) and one element of a.
def _storage_values_per_column(window_length: int, num_delays: int) -> int:
    return window_length + num_delays + 1


@dataclass(frozen=True)
class AreaEstimate:
    """Resource usage of one IP-core configuration on one device.

    Attributes
    ----------
    slices:
        Occupied logic slices.
    dsp48:
        Dedicated multiplier tiles used.
    bram_blocks:
        Block RAMs used for the S/A/a storage.
    storage_bits:
        Total bits of waveform-matrix storage (the 1208 kbit figure of
        Section IV.C corresponds to 32-bit storage).
    feasible:
        True if every resource fits on the device.
    limiting_resources:
        Names of the resources that overflow (empty when feasible).
    """

    slices: int
    dsp48: int
    bram_blocks: int
    storage_bits: int
    feasible: bool
    limiting_resources: tuple[str, ...] = ()


def estimate_area(
    device: FPGADevice,
    num_fc_blocks: int,
    word_length: int,
    num_delays: int = 112,
    window_length: int = 224,
) -> AreaEstimate:
    """Estimate the resources of an IP core with ``num_fc_blocks`` at ``word_length`` bits.

    Parameters
    ----------
    device:
        Target FPGA.
    num_fc_blocks:
        Level of parallelism P.
    word_length:
        Datapath / storage width in bits.
    num_delays, window_length:
        Problem geometry (112 and 224 for the AquaModem).
    """
    check_integer("num_fc_blocks", num_fc_blocks, minimum=1)
    check_integer("word_length", word_length, minimum=2, maximum=64)
    check_integer("num_delays", num_delays, minimum=1)
    check_integer("window_length", window_length, minimum=1)
    if num_delays % num_fc_blocks != 0:
        raise ValueError(
            f"num_fc_blocks ({num_fc_blocks}) must divide num_delays ({num_delays})"
        )

    slices = math.ceil(num_fc_blocks * device.fc_block_slices(word_length))
    dsp48 = DSP48_PER_FC_BLOCK * num_fc_blocks

    storage_values = num_delays * _storage_values_per_column(window_length, num_delays)
    storage_bits = storage_values * word_length
    # Each FC block needs at least one BRAM for its private column storage;
    # beyond that, capacity dictates the count.
    capacity_blocks = math.ceil(storage_bits / (device.bram_kbits * 1024.0))
    bram_blocks = max(num_fc_blocks, capacity_blocks)

    limiting: list[str] = []
    if slices > device.slices:
        limiting.append("slices")
    if dsp48 > device.dsp48:
        limiting.append("dsp48")
    if bram_blocks > device.bram_blocks:
        limiting.append("bram")

    return AreaEstimate(
        slices=slices,
        dsp48=dsp48,
        bram_blocks=bram_blocks,
        storage_bits=storage_bits,
        feasible=not limiting,
        limiting_resources=tuple(limiting),
    )


def is_feasible(
    device: FPGADevice,
    num_fc_blocks: int,
    word_length: int,
    num_delays: int = 112,
    window_length: int = 224,
) -> bool:
    """True if the configuration fits on the device (slices, DSP48 and BRAM)."""
    return estimate_area(device, num_fc_blocks, word_length, num_delays, window_length).feasible
