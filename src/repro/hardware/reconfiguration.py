"""FPGA reconfiguration (bitstream load) energy and its amortisation.

The paper's Figure 6 assumptions explicitly exclude "the cost of
reconfiguration on power up": a duty-cycled node that powers the FPGA down
between processing bursts must reload the configuration bitstream before the
next burst, which costs time and energy that the DSP and microcontroller do
not pay.  This module models that cost so the exclusion can be quantified:

* bitstream size is proportional to the device's configuration memory (a
  per-device constant, roughly proportional to logic capacity);
* configuration time = bitstream bits / configuration throughput (SelectMAP /
  slave-serial interfaces of the period move tens of Mbit/s);
* configuration energy = configuration time x (configuration controller power
  + device inrush/startup power).

From these, :func:`amortized_energy_per_estimation` answers the design
question the paper leaves open: after how many back-to-back channel
estimations per power-up does the FPGA still beat the DSP / microcontroller
once the reconfiguration energy is charged?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.devices import FPGADevice
from repro.utils.validation import check_integer, check_non_negative, check_positive

__all__ = [
    "ReconfigurationModel",
    "amortized_energy_per_estimation",
    "break_even_estimations",
]

#: Approximate full-bitstream sizes (bits) for the two evaluated devices.
#: (Virtex-4 SX55: ~22.7 Mbit; Spartan-3 5000: ~13.3 Mbit — datasheet-order
#: values; exposed as defaults and overridable per model instance.)
DEFAULT_BITSTREAM_BITS: dict[str, float] = {
    "xc4vsx55": 22.7e6,
    "xc3s5000": 13.3e6,
}


@dataclass(frozen=True)
class ReconfigurationModel:
    """Energy/time cost of one full configuration of a device.

    Parameters
    ----------
    device:
        Target FPGA.
    bitstream_bits:
        Full configuration bitstream size; defaults to a per-device estimate.
    configuration_throughput_bps:
        Configuration interface throughput (50 Mbit/s ~ 8-bit SelectMAP at
        ~6 MHz, a conservative period-typical value).
    configuration_power_w:
        Power drawn during configuration (controller + device inrush),
        in addition to the device's quiescent power.
    """

    device: FPGADevice
    bitstream_bits: float | None = None
    configuration_throughput_bps: float = 50e6
    configuration_power_w: float = 0.35

    def __post_init__(self) -> None:
        check_positive("configuration_throughput_bps", self.configuration_throughput_bps)
        check_non_negative("configuration_power_w", self.configuration_power_w)
        if self.bitstream_bits is not None:
            check_positive("bitstream_bits", self.bitstream_bits)

    @property
    def effective_bitstream_bits(self) -> float:
        """The bitstream size used by the model (explicit or per-device default)."""
        if self.bitstream_bits is not None:
            return self.bitstream_bits
        return DEFAULT_BITSTREAM_BITS.get(self.device.name, 15e6)

    @property
    def configuration_time_s(self) -> float:
        """Time to load the full bitstream."""
        return self.effective_bitstream_bits / self.configuration_throughput_bps

    @property
    def configuration_energy_j(self) -> float:
        """Energy of one configuration (quiescent + configuration overhead)."""
        power = self.device.quiescent_power_w + self.configuration_power_w
        return power * self.configuration_time_s


def amortized_energy_per_estimation(
    processing_energy_j: float,
    reconfiguration: ReconfigurationModel,
    estimations_per_power_up: int,
) -> float:
    """Average energy per estimation once the bitstream load is amortised.

    ``estimations_per_power_up`` is the number of channel estimations the node
    performs between powering the FPGA up and shutting it down again.
    """
    check_non_negative("processing_energy_j", processing_energy_j)
    check_integer("estimations_per_power_up", estimations_per_power_up, minimum=1)
    overhead = reconfiguration.configuration_energy_j / estimations_per_power_up
    return processing_energy_j + overhead


def break_even_estimations(
    fpga_processing_energy_j: float,
    competitor_energy_j: float,
    reconfiguration: ReconfigurationModel,
) -> int:
    """Estimations per power-up needed before the FPGA still beats a competitor.

    Returns the smallest integer ``n`` such that

    ``fpga_processing_energy + reconfiguration_energy / n <= competitor_energy``.

    Raises ``ValueError`` if the FPGA cannot win even with infinite
    amortisation (i.e. its per-estimation energy alone already exceeds the
    competitor's).
    """
    check_non_negative("fpga_processing_energy_j", fpga_processing_energy_j)
    check_positive("competitor_energy_j", competitor_energy_j)
    margin = competitor_energy_j - fpga_processing_energy_j
    if margin <= 0:
        raise ValueError(
            "the FPGA design's per-estimation energy already exceeds the competitor's; "
            "no amount of amortisation breaks even"
        )
    import math

    return max(1, math.ceil(reconfiguration.configuration_energy_j / margin))
