"""ASIC alternative: energy and cost model (the paper's Section VI discussion).

The conclusion of the paper weighs a fourth platform: an ASIC "like
reconfigurable hardware allows for a custom, highly parallel implementation
that can also optimize for energy efficiency", but is "not reconfigurable and
[is] not [a] commodity off the shelf part, making [it] an expensive option for
a low-cost modem".  This module quantifies both halves of that sentence:

* **Energy** — an ASIC implementation of the same Filter-and-Cancel
  architecture at the same 90 nm node avoids the FPGA's configuration-fabric
  overhead.  The standard rule of thumb (Kuon & Rose's measured FPGA-to-ASIC
  gaps for 90 nm) is roughly 12x lower dynamic power, 3-4x higher clock and a
  quiescent power dominated by leakage of a much smaller die; the model takes
  those as parameters.
* **Cost** — a mask set plus design effort (non-recurring engineering, NRE)
  amortised over the production volume, against the FPGA's per-unit price.
  The cross-over volume is what makes the ASIC "an expensive option" for the
  10s-to-100s-of-nodes deployments the paper targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.energy import EnergyEstimate
from repro.hardware.fpga import FPGAImplementation
from repro.utils.validation import check_integer, check_non_negative, check_positive

__all__ = ["ASICModel", "ASICImplementation", "cost_crossover_volume"]


@dataclass(frozen=True)
class ASICModel:
    """Scaling factors from an FPGA implementation to a same-node ASIC.

    Parameters
    ----------
    dynamic_power_ratio:
        FPGA dynamic power divided by ASIC dynamic power for the same logic
        (Kuon & Rose measure ~12x at 90 nm).
    clock_speedup:
        ASIC clock frequency relative to the FPGA's (~3.5x).
    quiescent_power_w:
        ASIC leakage power (a few mW for a design of this size at 90 nm).
    nre_cost_usd:
        Non-recurring engineering cost: mask set + design/verification effort.
    unit_cost_usd:
        Per-die production cost at volume.
    """

    dynamic_power_ratio: float = 12.0
    clock_speedup: float = 3.5
    quiescent_power_w: float = 0.005
    nre_cost_usd: float = 250_000.0
    unit_cost_usd: float = 5.0

    def __post_init__(self) -> None:
        check_positive("dynamic_power_ratio", self.dynamic_power_ratio)
        check_positive("clock_speedup", self.clock_speedup)
        check_non_negative("quiescent_power_w", self.quiescent_power_w)
        check_non_negative("nre_cost_usd", self.nre_cost_usd)
        check_non_negative("unit_cost_usd", self.unit_cost_usd)


@dataclass
class ASICImplementation:
    """An ASIC realisation derived from an FPGA design point.

    The architecture (number of FC blocks, word length, cycle schedule) is
    inherited from the FPGA implementation; only the circuit-level constants
    change.
    """

    fpga: FPGAImplementation
    model: ASICModel = ASICModel()

    @property
    def clock_frequency_hz(self) -> float:
        """ASIC clock: the FPGA clock scaled by the speed-up factor."""
        return self.fpga.timing.clock_frequency_hz * self.model.clock_speedup

    @property
    def execution_time_s(self) -> float:
        """Same cycle count as the FPGA schedule, at the ASIC clock."""
        return self.fpga.timing.cycles / self.clock_frequency_hz

    @property
    def power_w(self) -> float:
        """ASIC processing power: scaled dynamic power plus leakage.

        Dynamic power scales with the clock, so the ratio is applied to the
        FPGA's dynamic power re-rated to the ASIC clock.
        """
        fpga_dynamic_at_asic_clock = (
            self.fpga.power.dynamic_power_w * self.model.clock_speedup
        )
        return self.model.quiescent_power_w + fpga_dynamic_at_asic_clock / self.model.dynamic_power_ratio

    @property
    def energy(self) -> EnergyEstimate:
        """Energy per channel estimation."""
        return EnergyEstimate(
            energy_j=self.power_w * self.execution_time_s,
            power_w=self.power_w,
            execution_time_s=self.execution_time_s,
        )

    @property
    def label(self) -> str:
        """Human-readable label derived from the FPGA design point."""
        return f"ASIC ({self.fpga.num_fc_blocks}FC {self.fpga.word_length}bit)"

    def unit_cost_usd(self, volume: int) -> float:
        """Per-node cost at a given production volume (NRE amortised)."""
        check_integer("volume", volume, minimum=1)
        return self.model.unit_cost_usd + self.model.nre_cost_usd / volume


def cost_crossover_volume(
    asic: ASICImplementation,
    fpga_unit_cost_usd: float,
) -> int:
    """Production volume at which the ASIC's per-node cost drops below the FPGA's.

    The paper targets deployments of 10s-100s of nodes; the cross-over is
    typically orders of magnitude beyond that, which is exactly why the paper
    dismisses the ASIC for a low-cost modem.
    """
    check_positive("fpga_unit_cost_usd", fpga_unit_cost_usd)
    margin = fpga_unit_cost_usd - asic.model.unit_cost_usd
    if margin <= 0:
        raise ValueError(
            "the ASIC's marginal unit cost is not below the FPGA's; no cross-over exists"
        )
    return max(1, math.ceil(asic.model.nre_cost_usd / margin))
