"""One-stop evaluation of an FPGA design point.

:class:`FPGAImplementation` bundles the area, timing, power and energy models
for a (device, parallelism, bit-width) triple.  This is the object the
design-space exploration engine enumerates, and its report rows are what the
Table 2 / Figure 6 / Table 3 benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.area import AreaEstimate, estimate_area
from repro.hardware.devices import FPGADevice
from repro.hardware.energy import EnergyEstimate, estimate_energy
from repro.hardware.power import PowerEstimate, estimate_power
from repro.hardware.timing import TimingEstimate, estimate_timing
from repro.utils.validation import check_integer

__all__ = ["FPGAImplementation"]


@dataclass
class FPGAImplementation:
    """An IP-core configuration mapped onto a specific FPGA device.

    Parameters
    ----------
    device:
        Target FPGA.
    num_fc_blocks:
        Level of parallelism P.
    word_length:
        Datapath width in bits.
    num_paths:
        MP iterations Nf (6 for the AquaModem field configuration).
    num_delays, window_length:
        Problem geometry (112 / 224 for the AquaModem).
    control_overrides:
        Optional overrides of the cycle model constants.
    """

    device: FPGADevice
    num_fc_blocks: int
    word_length: int
    num_paths: int = 6
    num_delays: int = 112
    window_length: int = 224
    control_overrides: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_integer("num_fc_blocks", self.num_fc_blocks, minimum=1)
        check_integer("word_length", self.word_length, minimum=2, maximum=64)
        check_integer("num_paths", self.num_paths, minimum=1)
        if self.num_delays % self.num_fc_blocks != 0:
            raise ValueError(
                f"num_fc_blocks ({self.num_fc_blocks}) must divide num_delays ({self.num_delays})"
            )

    # ------------------------------------------------------------------ #
    # Model evaluations (each cached on first use)
    # ------------------------------------------------------------------ #
    @property
    def area(self) -> AreaEstimate:
        """Resource usage on the target device."""
        if not hasattr(self, "_area"):
            self._area = estimate_area(
                self.device,
                self.num_fc_blocks,
                self.word_length,
                num_delays=self.num_delays,
                window_length=self.window_length,
            )
        return self._area

    @property
    def timing(self) -> TimingEstimate:
        """Cycle count, clock frequency and execution time."""
        if not hasattr(self, "_timing"):
            self._timing = estimate_timing(
                self.device,
                self.num_fc_blocks,
                self.word_length,
                num_paths=self.num_paths,
                num_delays=self.num_delays,
                window_length=self.window_length,
                **self.control_overrides,
            )
        return self._timing

    @property
    def power(self) -> PowerEstimate:
        """Quiescent + dynamic power while processing."""
        if not hasattr(self, "_power"):
            self._power = estimate_power(
                self.device, self.area, self.timing.clock_frequency_hz
            )
        return self._power

    @property
    def energy(self) -> EnergyEstimate:
        """Energy per channel estimation."""
        if not hasattr(self, "_energy"):
            self._energy = estimate_energy(self.power, self.timing)
        return self._energy

    # ------------------------------------------------------------------ #
    @property
    def is_feasible(self) -> bool:
        """True if the configuration fits on the device."""
        return self.area.feasible

    @property
    def label(self) -> str:
        """Human-readable design-point label, e.g. ``'Virtex-4 112FC 8bit'``."""
        return f"{self.device.family} {self.num_fc_blocks}FC {self.word_length}bit"

    def report_row(self) -> dict[str, float | int | str | bool]:
        """Flat dictionary of every modelled quantity (one table row)."""
        return {
            "device": self.device.family,
            "part": self.device.name,
            "fc_blocks": self.num_fc_blocks,
            "word_length": self.word_length,
            "feasible": self.is_feasible,
            "slices": self.area.slices,
            "dsp48": self.area.dsp48,
            "bram": self.area.bram_blocks,
            "cycles": self.timing.cycles,
            "clock_mhz": self.timing.clock_frequency_hz / 1e6,
            "time_us": self.timing.execution_time_us,
            "throughput_per_us": self.timing.throughput_per_us,
            "power_w": self.power.total_power_w,
            "dynamic_power_w": self.power.dynamic_power_w,
            "energy_uj": self.energy.energy_uj,
        }
