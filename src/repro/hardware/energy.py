"""Energy model: energy per channel estimation and duty-cycled average power.

Following the paper (Figure 6 discussion), the energy of one channel
estimation is simply ``power x execution time``, under the assumption that the
processor drops into an idle / power-down mode immediately after processing
(and neglecting reconfiguration energy at power-up — both assumptions are
stated explicitly in the paper and therefore retained here).

For the sensor-network extension (experiment E9) a duty-cycled view is also
provided: a node that performs ``estimations_per_second`` channel estimations
spends the rest of the time in an idle state drawing ``idle_power_w``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.power import PowerEstimate
from repro.hardware.timing import TimingEstimate
from repro.utils.validation import check_non_negative

__all__ = ["EnergyEstimate", "estimate_energy", "duty_cycled_average_power"]


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy of one channel estimation on one design point."""

    energy_j: float
    power_w: float
    execution_time_s: float

    @property
    def energy_uj(self) -> float:
        """Energy in microjoules (the paper's Figure 6 / Table 3 unit)."""
        return self.energy_j * 1e6


def estimate_energy(power: PowerEstimate | float, timing: TimingEstimate | float) -> EnergyEstimate:
    """Energy per estimation: total processing power times execution time.

    Accepts either the estimate objects or raw floats (watts / seconds).
    """
    power_w = power.total_power_w if isinstance(power, PowerEstimate) else float(power)
    time_s = (
        timing.execution_time_s if isinstance(timing, TimingEstimate) else float(timing)
    )
    check_non_negative("power_w", power_w)
    check_non_negative("time_s", time_s)
    return EnergyEstimate(energy_j=power_w * time_s, power_w=power_w, execution_time_s=time_s)


def duty_cycled_average_power(
    energy_per_estimation_j: float,
    estimations_per_second: float,
    idle_power_w: float = 0.0,
) -> float:
    """Average power of a node performing periodic channel estimations.

    ``idle_power_w`` is drawn during the fraction of time the processor is not
    actively estimating; the active energy is amortised over the period.  If
    the requested rate cannot be sustained (active time per estimation exceeds
    the period) a ``ValueError`` is raised by the caller's timing check — this
    helper only does the energy arithmetic.
    """
    check_non_negative("energy_per_estimation_j", energy_per_estimation_j)
    check_non_negative("estimations_per_second", estimations_per_second)
    check_non_negative("idle_power_w", idle_power_w)
    return energy_per_estimation_j * estimations_per_second + idle_power_w
