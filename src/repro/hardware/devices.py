"""FPGA device database.

The paper evaluates the largest members of two 90 nm Xilinx families:

* **Virtex-4 xc4vsx55** — the DSP-oriented Virtex-4 part: plenty of DSP48
  multiply-accumulate tiles (512) and block RAM, faster fabric, higher
  quiescent power (0.723 W per the paper's Figure 6 discussion).
* **Spartan-3 xc3s5000** — the low-cost family flagship: far fewer dedicated
  multipliers (104), slower fabric, much lower quiescent power (0.335 W).

Each :class:`FPGADevice` carries the resource totals used by the feasibility
check, the quiescent power, a per-slice dynamic-power coefficient and a
clock-frequency calibration table (per datapath bit width), all calibrated so
that the area/timing/power models reproduce the paper's Table 2, Table 3 and
Figure 6 (see DESIGN.md §2 and ``tests/hardware/test_paper_calibration.py``).

A couple of additional family members are included so the DSE engine can be
exercised beyond the paper's two devices (smaller parts mostly demonstrate
the feasibility constraints).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_integer, check_positive

__all__ = [
    "FPGADevice",
    "VIRTEX4_XC4VSX55",
    "SPARTAN3_XC3S5000",
    "VIRTEX4_XC4VSX25",
    "SPARTAN3_XC3S1500",
    "DEVICE_LIBRARY",
    "get_device",
]


@dataclass(frozen=True)
class FPGADevice:
    """Static description of one FPGA device.

    Parameters
    ----------
    name:
        Device part name (e.g. ``"xc4vsx55"``).
    family:
        Device family (e.g. ``"Virtex-4"``).
    technology_nm:
        Process node in nanometres.
    slices:
        Number of logic slices available.
    dsp48:
        Number of dedicated multiply-accumulate tiles (DSP48s on Virtex-4,
        18x18 multipliers on Spartan-3 — the paper refers to both as DSP48
        resources).
    bram_blocks:
        Number of 18 kbit block RAMs.
    bram_kbits:
        Capacity of one block RAM in kbit.
    quiescent_power_w:
        Static power drawn with the device configured but idle.
    dynamic_power_per_slice_hz:
        Dynamic-power coefficient kappa in W per (occupied slice x Hz of
        clock); calibrated against the paper's reported design-point powers.
    slices_per_fc_block:
        Calibration table: slices consumed by one Filter-and-Cancel block at
        each characterised datapath bit width.
    clock_frequency_hz:
        Calibration table: achievable clock frequency at each characterised
        datapath bit width (the critical path runs through the multiplier and
        grows with operand width).
    """

    name: str
    family: str
    technology_nm: int
    slices: int
    dsp48: int
    bram_blocks: int
    bram_kbits: float
    quiescent_power_w: float
    dynamic_power_per_slice_hz: float
    slices_per_fc_block: dict[int, float] = field(default_factory=dict)
    clock_frequency_hz: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_integer("slices", self.slices, minimum=1)
        check_integer("dsp48", self.dsp48, minimum=0)
        check_integer("bram_blocks", self.bram_blocks, minimum=0)
        check_positive("bram_kbits", self.bram_kbits)
        check_positive("quiescent_power_w", self.quiescent_power_w)
        check_positive("dynamic_power_per_slice_hz", self.dynamic_power_per_slice_hz)
        if not self.slices_per_fc_block:
            raise ValueError("slices_per_fc_block calibration table must not be empty")
        if not self.clock_frequency_hz:
            raise ValueError("clock_frequency_hz calibration table must not be empty")

    # ------------------------------------------------------------------ #
    def _interpolate(self, table: dict[int, float], bits: int) -> float:
        """Piecewise-linear interpolation / extrapolation over a calibration table."""
        points = sorted(table.items())
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        if bits <= xs[0]:
            if len(xs) == 1:
                return ys[0]
            slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
            return ys[0] + slope * (bits - xs[0])
        if bits >= xs[-1]:
            if len(xs) == 1:
                return ys[-1]
            slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
            return ys[-1] + slope * (bits - xs[-1])
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= bits <= x1:
                t = (bits - x0) / (x1 - x0)
                return y0 + t * (y1 - y0)
        raise AssertionError("unreachable")  # pragma: no cover

    def fc_block_slices(self, word_length: int) -> float:
        """Slices consumed by one FC block at the given datapath width."""
        check_integer("word_length", word_length, minimum=2, maximum=64)
        return max(self._interpolate(self.slices_per_fc_block, word_length), 1.0)

    def max_clock_hz(self, word_length: int) -> float:
        """Achievable clock frequency at the given datapath width.

        Interpolation is done on the critical-path *delay* (1/f), which grows
        roughly linearly with multiplier operand width.
        """
        check_integer("word_length", word_length, minimum=2, maximum=64)
        delay_table = {bits: 1.0 / f for bits, f in self.clock_frequency_hz.items()}
        delay = self._interpolate(delay_table, word_length)
        if delay <= 0:
            raise ValueError(f"extrapolated clock delay is non-positive for {word_length} bits")
        return 1.0 / delay

    @property
    def bram_bits(self) -> float:
        """Total on-chip block RAM capacity in bits."""
        return self.bram_blocks * self.bram_kbits * 1024.0


# --------------------------------------------------------------------------- #
# Calibrated devices (see DESIGN.md §2 for the derivation of the constants)
# --------------------------------------------------------------------------- #
VIRTEX4_XC4VSX55 = FPGADevice(
    name="xc4vsx55",
    family="Virtex-4",
    technology_nm=90,
    slices=24_576,
    dsp48=512,
    bram_blocks=320,
    bram_kbits=18.0,
    quiescent_power_w=0.723,
    dynamic_power_per_slice_hz=2.3225e-12,
    slices_per_fc_block={8: 102.75, 12: 150.75, 16: 198.75},
    clock_frequency_hz={8: 62.75e6, 12: 60.45e6, 16: 57.39e6},
)

SPARTAN3_XC3S5000 = FPGADevice(
    name="xc3s5000",
    family="Spartan-3",
    technology_nm=90,
    slices=33_280,
    dsp48=104,
    bram_blocks=104,
    bram_kbits=18.0,
    quiescent_power_w=0.335,
    dynamic_power_per_slice_hz=2.536e-12,
    slices_per_fc_block={8: 135.5, 12: 198.75, 16: 261.75},
    clock_frequency_hz={8: 40.54e6, 12: 39.80e6, 16: 37.68e6},
)

#: A mid-size Virtex-4 SX part: same fabric speed and per-slice power as the
#: flagship but half the DSP48s — useful for exercising feasibility limits.
VIRTEX4_XC4VSX25 = FPGADevice(
    name="xc4vsx25",
    family="Virtex-4",
    technology_nm=90,
    slices=10_240,
    dsp48=128,
    bram_blocks=128,
    bram_kbits=18.0,
    quiescent_power_w=0.45,
    dynamic_power_per_slice_hz=2.3225e-12,
    slices_per_fc_block={8: 102.75, 12: 150.75, 16: 198.75},
    clock_frequency_hz={8: 62.75e6, 12: 60.45e6, 16: 57.39e6},
)

#: A mid-size Spartan-3 part.
SPARTAN3_XC3S1500 = FPGADevice(
    name="xc3s1500",
    family="Spartan-3",
    technology_nm=90,
    slices=13_312,
    dsp48=32,
    bram_blocks=32,
    bram_kbits=18.0,
    quiescent_power_w=0.18,
    dynamic_power_per_slice_hz=2.536e-12,
    slices_per_fc_block={8: 135.5, 12: 198.75, 16: 261.75},
    clock_frequency_hz={8: 40.54e6, 12: 39.80e6, 16: 37.68e6},
)

#: Devices addressable by name through :func:`get_device`.
DEVICE_LIBRARY: dict[str, FPGADevice] = {
    device.name: device
    for device in (VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000, VIRTEX4_XC4VSX25, SPARTAN3_XC3S1500)
}


def get_device(name: str) -> FPGADevice:
    """Look a device up by part name (case-insensitive)."""
    key = name.lower()
    if key not in DEVICE_LIBRARY:
        raise KeyError(
            f"unknown device {name!r}; known devices: {sorted(DEVICE_LIBRARY)}"
        )
    return DEVICE_LIBRARY[key]
