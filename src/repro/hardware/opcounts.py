"""Operation counts of the Matching Pursuits workload.

The DSP and microcontroller models estimate execution time from the number of
arithmetic, comparison and memory operations the algorithm performs on a
sequential processor.  The counts below follow the straight-line
transcription of Figure 3 (see
:func:`repro.core.matching_pursuit.matching_pursuit_naive`) for a *complex*
received vector and *real* signal matrices — the data layout the paper's
implementations use:

* matched filter (steps 1-5): ``num_delays * window_length`` complex-by-real
  MAC operations, i.e. 2 real multiplies + 2 real additions each, with two
  operand loads per term;
* each of the ``num_paths`` iterations walks all ``num_delays`` columns doing
  the cancellation (2 mul + 2 add), the temporary coefficient (2 mul), the
  decision variable (2 mul + 1 add) and the running arg-max (1 compare),
  with about six memory accesses per column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_integer

__all__ = ["OperationCounts", "matching_pursuit_operation_counts"]


@dataclass(frozen=True)
class OperationCounts:
    """Primitive operation counts of one workload execution."""

    multiplies: int
    additions: int
    comparisons: int
    memory_accesses: int
    inner_loop_iterations: int

    @property
    def arithmetic_operations(self) -> int:
        """Multiplies plus additions."""
        return self.multiplies + self.additions

    @property
    def total_operations(self) -> int:
        """Every counted operation (arithmetic + comparisons + memory)."""
        return self.arithmetic_operations + self.comparisons + self.memory_accesses

    def scaled(self, factor: int) -> "OperationCounts":
        """Return counts multiplied by an integer factor (e.g. per-packet workloads)."""
        check_integer("factor", factor, minimum=0)
        return OperationCounts(
            multiplies=self.multiplies * factor,
            additions=self.additions * factor,
            comparisons=self.comparisons * factor,
            memory_accesses=self.memory_accesses * factor,
            inner_loop_iterations=self.inner_loop_iterations * factor,
        )


def matching_pursuit_operation_counts(
    num_delays: int = 112,
    window_length: int = 224,
    num_paths: int = 6,
) -> OperationCounts:
    """Operation counts of one MP channel estimation.

    Parameters
    ----------
    num_delays:
        Number of hypothesised delays (columns of S); 112 for the AquaModem.
    window_length:
        Receive-window length (rows of S); 224 for the AquaModem.
    num_paths:
        Number of MP iterations Nf.
    """
    d = check_integer("num_delays", num_delays, minimum=1)
    w = check_integer("window_length", window_length, minimum=1)
    nf = check_integer("num_paths", num_paths, minimum=1)

    # Matched filter: complex r x real S -> 2 mul + 2 add per term.
    mf_terms = d * w
    mf_multiplies = 2 * mf_terms
    mf_additions = 2 * mf_terms
    mf_memory = 2 * mf_terms          # load S[n, i] and r[n]
    mf_iterations = mf_terms

    # Per iteration, per column:
    #   cancel   V[k] -= A[k, q] * F[q]   : 2 mul, 2 add, 3 mem (A, V load; V store)
    #   G[k] = V[k] * a[k]                : 2 mul,        2 mem (a load, G store)
    #   Q[k] = Re{conj(G[k]) V[k]}        : 2 mul, 1 add, 1 mem (Q store)
    #   running arg-max                   : 1 compare
    per_column_multiplies = 6
    per_column_additions = 3
    per_column_compares = 1
    per_column_memory = 6
    iter_columns = nf * d

    return OperationCounts(
        multiplies=mf_multiplies + per_column_multiplies * iter_columns,
        additions=mf_additions + per_column_additions * iter_columns,
        comparisons=per_column_compares * iter_columns,
        memory_accesses=mf_memory + per_column_memory * iter_columns,
        inner_loop_iterations=mf_iterations + iter_columns,
    )
