"""Cross-platform comparison (the Table 3 experiment).

Builds the energy comparison between the microcontroller (MicroBlaze), the
DSP (TI C6713) and a selection of FPGA design points, reporting each
platform's execution time, power and energy along with the energy-decrease
factors relative to the microcontroller and the DSP — the paper's headline
numbers are 210x and 52x for the fully parallel 8-bit Virtex-4 design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.fpga import FPGAImplementation
from repro.hardware.processors import ProcessorImplementation, microblaze_soft_core, ti_c6713
from repro.utils.tables import AsciiTable

__all__ = ["PlatformResult", "PlatformComparison", "compare_platforms", "default_fpga_design_points"]


@dataclass(frozen=True)
class PlatformResult:
    """One platform's row of the comparison."""

    label: str
    time_us: float
    power_w: float
    energy_uj: float
    energy_decrease_vs_microcontroller: float
    energy_decrease_vs_dsp: float


@dataclass
class PlatformComparison:
    """The full comparison: baselines plus FPGA design points."""

    results: list[PlatformResult]

    def by_label(self, label_fragment: str) -> PlatformResult:
        """Return the first result whose label contains ``label_fragment``."""
        for result in self.results:
            if label_fragment.lower() in result.label.lower():
                return result
        raise KeyError(f"no platform result matching {label_fragment!r}")

    def best_energy(self) -> PlatformResult:
        """The platform with the lowest energy per estimation."""
        return min(self.results, key=lambda r: r.energy_uj)

    def render(self) -> str:
        """ASCII rendering in the layout of Table 3."""
        table = AsciiTable(
            headers=[
                "Platform",
                "Time (us)",
                "Power (W)",
                "Energy (uJ)",
                "Energy decrease (vs MicroBlaze)",
                "Energy decrease (vs DSP)",
            ],
            title="Table 3 — platform comparison (modelled)",
            float_format=".4g",
        )
        for r in self.results:
            table.add_row(
                r.label,
                r.time_us,
                r.power_w,
                r.energy_uj,
                f"{r.energy_decrease_vs_microcontroller:.2f}X",
                f"{r.energy_decrease_vs_dsp:.2f}X",
            )
        return table.render()


def default_fpga_design_points(num_paths: int = 6) -> list[FPGAImplementation]:
    """The four FPGA rows of Table 3.

    Least- and most-energy-consuming Virtex-4 and Spartan-3 IP core designs:
    the serial (1 FC block) 16-bit points and the most parallel feasible
    8-bit points (112 blocks on the Virtex-4, 14 on the Spartan-3).
    """
    from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55

    return [
        FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=1, word_length=16, num_paths=num_paths),
        FPGAImplementation(SPARTAN3_XC3S5000, num_fc_blocks=1, word_length=16, num_paths=num_paths),
        FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=112, word_length=8, num_paths=num_paths),
        FPGAImplementation(SPARTAN3_XC3S5000, num_fc_blocks=14, word_length=8, num_paths=num_paths),
    ]


def compare_platforms(
    fpga_designs: list[FPGAImplementation] | None = None,
    num_paths: int = 6,
    num_delays: int = 112,
    window_length: int = 224,
) -> PlatformComparison:
    """Build the Table 3 comparison.

    Parameters
    ----------
    fpga_designs:
        FPGA design points to include; defaults to the four points of Table 3.
    num_paths, num_delays, window_length:
        Workload geometry for the processor baselines (and the default FPGA
        points).
    """
    if fpga_designs is None:
        fpga_designs = default_fpga_design_points(num_paths=num_paths)

    microcontroller = ProcessorImplementation(
        microblaze_soft_core(), num_delays=num_delays,
        window_length=window_length, num_paths=num_paths,
    )
    dsp = ProcessorImplementation(
        ti_c6713(), num_delays=num_delays,
        window_length=window_length, num_paths=num_paths,
    )

    mb_energy = microcontroller.energy.energy_uj
    dsp_energy = dsp.energy.energy_uj

    results: list[PlatformResult] = []

    def add(label: str, time_us: float, power_w: float, energy_uj: float) -> None:
        results.append(
            PlatformResult(
                label=label,
                time_us=time_us,
                power_w=power_w,
                energy_uj=energy_uj,
                energy_decrease_vs_microcontroller=mb_energy / energy_uj,
                energy_decrease_vs_dsp=dsp_energy / energy_uj,
            )
        )

    add(microcontroller.label, microcontroller.execution_time_us,
        microcontroller.power_w, mb_energy)
    add(dsp.label, dsp.execution_time_us, dsp.power_w, dsp_energy)
    for design in fpga_designs:
        if not design.is_feasible:
            continue
        add(
            design.label,
            design.timing.execution_time_us,
            design.power.total_power_w,
            design.energy.energy_uj,
        )

    return PlatformComparison(results=results)
