"""Matched filtering and correlation primitives.

The first stage of the Matching Pursuits algorithm (steps 1-5 of Figure 3) is
a bank of matched filters: the received vector is correlated against every
column of the signal matrix ``S``.  These helpers provide the generic
operations; the MP-specific vectorised form lives in
:mod:`repro.core.matching_pursuit`.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_1d_array, ensure_2d_array

__all__ = ["matched_filter", "correlate_full", "normalized_correlation", "filter_bank_outputs"]


def matched_filter(received: np.ndarray, template: np.ndarray) -> complex:
    """Single matched-filter output: inner product of ``received`` with ``template``.

    The template is real for the AquaModem waveforms; the received signal is
    complex baseband.  Returns ``template^T @ received``.
    """
    received = ensure_1d_array("received", received, dtype=np.complex128)
    template = ensure_1d_array("template", template, dtype=np.float64)
    if received.shape[0] != template.shape[0]:
        raise ValueError(
            f"length mismatch: received {received.shape[0]} vs template {template.shape[0]}"
        )
    return complex(np.dot(template, received))


def filter_bank_outputs(received: np.ndarray, templates: np.ndarray) -> np.ndarray:
    """Matched-filter outputs against every row of ``templates`` at once.

    Vectorised equivalent of calling :func:`matched_filter` per row.
    """
    received = ensure_1d_array("received", received, dtype=np.complex128)
    templates = ensure_2d_array("templates", templates, dtype=np.float64)
    if templates.shape[1] != received.shape[0]:
        raise ValueError(
            f"template length {templates.shape[1]} does not match received length {received.shape[0]}"
        )
    return templates @ received


def correlate_full(received: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Full sliding correlation of ``received`` against ``template``.

    Returns the correlation at every alignment (length ``len(received) +
    len(template) - 1``), using FFT-based convolution for long inputs.
    """
    received = ensure_1d_array("received", received, dtype=np.complex128)
    template = ensure_1d_array("template", template, dtype=np.float64)
    flipped = template[::-1].astype(np.complex128)
    n = received.shape[0] + template.shape[0] - 1
    if n >= 256:
        size = int(2 ** np.ceil(np.log2(n)))
        spectrum = np.fft.fft(received, size) * np.fft.fft(flipped, size)
        return np.fft.ifft(spectrum)[:n]
    return np.convolve(received, flipped)


def normalized_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Normalised correlation coefficient between two vectors (0 for orthogonal).

    The magnitude of the complex inner product divided by the product of the
    norms; returns 0.0 when either vector is all-zero.
    """
    a = ensure_1d_array("a", a, dtype=np.complex128)
    b = ensure_1d_array("b", b, dtype=np.complex128)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0.0:
        return 0.0
    return float(np.abs(np.vdot(a, b)) / denom)
