"""Construction of the Matching Pursuits input matrices S, A and a.

Section III of the paper defines the MP inputs for the AquaModem waveform:

* ``S`` (``2*Ns x Ns`` = 224 x 112): column ``k`` is the 112-sample composite
  waveform delayed by ``k`` samples inside the 224-sample receive window
  (symbol + guard interval), i.e. the hypothesised signature of a propagation
  path with delay ``k * Ts``;
* ``A = S^H S`` (``Ns x Ns`` = 112 x 112): the Gram matrix of those signatures,
  used for successive interference cancellation;
* ``a = 1 / diag(A)`` (``Ns x 1``): pre-computed reciprocals that let the
  hardware avoid division.

All three are static — they depend only on the waveform, not on the received
data — and in hardware they are pre-computed and stored in block RAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_integer, ensure_1d_array

__all__ = [
    "SignalMatrices",
    "build_signal_matrices",
    "composite_signal_matrices",
    "delayed_signature_matrix",
]


def delayed_signature_matrix(waveform: np.ndarray, window_length: int, num_delays: int) -> np.ndarray:
    """Build the matrix of delayed copies of ``waveform``.

    Column ``k`` contains ``waveform`` shifted down by ``k`` samples inside a
    window of ``window_length`` samples, zero elsewhere.  Delays that would
    push part of the waveform outside the window are rejected.
    """
    waveform = ensure_1d_array("waveform", waveform, dtype=np.float64)
    window_length = check_integer("window_length", window_length, minimum=1)
    num_delays = check_integer("num_delays", num_delays, minimum=1)
    wf_len = waveform.shape[0]
    if (num_delays - 1) + wf_len > window_length:
        raise ValueError(
            "window too short: largest delay "
            f"{num_delays - 1} plus waveform length {wf_len} exceeds window {window_length}"
        )
    signature = np.zeros((window_length, num_delays), dtype=np.float64)
    for k in range(num_delays):
        signature[k : k + wf_len, k] = waveform
    return signature


@dataclass(frozen=True)
class SignalMatrices:
    """The static MP inputs for one waveform.

    Attributes
    ----------
    S:
        ``(2*Ns, Ns)`` delayed-signature matrix.
    A:
        ``(Ns, Ns)`` Gram matrix ``S^T S``.
    a:
        ``(Ns,)`` reciprocal of the diagonal of ``A``.
    waveform:
        The underlying sampled waveform (``Ns`` samples).
    """

    S: np.ndarray
    A: np.ndarray
    a: np.ndarray
    waveform: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.S.shape
        if self.A.shape != (n_cols, n_cols):
            raise ValueError(
                f"A must be ({n_cols}, {n_cols}), got {self.A.shape}"
            )
        if self.a.shape != (n_cols,):
            raise ValueError(f"a must have shape ({n_cols},), got {self.a.shape}")

    @property
    def num_delays(self) -> int:
        """Number of hypothesised path delays (columns of S)."""
        return self.S.shape[1]

    @property
    def window_length(self) -> int:
        """Receive-window length in samples (rows of S)."""
        return self.S.shape[0]

    def synthesize(self, coefficients: np.ndarray) -> np.ndarray:
        """Reconstruct the noiseless receive vector ``S @ f`` for channel ``f``."""
        coefficients = ensure_1d_array(
            "coefficients", coefficients, dtype=np.complex128, length=self.num_delays
        )
        return self.S @ coefficients


def build_signal_matrices(waveform: np.ndarray, window_length: int | None = None,
                          num_delays: int | None = None) -> SignalMatrices:
    """Build :class:`SignalMatrices` from a sampled waveform.

    Parameters
    ----------
    waveform:
        Sampled composite waveform (``Ns`` samples, e.g. 112 for the AquaModem).
    window_length:
        Receive-window length; defaults to ``2 * len(waveform)`` (symbol plus an
        equal guard interval, as in Table 1).
    num_delays:
        Number of hypothesised delays; defaults to ``len(waveform)``.

    Returns
    -------
    SignalMatrices
    """
    waveform = ensure_1d_array("waveform", waveform, dtype=np.float64)
    ns = waveform.shape[0]
    if window_length is None:
        window_length = 2 * ns
    if num_delays is None:
        num_delays = ns
    S = delayed_signature_matrix(waveform, window_length, num_delays)
    A = S.T @ S
    diag = np.diag(A)
    if np.any(diag == 0.0):
        raise ValueError("waveform has zero energy; diagonal of A contains zeros")
    a = 1.0 / diag
    return SignalMatrices(S=S, A=A, a=a, waveform=waveform)


def composite_signal_matrices(
    walsh_symbols: int, spreading_chips: int, samples_per_chip: int
) -> SignalMatrices:
    """The S/A/a matrices of the composite Walsh/m-sequence pilot waveform.

    The single canonical construction of the AquaModem-style matrices from
    the three waveform-geometry parameters (224 x 112 for the Table 1
    values); both the analysis helpers and the experiment registry build on
    it.
    """
    from repro.dsp.sampling import upsample_chips
    from repro.dsp.spreading import composite_waveform_set

    chips = composite_waveform_set(walsh_symbols, spreading_chips)[0]
    waveform = upsample_chips(chips, samples_per_chip).astype(np.float64)
    return build_signal_matrices(waveform)
