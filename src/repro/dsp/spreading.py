"""Composite Walsh x m-sequence spreading waveforms (Figure 4).

Each AquaModem symbol is one of ``Nw`` orthogonal Walsh code words; every
Walsh chip is further multiplied by an ``Lpn``-chip m-sequence, yielding a
``Nw * Lpn`` chip composite waveform (8 x 7 = 56 chips for the AquaModem).
The m-sequence layer spreads the symbol energy over the full bandwidth, which
is what gives the waveform its robustness to frequency-selective multipath.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.msequence import m_sequence
from repro.dsp.walsh import walsh_codes
from repro.utils.validation import check_integer, ensure_1d_array

__all__ = ["composite_waveform", "composite_waveform_set", "spread_symbols", "despread_chips"]


def composite_waveform(walsh_code: np.ndarray, spreading_sequence: np.ndarray) -> np.ndarray:
    """Spread one Walsh code word by the chip spreading sequence.

    The result is the Kronecker product ``walsh ⊗ spreading``: every Walsh
    chip is replaced by the full spreading sequence scaled by that chip.

    Parameters
    ----------
    walsh_code:
        ±1 Walsh code word of length ``Nw``.
    spreading_sequence:
        ±1 m-sequence of length ``Lpn``.

    Returns
    -------
    numpy.ndarray
        ``float64`` composite chip sequence of length ``Nw * Lpn``.
    """
    walsh_code = ensure_1d_array("walsh_code", walsh_code, dtype=np.float64)
    spreading_sequence = ensure_1d_array(
        "spreading_sequence", spreading_sequence, dtype=np.float64
    )
    return np.kron(walsh_code, spreading_sequence)


def composite_waveform_set(
    num_symbols: int = 8, spreading_length: int = 7, ordering: str = "sequency"
) -> np.ndarray:
    """Build the full symbol alphabet of composite waveforms.

    Parameters
    ----------
    num_symbols:
        Number of orthogonal symbols (``Nw``); must be a power of two.
    spreading_length:
        m-sequence length (``Lpn``), e.g. 7 for the AquaModem.
    ordering:
        Walsh row ordering passed to :func:`repro.dsp.walsh.walsh_codes`.

    Returns
    -------
    numpy.ndarray
        ``(num_symbols, num_symbols * spreading_length)`` matrix of ±1 chips.
        Rows remain mutually orthogonal because the same spreading sequence is
        applied to every symbol.
    """
    check_integer("spreading_length", spreading_length, minimum=1)
    walsh = walsh_codes(num_symbols, ordering=ordering)
    pn = m_sequence(spreading_length)
    return np.vstack([composite_waveform(row, pn) for row in walsh])


def spread_symbols(symbol_indices: np.ndarray, waveforms: np.ndarray) -> np.ndarray:
    """Map a sequence of symbol indices to a concatenated chip stream.

    Parameters
    ----------
    symbol_indices:
        Integer array of indices into the rows of ``waveforms``.
    waveforms:
        Symbol alphabet, as produced by :func:`composite_waveform_set`.

    Returns
    -------
    numpy.ndarray
        Chip stream of length ``len(symbol_indices) * waveforms.shape[1]``.
    """
    symbol_indices = ensure_1d_array("symbol_indices", symbol_indices, dtype=np.int64)
    waveforms = np.asarray(waveforms, dtype=np.float64)
    if waveforms.ndim != 2:
        raise ValueError(f"waveforms must be 2-D, got shape {waveforms.shape}")
    if symbol_indices.size and (
        symbol_indices.min() < 0 or symbol_indices.max() >= waveforms.shape[0]
    ):
        raise ValueError("symbol index out of range of the waveform alphabet")
    if symbol_indices.size == 0:
        return np.zeros(0, dtype=np.float64)
    return waveforms[symbol_indices].reshape(-1)


def despread_chips(chips: np.ndarray, waveforms: np.ndarray) -> np.ndarray:
    """Correlate a chip stream against the symbol alphabet, symbol by symbol.

    The chip stream length must be a multiple of the waveform length.  Returns
    a ``(num_received_symbols, num_alphabet_symbols)`` matrix of correlation
    scores; the argmax along axis 1 is the maximum-likelihood symbol decision
    for an AWGN channel.
    """
    chips = ensure_1d_array("chips", chips, dtype=np.complex128)
    waveforms = np.asarray(waveforms, dtype=np.float64)
    if waveforms.ndim != 2:
        raise ValueError(f"waveforms must be 2-D, got shape {waveforms.shape}")
    wf_len = waveforms.shape[1]
    if chips.shape[0] % wf_len != 0:
        raise ValueError(
            f"chip stream length {chips.shape[0]} is not a multiple of the waveform length {wf_len}"
        )
    blocks = chips.reshape(-1, wf_len)
    return blocks @ waveforms.T.astype(np.complex128)
