"""Walsh (Hadamard) orthogonal code generation.

The AquaModem transmits one of eight mutually orthogonal composite waveforms
per symbol (Section III, Figure 4).  The orthogonal layer of those waveforms
is a set of Walsh functions — the rows of a Sylvester-construction Hadamard
matrix, optionally re-ordered by sequency (number of sign changes), which is
the conventional "Walsh ordering".
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_power_of_two

__all__ = ["walsh_matrix", "walsh_codes", "sequency", "is_orthogonal_set"]


def _hadamard_sylvester(order: int) -> np.ndarray:
    """Sylvester-construction Hadamard matrix of size ``order`` (power of two)."""
    h = np.array([[1]], dtype=np.int8)
    while h.shape[0] < order:
        h = np.block([[h, h], [h, -h]])
    return h.astype(np.int8)


def sequency(row: np.ndarray) -> int:
    """Number of sign changes along a ±1 code word (its 'sequency')."""
    row = np.asarray(row)
    if row.ndim != 1:
        raise ValueError(f"sequency expects a 1-D code word, got shape {row.shape}")
    return int(np.count_nonzero(np.diff(np.sign(row)) != 0))


def walsh_matrix(order: int, ordering: str = "sequency") -> np.ndarray:
    """Return an ``order`` x ``order`` matrix whose rows are Walsh codes.

    Parameters
    ----------
    order:
        Code length; must be a power of two.
    ordering:
        ``"sequency"`` (default) sorts rows by increasing number of sign
        changes (true Walsh ordering); ``"hadamard"`` returns the natural
        Sylvester ordering.

    Returns
    -------
    numpy.ndarray
        ``int8`` matrix with entries in {-1, +1}; rows are mutually orthogonal.
    """
    order = check_power_of_two("order", order)
    h = _hadamard_sylvester(order)
    if ordering == "hadamard":
        return h
    if ordering == "sequency":
        keys = [sequency(row) for row in h]
        return h[np.argsort(keys, kind="stable")]
    raise ValueError(f"ordering must be 'sequency' or 'hadamard', got {ordering!r}")


def walsh_codes(num_codes: int, ordering: str = "sequency") -> np.ndarray:
    """Return ``num_codes`` Walsh code words of length ``num_codes``.

    This is the AquaModem symbol alphabet generator: ``walsh_codes(8)`` yields
    the eight orthogonal 8-chip codes that form the orthogonal layer of the
    composite waveforms.
    """
    return walsh_matrix(num_codes, ordering=ordering)


def is_orthogonal_set(codes: np.ndarray, tol: float = 1e-9) -> bool:
    """Check that the rows of ``codes`` are mutually orthogonal."""
    codes = np.asarray(codes, dtype=np.float64)
    if codes.ndim != 2:
        raise ValueError(f"codes must be 2-D, got shape {codes.shape}")
    gram = codes @ codes.T
    off_diag = gram - np.diag(np.diag(gram))
    return bool(np.max(np.abs(off_diag)) <= tol)
