"""Chip-rate to sample-rate conversion and pulse shaping.

The AquaModem samples at twice the chip rate (``Ts = Tc / 2``, Table 1), so a
56-chip composite waveform becomes a 112-sample discrete waveform.  The
baseline pulse shape is rectangular (sample-and-hold of the chip value); a
raised-cosine option is provided for experiments on band-limited shaping.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_integer, check_in_range, ensure_1d_array

__all__ = ["upsample_chips", "rectangular_pulse_shape", "raised_cosine_taps", "shape_chips"]


def upsample_chips(chips: np.ndarray, samples_per_chip: int) -> np.ndarray:
    """Repeat each chip value ``samples_per_chip`` times (rectangular pulses).

    This is the discrete-time equivalent of transmitting each chip as a
    rectangular pulse of duration ``Tc`` sampled at ``Tc / samples_per_chip``.
    """
    chips = ensure_1d_array("chips", chips)
    samples_per_chip = check_integer("samples_per_chip", samples_per_chip, minimum=1)
    return np.repeat(chips, samples_per_chip)


def rectangular_pulse_shape(samples_per_chip: int) -> np.ndarray:
    """Unit-energy rectangular pulse of ``samples_per_chip`` samples."""
    samples_per_chip = check_integer("samples_per_chip", samples_per_chip, minimum=1)
    return np.full(samples_per_chip, 1.0 / np.sqrt(samples_per_chip))


def raised_cosine_taps(
    samples_per_chip: int, span_chips: int = 6, rolloff: float = 0.25
) -> np.ndarray:
    """Raised-cosine pulse-shaping filter taps.

    Parameters
    ----------
    samples_per_chip:
        Oversampling factor.
    span_chips:
        Filter length in chips (the filter spans ``span_chips`` chip periods).
    rolloff:
        Roll-off factor in [0, 1].

    Returns
    -------
    numpy.ndarray
        Filter taps normalised to unit peak.
    """
    samples_per_chip = check_integer("samples_per_chip", samples_per_chip, minimum=1)
    span_chips = check_integer("span_chips", span_chips, minimum=1)
    rolloff = check_in_range("rolloff", rolloff, 0.0, 1.0)
    half = span_chips * samples_per_chip // 2
    t = np.arange(-half, half + 1, dtype=np.float64) / samples_per_chip
    taps = np.sinc(t)
    if rolloff > 0.0:
        denom = 1.0 - (2.0 * rolloff * t) ** 2
        cos_term = np.cos(np.pi * rolloff * t)
        with np.errstate(divide="ignore", invalid="ignore"):
            shaped = np.where(
                np.abs(denom) > 1e-12,
                cos_term / denom,
                np.pi / 4.0 * np.sinc(1.0 / (2.0 * rolloff)),
            )
        taps = taps * shaped
    peak = np.max(np.abs(taps))
    return taps / peak


def shape_chips(
    chips: np.ndarray, samples_per_chip: int, pulse: np.ndarray | None = None
) -> np.ndarray:
    """Upsample a chip sequence and apply a pulse-shaping filter.

    With ``pulse=None`` the chips are simply repeated (rectangular shaping),
    which is the waveform the paper's Table 1 parameters describe.
    """
    chips = ensure_1d_array("chips", chips, dtype=np.float64)
    if pulse is None:
        return upsample_chips(chips, samples_per_chip)
    zero_stuffed = np.zeros(chips.shape[0] * samples_per_chip, dtype=np.float64)
    zero_stuffed[::samples_per_chip] = chips
    return np.convolve(zero_stuffed, np.asarray(pulse, dtype=np.float64), mode="same")
