"""Passband front-end model: carrier up/down-conversion.

The paper's modem architecture (Figure 2) places the hardware platform behind
an analog front end that converts between the complex baseband samples the
signal processing works on and the real acoustic passband signal the
transducer emits (the AquaModem family uses a carrier in the low tens of kHz).
This module models that conversion digitally so end-to-end experiments can be
run on the passband representation:

* :func:`upconvert` — interpolate the complex baseband stream to the passband
  sampling rate and mix it onto a real carrier;
* :func:`downconvert` — I/Q demodulate a real passband stream back to complex
  baseband (mix, low-pass, decimate).

Both directions use polyphase resampling (scipy) whose group delay is
compensated, so an up/down round trip reproduces the baseband signal up to
band-limiting error — which is what the round-trip tests check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.utils.validation import check_integer, check_positive, ensure_1d_array

__all__ = ["PassbandFrontEnd", "upconvert", "downconvert"]


@dataclass(frozen=True)
class PassbandFrontEnd:
    """Carrier conversion parameters.

    Parameters
    ----------
    carrier_frequency_hz:
        Acoustic carrier frequency (24 kHz for the AquaModem family).
    baseband_rate_hz:
        Complex baseband sampling rate (10 kHz for Ts = 0.1 ms).
    interpolation_factor:
        Integer ratio between the passband and baseband sampling rates.  The
        default of 8 gives an 80 kHz passband rate, comfortably above the
        Nyquist rate for a 24 kHz carrier with a 5 kHz wide signal.
    """

    carrier_frequency_hz: float = 24_000.0
    baseband_rate_hz: float = 10_000.0
    interpolation_factor: int = 8

    def __post_init__(self) -> None:
        check_positive("carrier_frequency_hz", self.carrier_frequency_hz)
        check_positive("baseband_rate_hz", self.baseband_rate_hz)
        check_integer("interpolation_factor", self.interpolation_factor, minimum=2)
        if self.passband_rate_hz < 2.0 * (self.carrier_frequency_hz + self.baseband_rate_hz / 2.0):
            raise ValueError(
                "passband sampling rate too low for the carrier: increase interpolation_factor"
            )

    @property
    def passband_rate_hz(self) -> float:
        """Real passband sampling rate."""
        return self.baseband_rate_hz * self.interpolation_factor

    # ------------------------------------------------------------------ #
    def upconvert(self, baseband: np.ndarray) -> np.ndarray:
        """Convert complex baseband samples to a real passband stream."""
        return upconvert(
            baseband,
            carrier_frequency_hz=self.carrier_frequency_hz,
            baseband_rate_hz=self.baseband_rate_hz,
            interpolation_factor=self.interpolation_factor,
        )

    def downconvert(self, passband: np.ndarray) -> np.ndarray:
        """Convert a real passband stream back to complex baseband samples."""
        return downconvert(
            passband,
            carrier_frequency_hz=self.carrier_frequency_hz,
            baseband_rate_hz=self.baseband_rate_hz,
            interpolation_factor=self.interpolation_factor,
        )


def upconvert(
    baseband: np.ndarray,
    carrier_frequency_hz: float = 24_000.0,
    baseband_rate_hz: float = 10_000.0,
    interpolation_factor: int = 8,
) -> np.ndarray:
    """Interpolate a complex baseband stream and mix it onto a real carrier.

    Returns a real array of length ``len(baseband) * interpolation_factor``.
    """
    baseband = ensure_1d_array("baseband", baseband, dtype=np.complex128)
    check_positive("carrier_frequency_hz", carrier_frequency_hz)
    check_positive("baseband_rate_hz", baseband_rate_hz)
    check_integer("interpolation_factor", interpolation_factor, minimum=2)
    if baseband.size == 0:
        return np.zeros(0, dtype=np.float64)

    interpolated = sp_signal.resample_poly(baseband, interpolation_factor, 1)
    passband_rate = baseband_rate_hz * interpolation_factor
    t = np.arange(interpolated.shape[0]) / passband_rate
    carrier = np.exp(2j * np.pi * carrier_frequency_hz * t)
    # real passband signal: Re{ x(t) e^{j 2 pi fc t} } (factor sqrt(2) keeps power)
    return np.sqrt(2.0) * np.real(interpolated * carrier)


def downconvert(
    passband: np.ndarray,
    carrier_frequency_hz: float = 24_000.0,
    baseband_rate_hz: float = 10_000.0,
    interpolation_factor: int = 8,
) -> np.ndarray:
    """I/Q demodulate a real passband stream back to complex baseband.

    Mixes with the complex conjugate carrier, low-pass filters (to remove the
    double-frequency image) and decimates back to the baseband rate.
    """
    passband = ensure_1d_array("passband", passband, dtype=np.float64)
    check_positive("carrier_frequency_hz", carrier_frequency_hz)
    check_positive("baseband_rate_hz", baseband_rate_hz)
    check_integer("interpolation_factor", interpolation_factor, minimum=2)
    if passband.size == 0:
        return np.zeros(0, dtype=np.complex128)

    passband_rate = baseband_rate_hz * interpolation_factor
    t = np.arange(passband.shape[0]) / passband_rate
    mixed = passband * np.exp(-2j * np.pi * carrier_frequency_hz * t) * np.sqrt(2.0)
    # polyphase decimation low-pass filters at the new Nyquist rate, removing
    # the 2*fc image produced by the mixing
    return sp_signal.resample_poly(mixed, 1, interpolation_factor)
