"""Maximal-length sequence (m-sequence) generation via LFSRs.

The AquaModem spreads every Walsh chip by a 7-chip m-sequence (Table 1,
``Lpn = 7``).  A length-``2**m - 1`` m-sequence is produced by an ``m``-stage
linear feedback shift register whose feedback polynomial is primitive over
GF(2).  m-sequences have the two properties the DS-SS waveform relies on:

* a flat, nearly impulse-like periodic autocorrelation (values ``N`` at zero
  lag and ``-1`` elsewhere), which gives the composite waveform its multipath
  resolution;
* balance (one more ``+1`` than ``-1`` per period).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_integer

__all__ = [
    "PRIMITIVE_POLYNOMIALS",
    "LinearFeedbackShiftRegister",
    "m_sequence",
    "periodic_autocorrelation",
    "is_balanced",
]

#: Primitive feedback tap sets (1-indexed stage numbers, Fibonacci form) for
#: common register lengths.  ``taps = [m, k, ...]`` means the feedback bit is
#: the XOR of stages ``m, k, ...``.
PRIMITIVE_POLYNOMIALS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
}


@dataclass
class LinearFeedbackShiftRegister:
    """A Fibonacci-form LFSR over GF(2).

    Parameters
    ----------
    taps:
        Feedback tap positions, 1-indexed from the output stage.  The highest
        tap defines the register length.
    state:
        Initial register contents (list of 0/1, most significant stage first).
        Defaults to all ones, which is never the forbidden all-zero state.
    """

    taps: tuple[int, ...]
    state: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.taps:
            raise ValueError("taps must not be empty")
        taps = tuple(sorted({check_integer("tap", t, minimum=1) for t in self.taps}, reverse=True))
        object.__setattr__(self, "taps", taps)
        self.length = taps[0]
        if not self.state:
            self.state = [1] * self.length
        if len(self.state) != self.length:
            raise ValueError(
                f"state length {len(self.state)} does not match register length {self.length}"
            )
        if any(bit not in (0, 1) for bit in self.state):
            raise ValueError("state bits must be 0 or 1")
        if not any(self.state):
            raise ValueError("the all-zero LFSR state is forbidden (it never leaves zero)")

    def step(self) -> int:
        """Advance the register one step and return the output bit (0/1)."""
        out = self.state[-1]
        feedback = 0
        for tap in self.taps:
            feedback ^= self.state[tap - 1]
        self.state = [feedback] + self.state[:-1]
        return out

    def run(self, num_bits: int) -> np.ndarray:
        """Return ``num_bits`` successive output bits as an int8 array of 0/1."""
        num_bits = check_integer("num_bits", num_bits, minimum=0)
        return np.array([self.step() for _ in range(num_bits)], dtype=np.int8)

    @property
    def period(self) -> int:
        """Maximal period of the register (``2**length - 1``)."""
        return (1 << self.length) - 1


def m_sequence(length: int, *, register_length: int | None = None, bipolar: bool = True) -> np.ndarray:
    """Generate an m-sequence of the requested ``length``.

    Parameters
    ----------
    length:
        Desired sequence length.  Must equal ``2**m - 1`` for some supported
        register length ``m`` (e.g. 7, 15, 31, ...), unless ``register_length``
        is given explicitly, in which case the first ``length`` chips of that
        register's maximal sequence are returned.
    register_length:
        Explicit register length (overrides the inference from ``length``).
    bipolar:
        If True (default) map bits {0, 1} to chips {+1, -1}.

    Returns
    -------
    numpy.ndarray
        ``int8`` array of chips.
    """
    length = check_integer("length", length, minimum=1)
    if register_length is None:
        m = int(np.log2(length + 1))
        if (1 << m) - 1 != length:
            raise ValueError(
                f"length {length} is not 2**m - 1; pass register_length explicitly"
            )
        register_length = m
    if register_length not in PRIMITIVE_POLYNOMIALS:
        raise ValueError(
            f"no primitive polynomial known for register length {register_length}"
        )
    lfsr = LinearFeedbackShiftRegister(PRIMITIVE_POLYNOMIALS[register_length])
    bits = lfsr.run(length)
    if not bipolar:
        return bits
    # map bit 1 -> +1 and bit 0 -> -1 so the m-sequence balance property
    # (one more 1 than 0 per period) carries over to the bipolar chips
    return (2 * bits - 1).astype(np.int8)


def periodic_autocorrelation(sequence: np.ndarray) -> np.ndarray:
    """Periodic (circular) autocorrelation of a ±1 sequence, all lags.

    For an m-sequence of length ``N`` the result is ``N`` at lag 0 and ``-1``
    at every other lag.
    """
    seq = np.asarray(sequence, dtype=np.float64)
    if seq.ndim != 1:
        raise ValueError(f"sequence must be 1-D, got shape {seq.shape}")
    n = seq.shape[0]
    spectrum = np.fft.fft(seq)
    acf = np.fft.ifft(spectrum * np.conj(spectrum)).real
    # guard against tiny imaginary leakage
    return np.round(acf, decimals=9)[:n]


def is_balanced(sequence: np.ndarray) -> bool:
    """True if a ±1 sequence has exactly one more +1 than -1 (m-sequence balance)."""
    seq = np.asarray(sequence)
    plus = int(np.count_nonzero(seq > 0))
    minus = int(np.count_nonzero(seq < 0))
    return plus == minus + 1
