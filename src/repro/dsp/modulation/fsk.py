"""Non-coherent M-ary frequency-shift-keying modulator (the baseline scheme).

The paper (Section III) argues that DS-SS waveforms achieve significantly
lower error rates than FSK in frequency-selective underwater channels because
the wideband DS-SS waveform enjoys frequency diversity while a narrowband FSK
tone can be wiped out by a multipath null.  This modulator implements the
conventional orthogonal-tone M-FSK with energy detection so that claim can be
measured (experiment E7).
"""

from __future__ import annotations

import numpy as np

from repro.dsp.modulation.base import DemodulationResult, Modulator
from repro.utils.validation import check_integer, ensure_1d_array, ensure_2d_array

__all__ = ["FSKModulator"]


class FSKModulator(Modulator):
    """Orthogonal M-ary FSK at complex baseband.

    Tones are spaced by the symbol rate (``1 / Tsym``), which makes them
    orthogonal over one symbol period.  Demodulation is non-coherent: the
    received symbol window is correlated against each tone and the largest
    magnitude wins.

    Parameters
    ----------
    num_tones:
        Alphabet size M.
    samples_per_symbol:
        Length of one symbol in samples.
    guard_samples:
        Optional silent guard interval appended after each symbol.
    """

    def __init__(
        self,
        num_tones: int = 8,
        samples_per_symbol: int = 112,
        guard_samples: int = 112,
    ) -> None:
        check_integer("num_tones", num_tones, minimum=2)
        check_integer("samples_per_symbol", samples_per_symbol, minimum=num_tones)
        check_integer("guard_samples", guard_samples, minimum=0)
        self.alphabet_size = num_tones
        self.symbol_samples = samples_per_symbol
        self.guard_samples = guard_samples
        self.samples_per_symbol = samples_per_symbol + guard_samples

        n = np.arange(samples_per_symbol)
        # Tone m sits at frequency m / symbol_samples (cycles per sample):
        # adjacent tones differ by exactly one cycle per symbol -> orthogonal.
        self.tones = np.exp(
            2j * np.pi * np.outer(np.arange(1, num_tones + 1), n) / samples_per_symbol
        )
        # Normalise tone energy to match the per-symbol energy of a ±1 chip
        # waveform of the same length, so SNR definitions are comparable with
        # the DS-SS modulator.
        self.tones = self.tones.astype(np.complex128)

    def modulate(self, symbols: np.ndarray) -> np.ndarray:
        """Emit one tone per symbol followed by a silent guard interval."""
        symbols = ensure_1d_array("symbols", symbols, dtype=np.int64)
        if symbols.size and (symbols.min() < 0 or symbols.max() >= self.alphabet_size):
            raise ValueError("symbol index out of range")
        out = np.zeros(symbols.shape[0] * self.samples_per_symbol, dtype=np.complex128)
        for i, sym in enumerate(symbols):
            start = i * self.samples_per_symbol
            out[start : start + self.symbol_samples] = self.tones[sym]
        return out

    def modulate_batch(self, symbols: np.ndarray) -> np.ndarray:
        """Modulate a ``(frames, symbols_per_frame)`` batch in one shot.

        Row ``t`` equals ``modulate(symbols[t])`` exactly; the per-symbol
        Python loop is replaced by a single fancy-indexed assignment.
        """
        symbols = ensure_2d_array("symbols", symbols, dtype=np.int64)
        if symbols.size and (symbols.min() < 0 or symbols.max() >= self.alphabet_size):
            raise ValueError("symbol index out of range")
        frames, per_frame = symbols.shape
        out = np.zeros(
            (frames, per_frame * self.samples_per_symbol), dtype=np.complex128
        )
        shaped = out.reshape(frames, per_frame, self.samples_per_symbol)
        shaped[:, :, : self.symbol_samples] = self.tones[symbols]
        return out

    def demodulate(self, samples: np.ndarray) -> DemodulationResult:
        """Non-coherent energy detection over each symbol window."""
        samples = ensure_1d_array("samples", samples, dtype=np.complex128)
        num_symbols = samples.shape[0] // self.samples_per_symbol
        usable = num_symbols * self.samples_per_symbol
        windows = samples[:usable].reshape(num_symbols, self.samples_per_symbol)
        symbol_part = windows[:, : self.symbol_samples]
        # correlation against each tone; non-coherent -> magnitude
        scores = np.abs(symbol_part @ np.conj(self.tones.T))
        decisions = np.argmax(scores, axis=1).astype(np.int64)
        return DemodulationResult(symbols=decisions, scores=scores)

    def demodulate_batch(self, samples: np.ndarray) -> DemodulationResult:
        """Energy detection over a ``(frames, frame_length)`` stack at once.

        All frames' symbol windows are correlated against the tone bank in a
        single matmul.  ``symbols`` and ``scores`` come back with a leading
        frame axis: ``(frames, symbols_per_frame)`` and
        ``(frames, symbols_per_frame, alphabet)``.
        """
        samples = ensure_2d_array("samples", samples, dtype=np.complex128)
        frames = samples.shape[0]
        num_symbols = samples.shape[1] // self.samples_per_symbol
        usable = num_symbols * self.samples_per_symbol
        windows = samples[:, :usable].reshape(frames, num_symbols, self.samples_per_symbol)
        symbol_part = windows[:, :, : self.symbol_samples].reshape(-1, self.symbol_samples)
        scores = np.abs(symbol_part @ np.conj(self.tones.T))
        decisions = np.argmax(scores, axis=1).astype(np.int64)
        return DemodulationResult(
            symbols=decisions.reshape(frames, num_symbols),
            scores=scores.reshape(frames, num_symbols, self.alphabet_size),
        )
