"""Direct-sequence spread-spectrum modulator (the AquaModem signalling scheme).

One of ``Nw`` orthogonal composite Walsh x m-sequence waveforms is transmitted
per symbol, followed by a guard interval of equal duration for channel
clearing (Table 1).  Demodulation correlates each receive window against the
alphabet; when a multipath profile (from Matching Pursuits) is supplied the
windows are RAKE-combined first.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.detection import (
    rake_combine,
    rake_combine_windows,
    symbol_decision,
    symbol_decision_batch,
)
from repro.dsp.modulation.base import DemodulationResult, Modulator
from repro.dsp.sampling import upsample_chips
from repro.dsp.spreading import composite_waveform_set
from repro.utils.validation import check_integer, ensure_1d_array, ensure_2d_array

__all__ = ["DSSSModulator"]


class DSSSModulator(Modulator):
    """DS-SS modulator with orthogonal Walsh symbol alphabet.

    Parameters
    ----------
    num_symbols:
        Alphabet size ``Nw`` (power of two); 8 for the AquaModem.
    spreading_length:
        m-sequence length ``Lpn``; 7 for the AquaModem.
    samples_per_chip:
        Oversampling factor; 2 for the AquaModem (``Ts = Tc / 2``).
    guard_factor:
        Guard interval length as a multiple of the symbol duration; 1.0 for the
        AquaModem (``Tg = Tsym``).
    """

    def __init__(
        self,
        num_symbols: int = 8,
        spreading_length: int = 7,
        samples_per_chip: int = 2,
        guard_factor: float = 1.0,
    ) -> None:
        check_integer("num_symbols", num_symbols, minimum=2)
        check_integer("spreading_length", spreading_length, minimum=1)
        check_integer("samples_per_chip", samples_per_chip, minimum=1)
        if guard_factor < 0:
            raise ValueError(f"guard_factor must be >= 0, got {guard_factor}")
        self.alphabet_size = num_symbols
        self.spreading_length = spreading_length
        self.samples_per_chip = samples_per_chip
        self.guard_factor = float(guard_factor)

        chip_waveforms = composite_waveform_set(num_symbols, spreading_length)
        self.waveforms = np.vstack(
            [upsample_chips(row, samples_per_chip) for row in chip_waveforms]
        ).astype(np.float64)
        self.symbol_samples = self.waveforms.shape[1]
        self.guard_samples = int(round(self.symbol_samples * self.guard_factor))
        self.samples_per_symbol = self.symbol_samples + self.guard_samples

    # ------------------------------------------------------------------ #
    def modulate(self, symbols: np.ndarray) -> np.ndarray:
        """Emit the waveform for each symbol followed by a silent guard interval."""
        symbols = ensure_1d_array("symbols", symbols, dtype=np.int64)
        if symbols.size and (symbols.min() < 0 or symbols.max() >= self.alphabet_size):
            raise ValueError("symbol index out of range")
        out = np.zeros(symbols.shape[0] * self.samples_per_symbol, dtype=np.complex128)
        for i, sym in enumerate(symbols):
            start = i * self.samples_per_symbol
            out[start : start + self.symbol_samples] = self.waveforms[sym]
        return out

    def modulate_batch(self, symbols: np.ndarray) -> np.ndarray:
        """Modulate a ``(frames, symbols_per_frame)`` batch in one shot.

        Row ``t`` equals ``modulate(symbols[t])`` exactly; the per-symbol
        Python loop is replaced by a single fancy-indexed assignment.
        """
        symbols = ensure_2d_array("symbols", symbols, dtype=np.int64)
        if symbols.size and (symbols.min() < 0 or symbols.max() >= self.alphabet_size):
            raise ValueError("symbol index out of range")
        frames, per_frame = symbols.shape
        out = np.zeros(
            (frames, per_frame * self.samples_per_symbol), dtype=np.complex128
        )
        shaped = out.reshape(frames, per_frame, self.samples_per_symbol)
        shaped[:, :, : self.symbol_samples] = self.waveforms[symbols]
        return out

    def receive_windows(self, samples: np.ndarray) -> np.ndarray:
        """Split a received stream into per-symbol windows (symbol + guard)."""
        samples = ensure_1d_array("samples", samples, dtype=np.complex128)
        num_symbols = samples.shape[0] // self.samples_per_symbol
        usable = num_symbols * self.samples_per_symbol
        return samples[:usable].reshape(num_symbols, self.samples_per_symbol)

    def demodulate(
        self,
        samples: np.ndarray,
        path_delays: np.ndarray | None = None,
        path_gains: np.ndarray | None = None,
    ) -> DemodulationResult:
        """Detect symbols, optionally RAKE-combining over an estimated channel.

        Without a channel estimate a single path at delay 0 with unit gain is
        assumed (pure matched-filter detection).
        """
        windows = self.receive_windows(samples)
        if path_delays is None or path_gains is None:
            path_delays = np.array([0], dtype=np.int64)
            path_gains = np.array([1.0 + 0.0j])
        path_delays = ensure_1d_array("path_delays", path_delays, dtype=np.int64)
        path_gains = ensure_1d_array("path_gains", path_gains, dtype=np.complex128)

        decisions = np.empty(windows.shape[0], dtype=np.int64)
        scores = np.empty((windows.shape[0], self.alphabet_size), dtype=np.float64)
        for i, window in enumerate(windows):
            combined = rake_combine(window, path_delays, path_gains, self.symbol_samples)
            decisions[i], scores[i] = symbol_decision(combined, self.waveforms)
        return DemodulationResult(symbols=decisions, scores=scores)

    def demodulate_windows(
        self,
        windows: np.ndarray,
        path_delays: np.ndarray | None = None,
        path_gains: np.ndarray | None = None,
    ) -> DemodulationResult:
        """Detect a ``(windows, window_length)`` stack sharing one channel.

        The batched counterpart of :meth:`demodulate`: every window is
        RAKE-combined over the same resolved multipath profile (one array op
        per path) and all symbol decisions fall out of a single correlation
        matmul.
        """
        windows = ensure_2d_array("windows", windows, dtype=np.complex128)
        if path_delays is None or path_gains is None:
            path_delays = np.array([0], dtype=np.int64)
            path_gains = np.array([1.0 + 0.0j])
        combined = rake_combine_windows(
            windows, path_delays, path_gains, self.symbol_samples
        )
        decisions, scores = symbol_decision_batch(combined, self.waveforms)
        return DemodulationResult(symbols=decisions, scores=scores)

    # ------------------------------------------------------------------ #
    @property
    def walsh_length(self) -> int:
        """Length of each Walsh code word (equals the alphabet size)."""
        return self.alphabet_size

    @property
    def chips_per_symbol(self) -> int:
        """Total number of chips per symbol (``Nw * Lpn``)."""
        return self.walsh_length * self.spreading_length
