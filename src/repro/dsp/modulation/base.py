"""Common interface for baseband modulators."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Modulator", "DemodulationResult"]


@dataclass
class DemodulationResult:
    """Output of a demodulator.

    Attributes
    ----------
    symbols:
        Detected symbol indices.
    scores:
        Per-symbol decision statistics (shape ``(num_symbols, alphabet_size)``);
        may be empty for schemes that do not expose them.
    metadata:
        Scheme-specific extras (e.g. the channel estimate used).
    """

    symbols: np.ndarray
    scores: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    metadata: dict = field(default_factory=dict)


class Modulator(abc.ABC):
    """Abstract base class for a symbol-level modulator/demodulator pair."""

    #: Number of distinct symbols in the alphabet.
    alphabet_size: int
    #: Number of baseband samples produced per symbol (including guard time).
    samples_per_symbol: int

    @abc.abstractmethod
    def modulate(self, symbols: np.ndarray) -> np.ndarray:
        """Map symbol indices to a complex baseband sample stream."""

    @abc.abstractmethod
    def demodulate(self, samples: np.ndarray) -> DemodulationResult:
        """Recover symbol indices from a received complex baseband stream."""

    def bits_per_symbol(self) -> int:
        """Number of bits conveyed by one symbol."""
        return int(np.log2(self.alphabet_size))

    def random_symbols(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` uniformly random symbol indices."""
        return rng.integers(0, self.alphabet_size, size=count)
