"""Baseband modulators/demodulators for the two signalling schemes the paper
discusses: direct-sequence spread spectrum (DS-SS, the AquaModem scheme) and
non-coherent frequency shift keying (FSK, the common baseline the paper says
DS-SS outperforms).  Both operate on complex baseband sample streams so they
can share the same channel simulator.
"""

from repro.dsp.modulation.base import Modulator, DemodulationResult
from repro.dsp.modulation.dsss import DSSSModulator
from repro.dsp.modulation.fsk import FSKModulator

__all__ = ["Modulator", "DemodulationResult", "DSSSModulator", "FSKModulator"]
