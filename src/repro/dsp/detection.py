"""Symbol detection and RAKE combining.

Given the channel coefficients estimated by Matching Pursuits, the receiver
coherently combines the energy arriving over every resolved path (a RAKE
receiver) before correlating against the symbol alphabet.  This is the
"signals due to multiple paths can be combined coherently for increased noise
immunity" step the paper motivates in Section III.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_1d_array, ensure_2d_array

__all__ = [
    "rake_combine",
    "rake_combine_windows",
    "detect_symbols",
    "symbol_decision",
    "symbol_decision_batch",
]


def rake_combine(
    received: np.ndarray,
    path_delays: np.ndarray,
    path_gains: np.ndarray,
    symbol_length: int,
) -> np.ndarray:
    """Maximal-ratio combine the received signal across resolved paths.

    Parameters
    ----------
    received:
        Complex receive window (length >= max delay + symbol_length).
    path_delays:
        Integer sample delays of the resolved paths.
    path_gains:
        Complex gains of the resolved paths (same length as ``path_delays``).
    symbol_length:
        Number of samples per symbol waveform.

    Returns
    -------
    numpy.ndarray
        Combined ``symbol_length``-sample vector
        ``sum_k conj(g_k) * received[d_k : d_k + symbol_length]``.
    """
    received = ensure_1d_array("received", received, dtype=np.complex128)
    path_delays = ensure_1d_array("path_delays", path_delays, dtype=np.int64)
    path_gains = ensure_1d_array("path_gains", path_gains, dtype=np.complex128)
    if path_delays.shape != path_gains.shape:
        raise ValueError(
            f"delays and gains must have equal length, got {path_delays.shape} and {path_gains.shape}"
        )
    if path_delays.size and path_delays.min() < 0:
        raise ValueError("path delays must be non-negative")
    combined = np.zeros(symbol_length, dtype=np.complex128)
    for delay, gain in zip(path_delays, path_gains):
        end = delay + symbol_length
        if end > received.shape[0]:
            raise ValueError(
                f"path delay {delay} plus symbol length {symbol_length} exceeds window {received.shape[0]}"
            )
        combined += np.conj(gain) * received[delay:end]
    return combined


def rake_combine_windows(
    received_windows: np.ndarray,
    path_delays: np.ndarray,
    path_gains: np.ndarray,
    symbol_length: int,
) -> np.ndarray:
    """Maximal-ratio combine a whole ``(windows, window_length)`` stack at once.

    Equivalent to :func:`rake_combine` applied to each row (same tap order,
    same arithmetic) but vectorised across the windows, which share one
    resolved multipath profile — the shape of a frame's payload after channel
    estimation.

    Returns a ``(windows, symbol_length)`` complex matrix.
    """
    received_windows = ensure_2d_array(
        "received_windows", received_windows, dtype=np.complex128
    )
    path_delays = ensure_1d_array("path_delays", path_delays, dtype=np.int64)
    path_gains = ensure_1d_array("path_gains", path_gains, dtype=np.complex128)
    if path_delays.shape != path_gains.shape:
        raise ValueError(
            f"delays and gains must have equal length, got {path_delays.shape} and {path_gains.shape}"
        )
    if path_delays.size and path_delays.min() < 0:
        raise ValueError("path delays must be non-negative")
    window_length = received_windows.shape[1]
    combined = np.zeros((received_windows.shape[0], symbol_length), dtype=np.complex128)
    for delay, gain in zip(path_delays, path_gains):
        end = int(delay) + symbol_length
        if end > window_length:
            raise ValueError(
                f"path delay {delay} plus symbol length {symbol_length} exceeds window {window_length}"
            )
        combined += np.conj(gain) * received_windows[:, int(delay):end]
    return combined


def symbol_decision(combined: np.ndarray, waveforms: np.ndarray) -> tuple[int, np.ndarray]:
    """Correlate a combined symbol window against the alphabet, return the best index.

    Returns the argmax index and the full vector of real correlation scores.
    """
    combined = ensure_1d_array("combined", combined, dtype=np.complex128)
    waveforms = ensure_2d_array("waveforms", waveforms, dtype=np.float64)
    if waveforms.shape[1] != combined.shape[0]:
        raise ValueError(
            f"waveform length {waveforms.shape[1]} does not match combined length {combined.shape[0]}"
        )
    scores = np.real(waveforms @ combined)
    return int(np.argmax(scores)), scores


def symbol_decision_batch(
    combined: np.ndarray, waveforms: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Correlate a ``(windows, symbol_length)`` stack against the alphabet.

    One matmul replaces per-window :func:`symbol_decision` calls; returns the
    per-window argmax indices and the ``(windows, alphabet)`` score matrix.
    """
    combined = ensure_2d_array("combined", combined, dtype=np.complex128)
    waveforms = ensure_2d_array("waveforms", waveforms, dtype=np.float64)
    if waveforms.shape[1] != combined.shape[1]:
        raise ValueError(
            f"waveform length {waveforms.shape[1]} does not match combined length {combined.shape[1]}"
        )
    scores = np.real(combined @ waveforms.T)
    return np.argmax(scores, axis=1).astype(np.int64), scores


def detect_symbols(
    received_windows: np.ndarray,
    waveforms: np.ndarray,
    path_delays: np.ndarray,
    path_gains: np.ndarray,
) -> np.ndarray:
    """Detect one symbol per receive window using RAKE combining.

    Parameters
    ----------
    received_windows:
        ``(num_symbols, window_length)`` complex matrix, one receive window per
        transmitted symbol (symbol + guard interval).
    waveforms:
        Symbol alphabet (``(num_alphabet, symbol_length)``).
    path_delays, path_gains:
        The resolved multipath profile used for combining.

    Returns
    -------
    numpy.ndarray
        Integer array of detected symbol indices.
    """
    received_windows = ensure_2d_array(
        "received_windows", received_windows, dtype=np.complex128
    )
    waveforms = ensure_2d_array("waveforms", waveforms, dtype=np.float64)
    symbol_length = waveforms.shape[1]
    decisions = np.empty(received_windows.shape[0], dtype=np.int64)
    for i, window in enumerate(received_windows):
        combined = rake_combine(window, path_delays, path_gains, symbol_length)
        decisions[i], _ = symbol_decision(combined, waveforms)
    return decisions
