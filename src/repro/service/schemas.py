"""JSON API schemas: request validation for the sweep service.

The service speaks plain JSON objects; this module is the single place that
turns untrusted wire payloads into typed values (and precise 400 messages).
The submit request shape::

    {
      "spec": { ... SweepSpec.to_dict() ... },   # required
      "options": {                               # optional, all keys optional
        "jobs":  1,        # worker processes inside the sweep (int >= 1)
        "cache": true,     # use the daemon's shared result cache
        "trace": false,    # record a per-job trace.jsonl next to the results
        "adaptive": {      # sequential stopping (AdaptiveConfig.to_dict shape)
          "metric": "symbol_error_rate", "ci_width": 0.01, "max_trials": 256
        }
      }
    }

``SweepSpec`` itself validates its own structure (axis overlaps, zipped
lengths, seed policy bounds) in ``__post_init__``; this layer checks the
envelope — types, unknown keys, required fields — and converts any spec
construction error into a :class:`SchemaError` so the HTTP layer maps every
bad request to a 400 with a actionable message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.experiments.adaptive import AdaptiveConfig
from repro.experiments.spec import SweepSpec

__all__ = ["SchemaError", "JobOptions", "parse_submit_request"]

#: Option keys a submit request may carry (anything else is a 400).
_OPTION_KEYS = ("jobs", "cache", "trace", "adaptive")


class SchemaError(ValueError):
    """A request payload that does not match the API schema (HTTP 400)."""


@dataclass(frozen=True)
class JobOptions:
    """Execution options of one submitted job (never part of its identity).

    The singleflight guard dedupes on spec *content* only: two submissions of
    the same spec with different options share one job, and the first
    submission's options win (documented in the README's API section).
    """

    jobs: int = 1
    cache: bool = True
    trace: bool = False
    #: Sequential-stopping rule; ``None`` runs the classic fixed-count sweep.
    adaptive: AdaptiveConfig | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "cache": self.cache,
            "trace": self.trace,
            "adaptive": self.adaptive.to_dict() if self.adaptive is not None else None,
        }


def _require_mapping(value: Any, name: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise SchemaError(f"{name} must be a JSON object, got {type(value).__name__}")
    return value


def _parse_options(payload: Any) -> JobOptions:
    options = _require_mapping(payload, "'options'")
    unknown = sorted(set(options) - set(_OPTION_KEYS))
    if unknown:
        raise SchemaError(
            f"unknown option key(s) {', '.join(map(repr, unknown))}; "
            f"accepted: {', '.join(_OPTION_KEYS)}"
        )
    jobs = options.get("jobs", 1)
    # bool is an int subclass: reject it explicitly before the int check
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
        raise SchemaError(f"options.jobs must be an integer >= 1, got {jobs!r}")
    cache = options.get("cache", True)
    if not isinstance(cache, bool):
        raise SchemaError(f"options.cache must be a boolean, got {cache!r}")
    trace = options.get("trace", False)
    if not isinstance(trace, bool):
        raise SchemaError(f"options.trace must be a boolean, got {trace!r}")
    adaptive = None
    if options.get("adaptive") is not None:
        payload = _require_mapping(options["adaptive"], "options.adaptive")
        try:
            adaptive = AdaptiveConfig.from_dict(payload)
        except (TypeError, ValueError, KeyError) as error:
            raise SchemaError(f"invalid options.adaptive: {error}") from None
    return JobOptions(jobs=jobs, cache=cache, trace=trace, adaptive=adaptive)


def parse_submit_request(payload: Any) -> tuple[SweepSpec, JobOptions]:
    """Validate one submit payload into ``(spec, options)`` or raise 400s."""
    body = _require_mapping(payload, "request body")
    unknown = sorted(set(body) - {"spec", "options"})
    if unknown:
        raise SchemaError(
            f"unknown request key(s) {', '.join(map(repr, unknown))}; "
            "accepted: 'spec', 'options'"
        )
    if "spec" not in body:
        raise SchemaError("request body must carry a 'spec' object")
    spec_dict = _require_mapping(body["spec"], "'spec'")
    if not isinstance(spec_dict.get("scenario"), str) or not spec_dict.get("scenario"):
        raise SchemaError("spec.scenario must be a non-empty string")
    try:
        spec = SweepSpec.from_dict(spec_dict)
    except (TypeError, ValueError, KeyError) as error:
        raise SchemaError(f"invalid spec: {error}") from None
    options = _parse_options(body.get("options", {}))
    return spec, options
