"""The sweep service: a long-running daemon with an HTTP/JSON job API.

ROADMAP item 1 — the "millions of users" story.  The service wraps
:mod:`repro.experiments` behind a stdlib-only HTTP daemon
(:mod:`http.server` + threads, no new dependencies):

* **submit** a :class:`~repro.experiments.spec.SweepSpec` as JSON
  (``POST /api/v1/jobs``) and get a job id back immediately;
* **poll** job status (``GET /api/v1/jobs/<id>``) — the payload carries the
  latest :class:`~repro.telemetry.progress.ProgressEvent` heartbeat straight
  from ``run_sweep``'s progress hook;
* **fetch** tidy records, stats and the manifest when the job is done.

A bounded :class:`~repro.service.jobs.JobQueue` multiplexes concurrent sweeps
over one shared :class:`~repro.experiments.cache.ResultCache`.  Two layers of
dedup keep popular scenarios near-free:

* a **singleflight guard** collapses concurrent submissions of the same spec
  into one job (both clients poll the same job id and read the same records);
* the **content-addressed cache** dedupes identical trials across *different*
  specs, with atomic last-write-wins writes so concurrent sweeps sharing a
  cache are safe (see the concurrency contract in
  :mod:`repro.experiments.cache`).

The package splits cleanly: :mod:`~repro.service.schemas` (JSON request
validation), :mod:`~repro.service.jobs` (job model + queue + singleflight),
:mod:`~repro.service.app` (HTTP routing), :mod:`~repro.service.client`
(urllib client used by ``repro submit`` and the tests).
"""

from repro.service.app import make_server, serve
from repro.service.client import ServiceError, SweepServiceClient
from repro.service.jobs import Job, JobOptions, JobQueue, JobState
from repro.service.schemas import SchemaError, parse_submit_request

__all__ = [
    "Job",
    "JobOptions",
    "JobQueue",
    "JobState",
    "SchemaError",
    "ServiceError",
    "SweepServiceClient",
    "make_server",
    "parse_submit_request",
    "serve",
]
