"""A small urllib client for the sweep service's JSON API.

Used by ``repro submit``, the test suite and the CI smoke job — anything that
talks to a running daemon without wanting to hand-roll HTTP.  Stdlib only
(:mod:`urllib.request`), mirroring the service's own no-dependency rule.

    client = SweepServiceClient("http://127.0.0.1:8765")
    job = client.submit(get_scenario("platform-energy").spec)
    status = client.wait(job["job"]["job_id"], timeout_s=60)
    records = client.records(status["job_id"])["records"]

Every method returns the decoded JSON payload; non-2xx responses raise
:class:`ServiceError` carrying the HTTP status and the server's ``error``
message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.experiments.spec import SweepSpec
from repro.service.jobs import JobState

__all__ = ["ServiceError", "SweepServiceClient"]


class ServiceError(RuntimeError):
    """A non-2xx API response (or a transport failure talking to the daemon)."""

    def __init__(self, status: int, message: str, payload: dict[str, Any] | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class SweepServiceClient:
    """Talks to one running sweep daemon at ``base_url``."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, payload: Any | None = None) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body is not None else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read())
            except (json.JSONDecodeError, ValueError):
                detail = {}
            raise ServiceError(
                error.code, str(detail.get("error", error.reason)), detail
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, f"cannot reach {self.base_url}: {error.reason}") from None

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/api/v1/health")

    def scenarios(self) -> dict[str, Any]:
        return self._request("GET", "/api/v1/scenarios")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/api/v1/metrics")

    def submit(
        self,
        spec: SweepSpec | dict[str, Any],
        jobs: int = 1,
        cache: bool = True,
        trace: bool = False,
        adaptive: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Submit a spec; returns ``{"job": {...}, "deduplicated": bool}``.

        ``adaptive`` is an optional sequential-stopping rule
        (:meth:`repro.experiments.adaptive.AdaptiveConfig.to_dict` shape);
        when given, the daemon runs the sweep adaptively.
        """
        spec_dict = spec.to_dict() if isinstance(spec, SweepSpec) else spec
        options: dict[str, Any] = {"jobs": jobs, "cache": cache, "trace": trace}
        if adaptive is not None:
            options["adaptive"] = adaptive
        return self._request(
            "POST", "/api/v1/jobs", {"spec": spec_dict, "options": options}
        )

    def jobs(self) -> dict[str, Any]:
        return self._request("GET", "/api/v1/jobs")

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/api/v1/jobs/{job_id}")

    def records(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/api/v1/jobs/{job_id}/records")

    def stats(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/api/v1/jobs/{job_id}/stats")

    def manifest(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/api/v1/jobs/{job_id}/manifest")

    def wait(
        self,
        job_id: str,
        timeout_s: float = 120.0,
        poll_interval_s: float = 0.1,
        on_progress: Any = None,
    ) -> dict[str, Any]:
        """Poll ``job_id`` until it reaches a terminal state; returns the status.

        ``on_progress`` (optional callable) receives each polled status — the
        hook ``repro submit --watch`` uses to print heartbeat lines.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.job(job_id)
            if on_progress is not None:
                on_progress(status)
            if status["state"] in JobState.TERMINAL:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout_s:.0f}s"
                )
            time.sleep(poll_interval_s)
