"""HTTP routing for the sweep service (stdlib ``http.server`` + threads).

Endpoints (all JSON, versioned under ``/api/v1``)::

    GET  /api/v1/health              liveness + job state counts
    GET  /api/v1/scenarios           the sweepable scenarios and their specs
    GET  /api/v1/metrics             flattened telemetry-metrics snapshot
    POST /api/v1/jobs                submit a SweepSpec -> job id (202;
                                     200 when singleflight-deduplicated)
    GET  /api/v1/jobs                all jobs, oldest first
    GET  /api/v1/jobs/<id>           job status incl. latest progress event
    GET  /api/v1/jobs/<id>/records   tidy records (409 until the job is done)
    GET  /api/v1/jobs/<id>/stats     SweepStats of a done job (409 until done)
    GET  /api/v1/jobs/<id>/manifest  the manifest.json written with the results
    GET  /api/v1/runs                warehouse runs (``?scenario=``/``?source=``
                                     filters); 404 when the warehouse is off

Error mapping: schema violations and unknown scenarios are 400, unknown
paths/jobs 404, wrong methods 405, results requested before completion 409,
failed jobs 500 (with the job's recorded error).  Every response is a JSON
object; errors carry ``{"error": ...}``.

The server is a :class:`ThreadingHTTPServer` with daemon threads — request
handling stays responsive while the :class:`~repro.service.jobs.JobQueue`'s
bounded executor does the actual sweeping.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs

from repro.experiments.registry import list_scenarios
from repro.service.jobs import Job, JobQueue, JobState
from repro.service.schemas import SchemaError, parse_submit_request
from repro.telemetry.metrics import counter, flatten_snapshot, registry

__all__ = ["make_server", "serve"]

logger = logging.getLogger(__name__)

_REQUESTS = counter("service.requests")
_ERRORS = counter("service.request_errors")

API_PREFIX = "/api/v1"


class _ApiError(Exception):
    """An error response: carries the HTTP status and a message payload."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class SweepServiceHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request; the job queue is attached per-server class."""

    queue: JobQueue  # injected by make_server on a per-server subclass
    server_version = "repro-sweep-service/1.0"
    protocol_version = "HTTP/1.1"
    #: Submit payloads above this many bytes are rejected outright (413).
    max_body_bytes = 8 * 1024 * 1024

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise _ApiError(411, "Content-Length header required") from None
        if length > self.max_body_bytes:
            raise _ApiError(413, f"request body exceeds {self.max_body_bytes} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise _ApiError(400, f"request body is not valid JSON: {error}") from None

    def _dispatch(self, method: str) -> None:
        _REQUESTS.inc()
        try:
            payload, status = self._route(method)
            self._send_json(status, payload)
        except _ApiError as error:
            _ERRORS.inc()
            self._send_json(error.status, error.payload)
        except Exception as error:  # a handler bug must answer, not hang the client
            _ERRORS.inc()
            logger.exception("unhandled error serving %s %s", method, self.path)
            self._send_json(500, {"error": f"internal error: {type(error).__name__}"})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _route(self, method: str) -> tuple[dict[str, Any], int]:
        path = self.path.split("?", 1)[0].rstrip("/")
        if not path.startswith(API_PREFIX):
            raise _ApiError(404, f"unknown path {path!r} (the API lives under {API_PREFIX})")
        parts = [part for part in path[len(API_PREFIX):].split("/") if part]

        if parts == ["health"]:
            return self._health(method)
        if parts == ["scenarios"]:
            return self._scenarios(method)
        if parts == ["metrics"]:
            return self._metrics(method)
        if parts == ["jobs"]:
            if method == "POST":
                return self._submit()
            return self._list_jobs(method)
        if len(parts) == 2 and parts[0] == "jobs":
            return self._job_status(method, parts[1])
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] in ("records", "stats", "manifest"):
            return self._job_artifact(method, parts[1], parts[2])
        if parts == ["runs"]:
            return self._runs(method)
        raise _ApiError(404, f"unknown path {path!r}")

    def _get_only(self, method: str) -> None:
        if method != "GET":
            raise _ApiError(405, f"method {method} not allowed here (use GET)")

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #
    def _health(self, method: str) -> tuple[dict[str, Any], int]:
        self._get_only(method)
        return {"status": "ok", "jobs": self.queue.state_counts()}, 200

    def _scenarios(self, method: str) -> tuple[dict[str, Any], int]:
        self._get_only(method)
        return {
            "scenarios": [
                {
                    "name": scenario.name,
                    "description": scenario.description,
                    "layers": list(scenario.layers),
                    "version": scenario.version,
                    "num_trials": scenario.spec.num_trials,
                    "spec": scenario.spec.to_dict(),
                }
                for scenario in list_scenarios()
            ]
        }, 200

    def _metrics(self, method: str) -> tuple[dict[str, Any], int]:
        self._get_only(method)
        return {"metrics": flatten_snapshot(registry().snapshot())}, 200

    def _submit(self) -> tuple[dict[str, Any], int]:
        try:
            spec, options = parse_submit_request(self._read_json_body())
        except SchemaError as error:
            raise _ApiError(400, str(error)) from None
        try:
            job, deduplicated = self.queue.submit(spec, options)
        except KeyError as error:
            raise _ApiError(400, str(error.args[0])) from None
        # 200 for "you joined an existing job", 202 for "work accepted"
        return {"job": job.to_dict(), "deduplicated": deduplicated}, (
            200 if deduplicated else 202
        )

    def _list_jobs(self, method: str) -> tuple[dict[str, Any], int]:
        self._get_only(method)
        return {"jobs": [job.to_dict() for job in self.queue.jobs()]}, 200

    def _find_job(self, job_id: str) -> Job:
        job = self.queue.get(job_id)
        if job is None:
            raise _ApiError(404, f"unknown job {job_id!r}")
        return job

    def _job_status(self, method: str, job_id: str) -> tuple[dict[str, Any], int]:
        self._get_only(method)
        return self._find_job(job_id).to_dict(), 200

    def _job_artifact(
        self, method: str, job_id: str, artifact: str
    ) -> tuple[dict[str, Any], int]:
        self._get_only(method)
        job = self._find_job(job_id)
        if job.state == JobState.FAILED:
            raise _ApiError(500, f"job {job_id} failed: {job.error}", state=job.state)
        if job.state != JobState.DONE:
            raise _ApiError(
                409,
                f"job {job_id} is {job.state}; {artifact} are available once it is done",
                state=job.state,
            )
        result = job.result
        assert result is not None  # state DONE implies a result
        if artifact == "records":
            return {"job_id": job.job_id, "count": len(result.records),
                    "records": result.records}, 200
        if artifact == "stats":
            stats = result.stats.to_dict() if result.stats is not None else None
            return {"job_id": job.job_id, "stats": stats}, 200
        manifest_path = job.output_dir / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise _ApiError(404, f"job {job_id} has no manifest on disk") from None
        return {"job_id": job.job_id, "manifest": manifest}, 200


    def _runs(self, method: str) -> tuple[dict[str, Any], int]:
        self._get_only(method)
        warehouse = self.queue.warehouse
        if warehouse is None:
            raise _ApiError(
                404, "the warehouse is disabled on this server (started with --no-warehouse)"
            )
        query = parse_qs(self.path.partition("?")[2])

        def single(name: str) -> str | None:
            values = query.get(name)
            return values[-1] if values else None

        runs = warehouse.runs(
            scenario=single("scenario"),
            version=single("version"),
            source=single("source"),
        )
        return {"count": len(runs), "runs": [run.to_dict() for run in runs]}, 200


def make_server(host: str, port: int, queue: JobQueue) -> ThreadingHTTPServer:
    """Build a ready-to-serve HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address`` — the tests and smoke scripts do).  The handler
    class is subclassed per server so concurrent servers in one process (the
    test suite) never share a job queue through class state.
    """
    handler = type("BoundSweepServiceHandler", (SweepServiceHandler,), {"queue": queue})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(server: ThreadingHTTPServer, queue: JobQueue) -> None:
    """Serve until interrupted, then drain the job queue cleanly."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        logger.info("interrupt: shutting down")
    finally:
        server.server_close()
        queue.shutdown(wait=True)
