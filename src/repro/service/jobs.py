"""The job model and bounded queue behind the sweep service.

A :class:`Job` is one submitted sweep: a :class:`SweepSpec`, execution
options, a lifecycle state (``queued → running → done | failed``) and — while
running — the latest :class:`~repro.telemetry.progress.ProgressEvent`
heartbeat from ``run_sweep``'s progress hook (the hook was designed for
exactly this poller).

The :class:`JobQueue` multiplexes jobs over a bounded
:class:`~concurrent.futures.ThreadPoolExecutor` and one shared
:class:`~repro.experiments.cache.ResultCache`:

* **singleflight** — submissions are deduplicated by the stable hash of the
  spec's canonical dict: while a job for that spec is queued, running or
  done, submitting the same spec returns the *existing* job instead of
  executing the overlapping trials twice.  Both clients poll the same job id
  and fetch identical records.  A *failed* job leaves the singleflight index
  so a resubmission retries;
* **cross-spec dedup** — different specs that share trials dedupe through the
  content-addressed cache (each overlapping trial executes once, then hits);
  the cache's atomic last-write-wins writes make the shared cache safe under
  the executor's concurrent threads and any worker processes they spawn;
* **crash safety** — results, manifest and per-job traces are published with
  atomic renames; a daemon killed mid-job leaves complete-or-absent artefacts
  and its cached trials behind, so resubmitting the spec to a fresh daemon
  completes from cache.

Thread-safety: all lifecycle transitions and index mutations happen under one
queue lock; the hot per-trial path (the progress callback) only *assigns* the
job's ``progress`` attribute, which is atomic under the GIL.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.adaptive import AdaptiveSweepResult, run_adaptive_sweep
from repro.experiments.cache import ResultCache
from repro.experiments.registry import get_scenario
from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.spec import SweepSpec, stable_hash
from repro.experiments.store import ResultStore
from repro.service.schemas import JobOptions
from repro.telemetry.metrics import counter, gauge
from repro.telemetry.progress import ProgressEvent
from repro.telemetry.tracing import start_trace, write_trace
from repro.warehouse.db import Warehouse

__all__ = ["Job", "JobOptions", "JobQueue", "JobState", "spec_key"]

logger = logging.getLogger(__name__)

_SUBMITTED = counter("service.jobs_submitted")
_DEDUPLICATED = counter("service.jobs_deduplicated")
_COMPLETED = counter("service.jobs_completed")
_FAILED = counter("service.jobs_failed")
_RUNNING = gauge("service.jobs_running")


class JobState:
    """Lifecycle states (plain strings, stable across the JSON API)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    #: Terminal states: the job will never transition again.
    TERMINAL = (DONE, FAILED)


def spec_key(spec: SweepSpec) -> str:
    """The singleflight identity of a spec: a stable hash of its canonical dict."""
    return stable_hash(spec.to_dict(), length=16)


def _stats_payload(result: SweepResult | None) -> dict[str, Any] | None:
    """The manifest/status ``stats`` dict: SweepStats, plus the adaptive block."""
    if result is None or result.stats is None:
        return None
    if isinstance(result, AdaptiveSweepResult):
        return result.stats_payload()
    return result.stats.to_dict()


@dataclass
class Job:
    """One submitted sweep and everything a poller may ask about it."""

    job_id: str
    spec: SweepSpec
    key: str
    options: JobOptions
    output_dir: Path
    state: str = JobState.QUEUED
    submitted_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    #: Latest heartbeat (assigned whole from the worker thread — GIL-atomic).
    progress: ProgressEvent | None = None
    error: str | None = None
    result: SweepResult | None = None
    #: Paths written by the ResultStore (jsonl/csv/manifest [+ trace]).
    artifacts: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """The job's JSON status payload (what ``GET /jobs/<id>`` returns)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "scenario": self.spec.scenario,
            "spec_key": self.key,
            "num_trials": self.spec.num_trials,
            "options": self.options.to_dict(),
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "progress": self.progress.to_dict() if self.progress is not None else None,
            "error": self.error,
            "stats": _stats_payload(self.result),
            "artifacts": dict(self.artifacts),
        }


class JobQueue:
    """A bounded executor of sweep jobs with singleflight submission dedup."""

    def __init__(
        self,
        data_dir: Path | str,
        cache: ResultCache | None = None,
        max_workers: int = 2,
        progress_interval_s: float = 0.1,
        warehouse: Warehouse | None = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.cache = cache
        self.warehouse = warehouse
        self._progress_interval_s = progress_interval_s
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="sweep-job"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        #: spec key -> job id of the queued/running/done job for that spec.
        self._singleflight: dict[str, str] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # submission (singleflight)
    # ------------------------------------------------------------------ #
    def submit(self, spec: SweepSpec, options: JobOptions | None = None) -> tuple[Job, bool]:
        """Enqueue ``spec``; returns ``(job, deduplicated)``.

        ``deduplicated`` is ``True`` when an equivalent spec was already
        queued, running or done — the caller gets that existing job and no
        new work is scheduled (the singleflight guarantee).
        """
        get_scenario(spec.scenario)  # unknown scenarios fail fast (KeyError)
        options = options if options is not None else JobOptions()
        key = spec_key(spec)
        with self._lock:
            existing_id = self._singleflight.get(key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state != JobState.FAILED:
                    _DEDUPLICATED.inc()
                    return existing, True
            job_id = f"job-{next(self._ids):06d}-{key[:8]}"
            job = Job(
                job_id=job_id,
                spec=spec,
                key=key,
                options=options,
                output_dir=self.data_dir / "jobs" / job_id,
            )
            self._jobs[job_id] = job
            self._singleflight[key] = job_id
            _SUBMITTED.inc()
        logger.info("job %s: submitted (%s, %d trials)",
                    job.job_id, spec.scenario, spec.num_trials)
        self._executor.submit(self._run, job)
        return job, False

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.submitted_s)

    def state_counts(self) -> dict[str, int]:
        """How many jobs sit in each lifecycle state (for /health)."""
        counts = {state: 0 for state in
                  (JobState.QUEUED, JobState.RUNNING, JobState.DONE, JobState.FAILED)}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    # ------------------------------------------------------------------ #
    # execution (worker threads)
    # ------------------------------------------------------------------ #
    def _run(self, job: Job) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            job.started_s = time.time()
        _RUNNING.set(_RUNNING.value + 1)
        try:
            if job.options.trace:
                with start_trace() as tracer:
                    result = self._run_sweep(job)
                    trace_records = tracer.records
            else:
                result = self._run_sweep(job)
                trace_records = None
            written = ResultStore(job.output_dir).write(
                result.records,
                spec=job.spec.to_dict(),
                stats=_stats_payload(result),
            )
            if trace_records is not None:
                written["trace"] = write_trace(
                    job.output_dir / "trace.jsonl", trace_records
                )
            with self._lock:
                job.result = result
                job.artifacts = {name: str(path) for name, path in written.items()}
                job.state = JobState.DONE
                job.finished_s = time.time()
            _COMPLETED.inc()
            logger.info("job %s: done (%d records)", job.job_id, len(result.records))
            self._ingest(job)
        except BaseException as error:  # a failed job must never kill its worker thread
            with self._lock:
                job.state = JobState.FAILED
                job.error = f"{type(error).__name__}: {error}"
                job.finished_s = time.time()
                # leave singleflight so the next submission of this spec retries
                if self._singleflight.get(job.key) == job.job_id:
                    del self._singleflight[job.key]
            _FAILED.inc()
            logger.exception("job %s: failed", job.job_id)
        finally:
            _RUNNING.set(_RUNNING.value - 1)

    def _ingest(self, job: Job) -> None:
        """Index a finished job into the warehouse (best effort).

        Ingest failure must not fail the job: the artifacts on disk are the
        source of truth and a later ``repro ingest`` recovers the index.
        """
        if self.warehouse is None:
            return
        try:
            report = self.warehouse.ingest(job.output_dir, source="service")
            logger.info(
                "job %s: warehouse +%d run(s) / +%d trial(s) (%s)",
                job.job_id, report.runs_added, report.trials_added, self.warehouse.path,
            )
        except Exception:
            logger.exception("job %s: warehouse ingest failed (job unaffected)", job.job_id)

    def _run_sweep(self, job: Job) -> SweepResult:
        def heartbeat(event: ProgressEvent) -> None:
            job.progress = event

        if job.options.adaptive is not None:
            return run_adaptive_sweep(
                job.spec,
                job.options.adaptive,
                jobs=job.options.jobs,
                cache=self.cache if job.options.cache else None,
                progress=heartbeat,
                progress_interval_s=self._progress_interval_s,
            )
        return run_sweep(
            job.spec,
            jobs=job.options.jobs,
            cache=self.cache if job.options.cache else None,
            progress=heartbeat,
            progress_interval_s=self._progress_interval_s,
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        self._executor.shutdown(wait=wait)
