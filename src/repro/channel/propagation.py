"""Acoustic propagation models: absorption, spreading and transmission loss.

These are the standard empirical models used throughout the underwater
acoustic networking literature (e.g. Stojanovic's link-budget formulation):

* Thorp's formula for frequency-dependent absorption (dB/km);
* geometric spreading loss ``k * 10 log10(d)`` with spreading exponent ``k``
  (1 = cylindrical, 1.5 = practical, 2 = spherical);
* the passive sonar equation for received signal level and SNR.

They feed two parts of the reproduction: the network-level energy model
(transmit power needed to close a link of a given range, experiment E9) and
the link-level SNR sweeps (experiment E7).
"""

from __future__ import annotations

import math

from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "thorp_absorption_db_per_km",
    "spreading_loss_db",
    "transmission_loss_db",
    "received_level_db",
    "snr_db",
    "sound_speed_mackenzie",
    "propagation_delay",
]


def thorp_absorption_db_per_km(frequency_khz: float) -> float:
    """Thorp's empirical absorption coefficient in dB/km.

    Valid for frequencies above a few hundred Hz.  ``frequency_khz`` is the
    carrier frequency in kHz (the AquaModem family operates in the tens of
    kHz).
    """
    f = check_positive("frequency_khz", frequency_khz)
    f2 = f * f
    return (
        0.11 * f2 / (1.0 + f2)
        + 44.0 * f2 / (4100.0 + f2)
        + 2.75e-4 * f2
        + 0.003
    )


def spreading_loss_db(distance_m: float, spreading_exponent: float = 1.5) -> float:
    """Geometric spreading loss in dB for a path of ``distance_m`` metres.

    The loss is referenced to 1 m, the sonar-equation convention; distances
    below 1 m therefore return 0 dB.
    """
    distance_m = check_positive("distance_m", distance_m)
    spreading_exponent = check_in_range("spreading_exponent", spreading_exponent, 0.5, 2.0)
    return spreading_exponent * 10.0 * math.log10(max(distance_m, 1.0))


def transmission_loss_db(
    distance_m: float,
    frequency_khz: float,
    spreading_exponent: float = 1.5,
) -> float:
    """Total one-way transmission loss (spreading + absorption) in dB."""
    spreading = spreading_loss_db(distance_m, spreading_exponent)
    absorption = thorp_absorption_db_per_km(frequency_khz) * (distance_m / 1000.0)
    return spreading + absorption


def received_level_db(
    source_level_db: float,
    distance_m: float,
    frequency_khz: float,
    spreading_exponent: float = 1.5,
) -> float:
    """Received signal level (dB re 1 uPa) after transmission loss."""
    return source_level_db - transmission_loss_db(
        distance_m, frequency_khz, spreading_exponent
    )


def snr_db(
    source_level_db: float,
    distance_m: float,
    frequency_khz: float,
    noise_level_db: float,
    directivity_index_db: float = 0.0,
    spreading_exponent: float = 1.5,
) -> float:
    """Passive sonar equation: ``SNR = SL - TL - NL + DI``."""
    rl = received_level_db(source_level_db, distance_m, frequency_khz, spreading_exponent)
    return rl - noise_level_db + directivity_index_db


def sound_speed_mackenzie(
    temperature_c: float = 12.0,
    salinity_ppt: float = 35.0,
    depth_m: float = 20.0,
) -> float:
    """Mackenzie's nine-term equation for the speed of sound in sea water (m/s).

    Valid for 2-30 C, 25-40 ppt, 0-8000 m — comfortably covering the shallow
    coastal deployments the paper targets.
    """
    t = check_in_range("temperature_c", temperature_c, -2.0, 40.0)
    s = check_in_range("salinity_ppt", salinity_ppt, 0.0, 45.0)
    d = check_in_range("depth_m", depth_m, 0.0, 9000.0)
    return (
        1448.96
        + 4.591 * t
        - 5.304e-2 * t**2
        + 2.374e-4 * t**3
        + 1.340 * (s - 35.0)
        + 1.630e-2 * d
        + 1.675e-7 * d**2
        - 1.025e-2 * t * (s - 35.0)
        - 7.139e-13 * t * d**3
    )


def propagation_delay(distance_m: float, sound_speed_m_s: float = 1500.0) -> float:
    """One-way acoustic propagation delay in seconds."""
    distance_m = check_positive("distance_m", distance_m)
    sound_speed_m_s = check_positive("sound_speed_m_s", sound_speed_m_s)
    return distance_m / sound_speed_m_s
