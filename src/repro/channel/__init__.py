"""Underwater acoustic channel substrate.

The paper's kernel estimates a *sparse multipath* channel: in shallow water
the transmitted waveform reaches the receiver over a handful of discrete
paths (direct, surface bounce, bottom bounce, multiple bounces) each with its
own delay and complex attenuation, spread over roughly 10 ms (Section III).
This subpackage simulates that environment from scratch:

* :mod:`repro.channel.propagation` — Thorp absorption, geometric spreading,
  transmission loss and the passive sonar equation;
* :mod:`repro.channel.noise` — Wenz-style ambient noise (turbulence,
  shipping, wind, thermal) and complex AWGN generation;
* :mod:`repro.channel.geometry` — image-method ray geometry for a shallow
  water column (surface/bottom reflections give physically motivated delays
  and amplitudes);
* :mod:`repro.channel.multipath` — sparse tapped-delay-line channel
  descriptions and random channel generation;
* :mod:`repro.channel.simulator` — apply a channel plus noise to a
  transmitted sample stream at a requested SNR.
"""

from repro.channel.propagation import (
    thorp_absorption_db_per_km,
    spreading_loss_db,
    transmission_loss_db,
    received_level_db,
    sound_speed_mackenzie,
)
from repro.channel.noise import (
    ambient_noise_psd_db,
    total_noise_level_db,
    complex_awgn,
)
from repro.channel.geometry import ShallowWaterGeometry, image_method_paths
from repro.channel.multipath import (
    MultipathChannel,
    random_sparse_channel,
    random_sparse_channel_batch,
)
from repro.channel.simulator import (
    ChannelSimulator,
    apply_channel,
    apply_channel_batch,
    add_noise_for_snr,
    add_noise_for_snr_batch,
)

__all__ = [
    "thorp_absorption_db_per_km",
    "spreading_loss_db",
    "transmission_loss_db",
    "received_level_db",
    "sound_speed_mackenzie",
    "ambient_noise_psd_db",
    "total_noise_level_db",
    "complex_awgn",
    "ShallowWaterGeometry",
    "image_method_paths",
    "MultipathChannel",
    "random_sparse_channel",
    "random_sparse_channel_batch",
    "ChannelSimulator",
    "apply_channel",
    "apply_channel_batch",
    "add_noise_for_snr",
    "add_noise_for_snr_batch",
]
