"""Ambient ocean noise and additive white Gaussian noise generation.

The ambient noise model follows the standard four-component empirical
formulation (turbulence, distant shipping, wind-driven surface agitation and
thermal noise) with the usual dependence on frequency, shipping-activity
factor and wind speed.  It supplies the noise level term of the sonar equation
used by the network energy model; the complex AWGN generator supplies
sample-level noise for the link simulations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range, check_non_negative, check_positive

__all__ = [
    "turbulence_noise_psd_db",
    "shipping_noise_psd_db",
    "wind_noise_psd_db",
    "thermal_noise_psd_db",
    "ambient_noise_psd_db",
    "total_noise_level_db",
    "complex_awgn",
    "noise_power_for_snr",
]


def turbulence_noise_psd_db(frequency_khz: float) -> float:
    """Turbulence noise power spectral density (dB re 1 uPa^2/Hz)."""
    f = check_positive("frequency_khz", frequency_khz)
    return 17.0 - 30.0 * math.log10(f)


def shipping_noise_psd_db(frequency_khz: float, shipping_factor: float = 0.5) -> float:
    """Distant-shipping noise PSD; ``shipping_factor`` in [0, 1]."""
    f = check_positive("frequency_khz", frequency_khz)
    s = check_in_range("shipping_factor", shipping_factor, 0.0, 1.0)
    return 40.0 + 20.0 * (s - 0.5) + 26.0 * math.log10(f) - 60.0 * math.log10(f + 0.03)


def wind_noise_psd_db(frequency_khz: float, wind_speed_m_s: float = 5.0) -> float:
    """Wind-driven surface noise PSD for wind speed in m/s."""
    f = check_positive("frequency_khz", frequency_khz)
    w = check_non_negative("wind_speed_m_s", wind_speed_m_s)
    return 50.0 + 7.5 * math.sqrt(w) + 20.0 * math.log10(f) - 40.0 * math.log10(f + 0.4)


def thermal_noise_psd_db(frequency_khz: float) -> float:
    """Thermal noise PSD, dominant above ~100 kHz."""
    f = check_positive("frequency_khz", frequency_khz)
    return -15.0 + 20.0 * math.log10(f)


def ambient_noise_psd_db(
    frequency_khz: float,
    shipping_factor: float = 0.5,
    wind_speed_m_s: float = 5.0,
) -> float:
    """Total ambient noise PSD (power sum of the four components), dB re 1 uPa^2/Hz."""
    components_db = (
        turbulence_noise_psd_db(frequency_khz),
        shipping_noise_psd_db(frequency_khz, shipping_factor),
        wind_noise_psd_db(frequency_khz, wind_speed_m_s),
        thermal_noise_psd_db(frequency_khz),
    )
    linear = sum(10.0 ** (c / 10.0) for c in components_db)
    return 10.0 * math.log10(linear)


def total_noise_level_db(
    frequency_khz: float,
    bandwidth_hz: float,
    shipping_factor: float = 0.5,
    wind_speed_m_s: float = 5.0,
) -> float:
    """Noise level integrated over ``bandwidth_hz`` around the carrier (dB re 1 uPa)."""
    bandwidth_hz = check_positive("bandwidth_hz", bandwidth_hz)
    psd = ambient_noise_psd_db(frequency_khz, shipping_factor, wind_speed_m_s)
    return psd + 10.0 * math.log10(bandwidth_hz)


def noise_power_for_snr(signal_power: float, snr_db: float) -> float:
    """Noise power that yields the requested SNR for the given signal power."""
    signal_power = check_non_negative("signal_power", signal_power)
    return signal_power / (10.0 ** (snr_db / 10.0))


def complex_awgn(
    shape: int | tuple[int, ...],
    noise_power: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Circularly symmetric complex Gaussian noise with total power ``noise_power``.

    ``noise_power`` is the variance E[|n|^2] per sample; the real and imaginary
    parts each carry half of it.
    """
    noise_power = check_non_negative("noise_power", noise_power)
    rng = as_rng(rng)
    scale = math.sqrt(noise_power / 2.0)
    real = rng.standard_normal(shape)
    imag = rng.standard_normal(shape)
    return scale * (real + 1j * imag)
