"""Sparse tapped-delay-line channel descriptions.

The Matching Pursuits kernel estimates the channel as a sparse vector of
complex coefficients over a grid of sample-spaced delays (the columns of the
signal matrix ``S``).  :class:`MultipathChannel` is that same description used
in the forward direction: a handful of (delay, complex gain) taps that can be
applied to a transmitted sample stream or converted to/from the dense
coefficient vector MP estimates.

Channels can be built three ways:

* directly from taps,
* from the image-method geometry (:func:`MultipathChannel.from_geometry`),
* randomly (:func:`random_sparse_channel`) with exponentially decaying power
  and Rayleigh/uniform-phase fading, which is the conventional statistical
  model for shallow-water multipath.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.geometry import ShallowWaterGeometry, image_method_paths
from repro.utils.rng import as_rng
from repro.utils.validation import check_integer, check_non_negative, check_positive, ensure_1d_array

__all__ = [
    "MultipathChannel",
    "random_sparse_channel",
    "random_sparse_channel_batch",
    "stack_channel_taps",
]


@dataclass(frozen=True)
class MultipathChannel:
    """A sparse multipath channel as (sample delay, complex gain) taps.

    Attributes
    ----------
    delays:
        Integer sample delays, strictly increasing, first entry usually 0.
    gains:
        Complex tap gains, same length as ``delays``.
    """

    delays: np.ndarray
    gains: np.ndarray

    def __post_init__(self) -> None:
        delays = ensure_1d_array("delays", self.delays, dtype=np.int64)
        gains = ensure_1d_array("gains", self.gains, dtype=np.complex128)
        if delays.shape != gains.shape:
            raise ValueError(
                f"delays and gains must have equal length, got {delays.shape} and {gains.shape}"
            )
        if delays.size == 0:
            raise ValueError("a channel must have at least one tap")
        if delays.min() < 0:
            raise ValueError("delays must be non-negative")
        if np.any(np.diff(delays) <= 0):
            raise ValueError("delays must be strictly increasing")
        object.__setattr__(self, "delays", delays)
        object.__setattr__(self, "gains", gains)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_paths(self) -> int:
        """Number of taps."""
        return int(self.delays.shape[0])

    @property
    def delay_spread(self) -> int:
        """Difference between the largest and smallest tap delay, in samples."""
        return int(self.delays.max() - self.delays.min())

    @property
    def total_power(self) -> float:
        """Sum of |gain|^2 over all taps."""
        return float(np.sum(np.abs(self.gains) ** 2))

    def strongest_path(self) -> tuple[int, complex]:
        """Return (delay, gain) of the tap with the largest magnitude."""
        idx = int(np.argmax(np.abs(self.gains)))
        return int(self.delays[idx]), complex(self.gains[idx])

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def impulse_response(self, length: int | None = None) -> np.ndarray:
        """Dense impulse response vector (complex), length >= max delay + 1."""
        min_len = int(self.delays.max()) + 1
        if length is None:
            length = min_len
        length = check_integer("length", length, minimum=min_len)
        h = np.zeros(length, dtype=np.complex128)
        h[self.delays] = self.gains
        return h

    def coefficient_vector(self, num_delays: int) -> np.ndarray:
        """Channel as the dense coefficient vector MP estimates (length ``num_delays``).

        Taps beyond ``num_delays - 1`` raise, because they are outside the
        delay grid the estimator searches.
        """
        num_delays = check_integer("num_delays", num_delays, minimum=1)
        if self.delays.max() >= num_delays:
            raise ValueError(
                f"tap delay {int(self.delays.max())} outside the estimator grid of {num_delays} delays"
            )
        f = np.zeros(num_delays, dtype=np.complex128)
        f[self.delays] = self.gains
        return f

    @classmethod
    def from_coefficient_vector(
        cls, coefficients: np.ndarray, magnitude_threshold: float = 0.0
    ) -> "MultipathChannel":
        """Build a sparse channel from a dense coefficient vector.

        Coefficients with magnitude ``<= magnitude_threshold`` are discarded.
        """
        coefficients = ensure_1d_array("coefficients", coefficients, dtype=np.complex128)
        check_non_negative("magnitude_threshold", magnitude_threshold)
        mask = np.abs(coefficients) > magnitude_threshold
        if not np.any(mask):
            raise ValueError("no coefficients above the threshold; empty channel")
        delays = np.nonzero(mask)[0].astype(np.int64)
        return cls(delays=delays, gains=coefficients[mask])

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Convolve ``samples`` with the channel (output truncated to input length).

        Truncation to the input length matches the receive-window framing of
        the modem: energy arriving after the guard interval of the final
        symbol is ignored.
        """
        samples = ensure_1d_array("samples", samples, dtype=np.complex128)
        out = np.zeros_like(samples)
        n = samples.shape[0]
        for delay, gain in zip(self.delays, self.gains):
            d = int(delay)
            if d >= n:
                continue
            out[d:] += gain * samples[: n - d]
        return out

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_geometry(
        cls,
        geometry: ShallowWaterGeometry,
        sampling_interval_s: float,
        max_bounces: int = 3,
        frequency_khz: float = 24.0,
        max_delay_samples: int | None = None,
        normalize: bool = True,
    ) -> "MultipathChannel":
        """Discretise the image-method paths onto the sample grid.

        Delays are measured relative to the direct path (the modem's symbol
        timing locks onto the first arrival).  Paths mapping to the same
        sample are merged coherently.
        """
        check_positive("sampling_interval_s", sampling_interval_s)
        paths = image_method_paths(geometry, max_bounces=max_bounces, frequency_khz=frequency_khz)
        if not paths:
            raise ValueError("geometry produced no propagation paths")
        first_delay = paths[0].delay_s
        taps: dict[int, complex] = {}
        for path in paths:
            rel = path.delay_s - first_delay
            sample = int(round(rel / sampling_interval_s))
            if max_delay_samples is not None and sample >= max_delay_samples:
                continue
            taps[sample] = taps.get(sample, 0.0 + 0.0j) + complex(path.amplitude)
        delays = np.array(sorted(taps), dtype=np.int64)
        gains = np.array([taps[d] for d in delays], dtype=np.complex128)
        if normalize:
            peak = np.max(np.abs(gains))
            if peak > 0:
                gains = gains / peak
        return cls(delays=delays, gains=gains)


def random_sparse_channel(
    num_paths: int,
    max_delay: int,
    rng: np.random.Generator | int | None = None,
    decay_constant: float = 30.0,
    min_separation: int = 2,
    include_direct: bool = True,
) -> MultipathChannel:
    """Draw a random sparse channel with exponentially decaying path power.

    Parameters
    ----------
    num_paths:
        Number of taps to draw.
    max_delay:
        Largest allowed sample delay (exclusive upper bound is ``max_delay``).
    rng:
        Seed or generator.
    decay_constant:
        Power e-folding constant in samples; later paths are weaker on average.
    min_separation:
        Minimum spacing between taps in samples (models resolvable paths).
    include_direct:
        Force a tap at delay 0 (the direct arrival the receiver synchronises to).

    Returns
    -------
    MultipathChannel
        Channel normalised so the strongest tap has unit magnitude.
    """
    check_integer("num_paths", num_paths, minimum=1)
    check_integer("max_delay", max_delay, minimum=1)
    check_positive("decay_constant", decay_constant)
    check_integer("min_separation", min_separation, minimum=1)
    if num_paths * min_separation > max_delay + 1:
        raise ValueError(
            f"cannot place {num_paths} paths with separation {min_separation} within {max_delay} samples"
        )
    rng = as_rng(rng)

    delays: list[int] = [0] if include_direct else []
    candidates = np.arange(0 if not include_direct else 1, max_delay, dtype=np.int64)
    rng.shuffle(candidates)
    for candidate in candidates:
        if len(delays) >= num_paths:
            break
        if all(abs(int(candidate) - d) >= min_separation for d in delays):
            delays.append(int(candidate))
    if len(delays) < num_paths:
        raise ValueError("could not place the requested number of paths; relax min_separation")
    delays_arr = np.array(sorted(delays), dtype=np.int64)

    magnitudes = np.exp(-delays_arr / (2.0 * decay_constant))
    magnitudes = magnitudes * (0.5 + rng.random(num_paths))
    phases = rng.uniform(0.0, 2.0 * np.pi, size=num_paths)
    gains = magnitudes * np.exp(1j * phases)
    # the direct path should be the strongest on average; normalise to peak 1
    gains = gains / np.max(np.abs(gains))
    return MultipathChannel(delays=delays_arr, gains=gains)


def stack_channel_taps(
    channels: "list[MultipathChannel]",
) -> tuple[np.ndarray, np.ndarray]:
    """Stack a channel list into padded ``(delays, gains)`` tap-slot arrays.

    Row ``t`` holds channel ``t``'s taps in their stored (delay-sorted)
    order; channels with fewer taps are padded with zero-gain taps at delay
    0, which add exact zeros wherever they are applied.  This is the layout
    the batched channel application and the batched link engine share.
    """
    if not channels:
        return (
            np.zeros((0, 0), dtype=np.int64),
            np.zeros((0, 0), dtype=np.complex128),
        )
    num_taps = max(channel.num_paths for channel in channels)
    delays = np.zeros((len(channels), num_taps), dtype=np.int64)
    gains = np.zeros((len(channels), num_taps), dtype=np.complex128)
    for t, channel in enumerate(channels):
        delays[t, : channel.num_paths] = channel.delays
        gains[t, : channel.num_paths] = channel.gains
    return delays, gains


def random_sparse_channel_batch(
    num_channels: int,
    num_paths: int,
    max_delay: int,
    rng: np.random.Generator | int | None = None,
    decay_constant: float = 30.0,
    min_separation: int = 2,
    include_direct: bool = True,
) -> list[MultipathChannel]:
    """Draw a stack of independent random sparse channels from one stream.

    The channels are drawn sequentially from ``rng``, so with the same seed
    this is *exactly* equivalent to ``num_channels`` successive calls of
    :func:`random_sparse_channel` — the property the batched link engine
    relies on to stay seed-locked with the per-frame Monte-Carlo loop.
    """
    check_integer("num_channels", num_channels, minimum=0)
    rng = as_rng(rng)
    return [
        random_sparse_channel(
            num_paths=num_paths,
            max_delay=max_delay,
            rng=rng,
            decay_constant=decay_constant,
            min_separation=min_separation,
            include_direct=include_direct,
        )
        for _ in range(num_channels)
    ]
