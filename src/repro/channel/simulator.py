"""End-to-end channel application: multipath convolution plus noise at a target SNR.

The link-level experiments (E7) sweep SNR; the convention used throughout the
library is **per-sample receive SNR**: the ratio of the average received
signal power (after the multipath channel, measured over the non-silent part
of the stream) to the complex noise variance per sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.channel.multipath import MultipathChannel, stack_channel_taps
from repro.channel.noise import complex_awgn, noise_power_for_snr
from repro.utils.rng import as_rng
from repro.utils.validation import ensure_1d_array, ensure_2d_array

__all__ = [
    "ChannelSimulator",
    "apply_channel",
    "apply_channel_batch",
    "add_noise_for_snr",
    "add_noise_for_snr_batch",
    "measure_signal_power",
    "measure_signal_power_batch",
]


def measure_signal_power(samples: np.ndarray, ignore_zeros: bool = True) -> float:
    """Average |x|^2 of a sample stream.

    With ``ignore_zeros`` (default) silent guard intervals are excluded from
    the average, so the SNR definition refers to the active signal.
    """
    samples = ensure_1d_array("samples", samples, dtype=np.complex128)
    power = np.abs(samples) ** 2
    if ignore_zeros:
        active = power[power > 0]
        if active.size == 0:
            return 0.0
        return float(np.mean(active))
    return float(np.mean(power))


def measure_signal_power_batch(samples: np.ndarray, ignore_zeros: bool = True) -> np.ndarray:
    """Per-row average |x|^2 of a ``(frames, length)`` stack.

    Row ``t`` equals ``measure_signal_power(samples[t])`` bit for bit (the
    squared magnitudes are computed for the whole stack at once; the
    zero-exclusion and mean reuse the per-row compaction).
    """
    samples = ensure_2d_array("samples", samples, dtype=np.complex128)
    power = np.abs(samples) ** 2
    if not ignore_zeros:
        return power.mean(axis=1) if samples.shape[1] else np.zeros(samples.shape[0])
    out = np.empty(samples.shape[0], dtype=np.float64)
    for t, row in enumerate(power):
        active = row[row > 0]
        out[t] = np.mean(active) if active.size else 0.0
    return out


def apply_channel(samples: np.ndarray, channel: MultipathChannel) -> np.ndarray:
    """Convolve a transmitted stream with a sparse multipath channel."""
    return channel.apply(samples)


def apply_channel_batch(
    samples: np.ndarray,
    channels: MultipathChannel | Sequence[MultipathChannel],
) -> np.ndarray:
    """Convolve a ``(frames, length)`` stack of streams with multipath channels.

    ``channels`` is either one channel shared by every row or a sequence with
    one channel per row.  Each row equals ``apply_channel`` on that row (same
    tap order, same arithmetic), so the batched and per-frame link paths
    produce bit-identical receive streams.
    """
    samples = ensure_2d_array("samples", samples, dtype=np.complex128)
    if isinstance(channels, MultipathChannel):
        out = np.zeros_like(samples)
        n = samples.shape[1]
        for delay, gain in zip(channels.delays, channels.gains):
            d = int(delay)
            if d >= n:
                continue
            out[:, d:] += gain * samples[:, : n - d]
        return out
    channels = list(channels)
    frames = samples.shape[0]
    if len(channels) != frames:
        raise ValueError(
            f"need one channel per frame: got {len(channels)} channels "
            f"for {frames} frames"
        )
    out = np.zeros_like(samples)
    n = samples.shape[1]
    if not frames:
        return out
    # Taps are applied in tap-slot order (each channel stores its delays
    # sorted, so this is every row's own tap order).  A slot whose delay is
    # the same in every frame — always true for the direct path at delay 0 —
    # is applied to the whole stack in one op; rows whose channel has fewer
    # taps get an exact-zero gain there, which leaves them unchanged.
    delays, gains = stack_channel_taps(channels)
    for k in range(delays.shape[1]):
        slot_delays = delays[:, k]
        d = int(slot_delays[0])
        if np.all(slot_delays == d):
            if d < n:
                out[:, d:] += gains[:, k, np.newaxis] * samples[:, : n - d]
            continue
        for t in range(frames):
            g = gains[t, k]
            if g == 0.0:
                continue
            d = int(slot_delays[t])
            if d < n:
                out[t, d:] += g * samples[t, : n - d]
    return out


def add_noise_for_snr(
    samples: np.ndarray,
    snr_db: float,
    rng: np.random.Generator | int | None = None,
    signal_power: float | None = None,
) -> np.ndarray:
    """Add complex AWGN such that the per-sample SNR equals ``snr_db``.

    ``signal_power`` overrides the measured power (useful when the SNR should
    be referenced to the transmitted rather than the received power).
    """
    samples = ensure_1d_array("samples", samples, dtype=np.complex128)
    if signal_power is None:
        signal_power = measure_signal_power(samples)
    noise_power = noise_power_for_snr(signal_power, snr_db)
    noise = complex_awgn(samples.shape, noise_power, rng)
    return samples + noise


def add_noise_for_snr_batch(
    samples: np.ndarray,
    snr_db: float,
    rng: np.random.Generator | int | None = None,
    signal_power: np.ndarray | float | None = None,
    unit_noise: np.ndarray | tuple[np.ndarray, np.ndarray] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Add complex AWGN to every row of a ``(frames, length)`` stack.

    Each row's noise power is referenced to that row's own measured signal
    power (the same per-frame SNR convention as :func:`add_noise_for_snr`),
    and the noise is applied in one batched multiply-add.

    ``unit_noise`` optionally supplies pre-drawn unit-variance normals of the
    same shape — either one complex array or a ``(real, imaginary)`` pair of
    float arrays (scaling a complex number by a real factor scales the parts
    independently, so the two forms add bit-identical noise; the pair avoids
    building the complex intermediate).  The batched link engine uses this to
    draw the normals frame-by-frame interleaved with the channel and symbol
    draws, keeping its RNG stream locked to the per-frame Monte-Carlo loop.
    Without it the normals are drawn from ``rng`` row by row in the same
    real-then-imaginary order as successive :func:`add_noise_for_snr` calls.

    ``out`` receives the noisy stack (it may be ``samples`` itself for an
    in-place update); only supported together with the ``(real, imaginary)``
    form of ``unit_noise``.
    """
    samples = ensure_2d_array("samples", samples, dtype=np.complex128)
    frames, length = samples.shape
    if signal_power is None:
        power = measure_signal_power_batch(samples)
    else:
        power = np.broadcast_to(
            np.asarray(signal_power, dtype=np.float64), (frames,)
        )
    noise_power = power / (10.0 ** (snr_db / 10.0))
    scale = np.sqrt(noise_power / 2.0)[:, np.newaxis]
    if unit_noise is None:
        rng = as_rng(rng)
        drawn = [
            rng.standard_normal(length) + 1j * rng.standard_normal(length)
            for _ in range(frames)
        ]
        unit_noise = (
            np.stack(drawn) if drawn else np.zeros((0, length), dtype=np.complex128)
        )
    if isinstance(unit_noise, tuple):
        noise_real, noise_imag = unit_noise
        noise_real = ensure_2d_array(
            "unit_noise[0]", noise_real, dtype=np.float64, shape=(frames, length)
        )
        noise_imag = ensure_2d_array(
            "unit_noise[1]", noise_imag, dtype=np.float64, shape=(frames, length)
        )
        received = np.empty_like(samples) if out is None else out
        received.real = samples.real + scale * noise_real
        received.imag = samples.imag + scale * noise_imag
        return received
    if out is not None:
        raise ValueError("out= requires the (real, imaginary) form of unit_noise")
    unit_noise = ensure_2d_array(
        "unit_noise", unit_noise, dtype=np.complex128, shape=(frames, length)
    )
    return samples + scale * unit_noise


@dataclass
class ChannelSimulator:
    """Bundles a multipath channel with a noise level for repeated use.

    Parameters
    ----------
    channel:
        The sparse multipath channel to apply.
    snr_db:
        Per-sample receive SNR; ``None`` disables noise (noiseless channel).
    rng:
        Seed or generator for the noise stream.
    """

    channel: MultipathChannel
    snr_db: float | None = 20.0
    rng: np.random.Generator | int | None = None

    def __post_init__(self) -> None:
        self.rng = as_rng(self.rng)

    def transmit(self, samples: np.ndarray) -> np.ndarray:
        """Pass ``samples`` through the channel and add noise (if enabled)."""
        received = apply_channel(samples, self.channel)
        if self.snr_db is None:
            return received
        return add_noise_for_snr(received, self.snr_db, rng=self.rng)

    def transmit_noiseless(self, samples: np.ndarray) -> np.ndarray:
        """Pass ``samples`` through the channel without noise."""
        return apply_channel(samples, self.channel)
