"""End-to-end channel application: multipath convolution plus noise at a target SNR.

The link-level experiments (E7) sweep SNR; the convention used throughout the
library is **per-sample receive SNR**: the ratio of the average received
signal power (after the multipath channel, measured over the non-silent part
of the stream) to the complex noise variance per sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.multipath import MultipathChannel
from repro.channel.noise import complex_awgn, noise_power_for_snr
from repro.utils.rng import as_rng
from repro.utils.validation import ensure_1d_array

__all__ = ["ChannelSimulator", "apply_channel", "add_noise_for_snr", "measure_signal_power"]


def measure_signal_power(samples: np.ndarray, ignore_zeros: bool = True) -> float:
    """Average |x|^2 of a sample stream.

    With ``ignore_zeros`` (default) silent guard intervals are excluded from
    the average, so the SNR definition refers to the active signal.
    """
    samples = ensure_1d_array("samples", samples, dtype=np.complex128)
    power = np.abs(samples) ** 2
    if ignore_zeros:
        active = power[power > 0]
        if active.size == 0:
            return 0.0
        return float(np.mean(active))
    return float(np.mean(power))


def apply_channel(samples: np.ndarray, channel: MultipathChannel) -> np.ndarray:
    """Convolve a transmitted stream with a sparse multipath channel."""
    return channel.apply(samples)


def add_noise_for_snr(
    samples: np.ndarray,
    snr_db: float,
    rng: np.random.Generator | int | None = None,
    signal_power: float | None = None,
) -> np.ndarray:
    """Add complex AWGN such that the per-sample SNR equals ``snr_db``.

    ``signal_power`` overrides the measured power (useful when the SNR should
    be referenced to the transmitted rather than the received power).
    """
    samples = ensure_1d_array("samples", samples, dtype=np.complex128)
    if signal_power is None:
        signal_power = measure_signal_power(samples)
    noise_power = noise_power_for_snr(signal_power, snr_db)
    noise = complex_awgn(samples.shape, noise_power, rng)
    return samples + noise


@dataclass
class ChannelSimulator:
    """Bundles a multipath channel with a noise level for repeated use.

    Parameters
    ----------
    channel:
        The sparse multipath channel to apply.
    snr_db:
        Per-sample receive SNR; ``None`` disables noise (noiseless channel).
    rng:
        Seed or generator for the noise stream.
    """

    channel: MultipathChannel
    snr_db: float | None = 20.0
    rng: np.random.Generator | int | None = None

    def __post_init__(self) -> None:
        self.rng = as_rng(self.rng)

    def transmit(self, samples: np.ndarray) -> np.ndarray:
        """Pass ``samples`` through the channel and add noise (if enabled)."""
        received = apply_channel(samples, self.channel)
        if self.snr_db is None:
            return received
        return add_noise_for_snr(received, self.snr_db, rng=self.rng)

    def transmit_noiseless(self, samples: np.ndarray) -> np.ndarray:
        """Pass ``samples`` through the channel without noise."""
        return apply_channel(samples, self.channel)
