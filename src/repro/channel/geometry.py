"""Image-method multipath geometry for a shallow-water channel.

In shallow water the dominant propagation paths are the direct path plus
reflections off the sea surface and the bottom.  The classical image method
enumerates those paths by mirroring the source across the two boundaries:
each path is characterised by its number of surface/bottom bounces, its total
length (hence delay) and its amplitude (spreading + absorption + reflection
losses, with a phase flip at each pressure-release surface bounce).

This gives the reproduction a *physically motivated* sparse channel whose
delay spread matches the 10 ms shallow-water assumption the AquaModem
waveform was designed around (Section III), rather than an arbitrary random
tap pattern.

Image enumeration
-----------------
With the surface at ``z = 0`` (pressure release) and the bottom at ``z = h``,
a source at depth ``zs`` has images at depths

* ``2 m h + zs`` — ``|m|`` surface and ``|m|`` bottom bounces, and
* ``2 m h - zs`` — for ``m > 0``: ``m`` bottom and ``m - 1`` surface bounces;
  for ``m <= 0``: ``|m| + 1`` surface and ``|m|`` bottom bounces,

for integer ``m``.  The path length is the straight-line distance from the
image to the receiver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.channel.propagation import thorp_absorption_db_per_km
from repro.utils.validation import check_in_range, check_integer, check_positive

__all__ = ["PropagationPath", "ShallowWaterGeometry", "image_method_paths"]


@dataclass(frozen=True)
class PropagationPath:
    """One resolved propagation path.

    Attributes
    ----------
    length_m:
        Total path length in metres.
    delay_s:
        Absolute propagation delay in seconds.
    amplitude:
        Linear amplitude relative to a 1 m reference (includes reflection
        losses and the surface phase flips, so it may be negative).
    surface_bounces, bottom_bounces:
        Number of reflections of each kind along the path.
    """

    length_m: float
    delay_s: float
    amplitude: float
    surface_bounces: int
    bottom_bounces: int

    @property
    def total_bounces(self) -> int:
        """Total number of boundary interactions."""
        return self.surface_bounces + self.bottom_bounces


@dataclass(frozen=True)
class ShallowWaterGeometry:
    """Geometry of a shallow-water acoustic link.

    Parameters
    ----------
    water_depth_m:
        Depth of the water column.
    source_depth_m, receiver_depth_m:
        Depths of the transmitter and receiver (must be within the column).
    range_m:
        Horizontal separation between transmitter and receiver.
    sound_speed_m_s:
        Speed of sound (defaults to 1500 m/s).
    surface_reflection_loss_db, bottom_reflection_loss_db:
        Per-bounce losses; the surface additionally flips the phase.
    """

    water_depth_m: float = 20.0
    source_depth_m: float = 10.0
    receiver_depth_m: float = 10.0
    range_m: float = 200.0
    sound_speed_m_s: float = 1500.0
    surface_reflection_loss_db: float = 1.0
    bottom_reflection_loss_db: float = 3.0

    def __post_init__(self) -> None:
        check_positive("water_depth_m", self.water_depth_m)
        check_in_range("source_depth_m", self.source_depth_m, 0.0, self.water_depth_m)
        check_in_range("receiver_depth_m", self.receiver_depth_m, 0.0, self.water_depth_m)
        check_positive("range_m", self.range_m)
        check_positive("sound_speed_m_s", self.sound_speed_m_s)
        if self.surface_reflection_loss_db < 0 or self.bottom_reflection_loss_db < 0:
            raise ValueError("reflection losses must be >= 0 dB")

    @property
    def direct_path_delay_s(self) -> float:
        """Delay of the straight-line (direct) path."""
        vertical = self.receiver_depth_m - self.source_depth_m
        return math.hypot(self.range_m, vertical) / self.sound_speed_m_s


def _image_sources(geometry: ShallowWaterGeometry, max_bounces: int) -> list[tuple[float, int, int]]:
    """Enumerate image-source depths with their bounce counts.

    Returns tuples ``(image_depth, surface_bounces, bottom_bounces)`` for every
    image whose total bounce count does not exceed ``max_bounces``.
    """
    h = geometry.water_depth_m
    zs = geometry.source_depth_m
    images: list[tuple[float, int, int]] = []
    # enough orders that all paths with <= max_bounces bounces are covered
    max_order = max_bounces + 1
    for m in range(-max_order, max_order + 1):
        # Family A: image at 2 m h + zs, |m| surface + |m| bottom bounces.
        surface_a, bottom_a = abs(m), abs(m)
        if surface_a + bottom_a <= max_bounces:
            images.append((2.0 * m * h + zs, surface_a, bottom_a))
        # Family B: image at 2 m h - zs.
        if m > 0:
            surface_b, bottom_b = m - 1, m
        else:
            surface_b, bottom_b = abs(m) + 1, abs(m)
        if surface_b + bottom_b <= max_bounces:
            images.append((2.0 * m * h - zs, surface_b, bottom_b))
    return images


def image_method_paths(
    geometry: ShallowWaterGeometry,
    max_bounces: int = 3,
    frequency_khz: float = 24.0,
    min_relative_amplitude: float = 1e-3,
) -> list[PropagationPath]:
    """Enumerate propagation paths via the image method.

    Parameters
    ----------
    geometry:
        Link geometry.
    max_bounces:
        Maximum total number of boundary interactions per path.
    frequency_khz:
        Carrier frequency used for the absorption term.
    min_relative_amplitude:
        Paths weaker than this fraction of the direct-path amplitude are
        dropped.

    Returns
    -------
    list[PropagationPath]
        Paths sorted by increasing delay; the first entry is the direct path.
    """
    check_integer("max_bounces", max_bounces, minimum=0)
    check_positive("frequency_khz", frequency_khz)
    check_in_range("min_relative_amplitude", min_relative_amplitude, 0.0, 1.0)

    zr = geometry.receiver_depth_m
    r = geometry.range_m
    absorption_db_per_m = thorp_absorption_db_per_km(frequency_khz) / 1000.0

    paths: list[PropagationPath] = []
    seen: set[tuple[float, int, int]] = set()
    for depth, surface_bounces, bottom_bounces in _image_sources(geometry, max_bounces):
        vertical = depth - zr
        length = math.hypot(r, vertical)
        key = (round(length, 6), surface_bounces, bottom_bounces)
        if key in seen:
            continue
        seen.add(key)
        loss_db = (
            surface_bounces * geometry.surface_reflection_loss_db
            + bottom_bounces * geometry.bottom_reflection_loss_db
            + absorption_db_per_m * length
        )
        amplitude = (1.0 / max(length, 1.0)) * 10.0 ** (-loss_db / 20.0)
        amplitude *= (-1.0) ** surface_bounces
        paths.append(
            PropagationPath(
                length_m=length,
                delay_s=length / geometry.sound_speed_m_s,
                amplitude=amplitude,
                surface_bounces=surface_bounces,
                bottom_bounces=bottom_bounces,
            )
        )

    paths.sort(key=lambda p: p.delay_s)
    if not paths:
        return paths
    direct_amp = abs(paths[0].amplitude)
    if direct_amp == 0.0:
        return paths
    return [p for p in paths if abs(p.amplitude) >= min_relative_amplitude * direct_amp]
