"""repro — reproduction of "Energy Benefits of Reconfigurable Hardware for Use
in Underwater Sensor Nets" (Benson, Irturk, Cho, Kastner, 2009).

The library implements, from scratch:

* the Matching Pursuits channel-estimation algorithm and a register-transfer
  level model of the paper's Filter-and-Cancel FPGA IP core (:mod:`repro.core`);
* the fixed-point arithmetic it runs on (:mod:`repro.fixedpoint`);
* the DS-SS AquaModem waveform and signal matrices (:mod:`repro.dsp`,
  :mod:`repro.modem`);
* a shallow-water multipath channel simulator (:mod:`repro.channel`);
* calibrated area / timing / power / energy models of the Virtex-4 and
  Spartan-3 FPGAs, the TI C6713 DSP and the MicroBlaze soft core
  (:mod:`repro.hardware`);
* an underwater sensor-network simulator that turns per-estimation energy
  into deployment lifetime (:mod:`repro.network`);
* an experiment harness that regenerates every table and figure of the paper
  (:mod:`repro.analysis`).

Quick start
-----------
>>> import numpy as np
>>> from repro import (AquaModemConfig, aquamodem_signal_matrices,
...                    random_sparse_channel, matching_pursuit)
>>> config = AquaModemConfig()
>>> matrices = aquamodem_signal_matrices(config)
>>> channel = random_sparse_channel(num_paths=3, max_delay=100, rng=0)
>>> received = matrices.synthesize(channel.coefficient_vector(112))
>>> estimate = matching_pursuit(received, matrices, num_paths=6)
>>> set(channel.delays.tolist()).issubset(set(estimate.path_indices.tolist()))
True
"""

from repro.analysis.ablations import aquamodem_signal_matrices
from repro.channel.multipath import MultipathChannel, random_sparse_channel
from repro.core.dse import DesignPoint, DesignSpaceExplorer
from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.core.ipcore import BatchIPCoreEngine, IPCoreConfig, IPCoreSimulator
from repro.core.matching_pursuit import (
    MatchingPursuitResult,
    matching_pursuit,
    matching_pursuit_naive,
)
from repro.dsp.signal_matrix import SignalMatrices, build_signal_matrices
from repro.experiments import (
    ResultCache,
    ResultStore,
    Scenario,
    SeedPolicy,
    SweepSpec,
    get_scenario,
    list_scenarios,
    run_sweep,
)
from repro.hardware.comparison import compare_platforms
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55, get_device
from repro.hardware.fpga import FPGAImplementation
from repro.hardware.processors import microblaze_soft_core, ti_c6713
from repro.modem.config import AquaModemConfig
from repro.modem.receiver import Receiver
from repro.modem.transmitter import Transmitter
from repro.network.simulator import NetworkSimulator
from repro.network.topology import grid_deployment, random_deployment

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core algorithm
    "matching_pursuit",
    "matching_pursuit_naive",
    "MatchingPursuitResult",
    "FixedPointMatchingPursuit",
    "BatchIPCoreEngine",
    "IPCoreConfig",
    "IPCoreSimulator",
    "DesignPoint",
    "DesignSpaceExplorer",
    # signal matrices and waveform
    "SignalMatrices",
    "build_signal_matrices",
    "aquamodem_signal_matrices",
    "AquaModemConfig",
    # channel
    "MultipathChannel",
    "random_sparse_channel",
    # hardware
    "FPGAImplementation",
    "VIRTEX4_XC4VSX55",
    "SPARTAN3_XC3S5000",
    "get_device",
    "ti_c6713",
    "microblaze_soft_core",
    "compare_platforms",
    # experiment orchestration
    "SweepSpec",
    "SeedPolicy",
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "run_sweep",
    "ResultCache",
    "ResultStore",
    # modem / network
    "Transmitter",
    "Receiver",
    "NetworkSimulator",
    "grid_deployment",
    "random_deployment",
]
