"""Atomic file writes: same-directory temp file + :func:`os.replace`.

Every artefact the experiments subsystem persists (cache records, JSONL
results, manifests, CSV exports, trace files) goes through this helper, so a
process killed mid-write — including ``kill -9``, which runs no cleanup —
never leaves a torn file behind.  Readers either see the previous complete
version of the file or the new complete version, nothing in between:

* the temp file is created in the *destination directory* (``os.replace`` is
  only atomic within one filesystem);
* the payload is flushed before the rename, so the rename never publishes a
  partially-buffered file;
* concurrent writers of the same path are safe in the last-write-wins sense:
  both renames succeed, the file ends up as one writer's complete payload.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import IO, Any, Callable

__all__ = ["atomic_write_text", "atomic_writer"]


def atomic_writer(path: Path | str, write: Callable[[IO[str]], Any], *, newline: str | None = None) -> Path:
    """Stream output through ``write(handle)`` and atomically publish it at ``path``.

    ``write`` receives a text handle for a temp file in ``path``'s directory;
    when it returns, the temp file replaces ``path`` in one ``os.replace``
    step.  If ``write`` raises, the temp file is removed and ``path`` is left
    exactly as it was (the atomicity contract interrupted sweeps rely on).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", newline=newline) as handle:
            write(handle)
            handle.flush()
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def atomic_write_text(path: Path | str, text: str) -> Path:
    """Atomically write ``text`` at ``path`` (see :func:`atomic_writer`)."""
    return atomic_writer(path, lambda handle: handle.write(text))
