"""Shared utilities: validation, unit conversion, table rendering, RNG helpers.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` may import from here, but :mod:`repro.utils` never imports from
any other :mod:`repro` subpackage.
"""

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
    check_integer,
    check_power_of_two,
    check_one_of,
    ensure_1d_array,
    ensure_2d_array,
)
from repro.utils.units import (
    db_to_linear,
    linear_to_db,
    db_to_power_ratio,
    power_ratio_to_db,
    joules_to_microjoules,
    microjoules_to_joules,
    seconds_to_microseconds,
    microseconds_to_seconds,
    watts_to_milliwatts,
    hz_to_mhz,
    mhz_to_hz,
    format_si,
)
from repro.utils.tables import AsciiTable, format_table
from repro.utils.rng import as_rng, spawn_rngs

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_integer",
    "check_power_of_two",
    "check_one_of",
    "ensure_1d_array",
    "ensure_2d_array",
    "db_to_linear",
    "linear_to_db",
    "db_to_power_ratio",
    "power_ratio_to_db",
    "joules_to_microjoules",
    "microjoules_to_joules",
    "seconds_to_microseconds",
    "microseconds_to_seconds",
    "watts_to_milliwatts",
    "hz_to_mhz",
    "mhz_to_hz",
    "format_si",
    "AsciiTable",
    "format_table",
    "as_rng",
    "spawn_rngs",
]
