"""Random-number-generator plumbing.

Every stochastic routine in :mod:`repro` accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy) and
normalises it through :func:`as_rng`.  Simulations that need several
independent streams (e.g. one per sensor node) use :func:`spawn_rngs` so the
streams are reproducible yet statistically independent.

:func:`counter_uniforms` provides *counter-based* uniforms: each value is a
pure function of ``(seed, event, slot)`` rather than of a sequential stream
position.  Two engines that enumerate the same events therefore observe the
same draws regardless of how many values each of them happens to evaluate —
the property the batched network engine relies on to stay bit-identical to
the per-packet event loop under stochastic contention.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "counter_uniforms", "spawn_rngs"]

RandomState = int | np.random.Generator | np.random.SeedSequence | None


def as_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so callers can thread
    one generator through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = values + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def counter_uniforms(
    seed: int, event_indices: int | np.ndarray, num_slots: int
) -> np.ndarray:
    """Uniforms in [0, 1) as a pure function of ``(seed, event, slot)``.

    For a scalar ``event_indices`` returns shape ``(num_slots,)``; for an
    array of events returns ``(len(events), num_slots)`` where row ``i`` is
    exactly what the scalar call would produce for ``event_indices[i]`` —
    there is no stream state to align, so scalar and vectorised consumers
    agree element for element no matter which subset of slots each reads.
    """
    if num_slots < 0:
        raise ValueError(f"num_slots must be >= 0, got {num_slots}")
    scalar = np.ndim(event_indices) == 0
    events = np.atleast_1d(np.asarray(event_indices)).astype(np.uint64)
    slots = np.arange(num_slots, dtype=np.uint64)
    with np.errstate(over="ignore"):
        per_event = _splitmix64(np.uint64(seed) ^ _splitmix64(events))
        bits = _splitmix64(
            per_event[:, np.newaxis]
            ^ (slots[np.newaxis, :] * np.uint64(0xD1342543DE82EF95) + np.uint64(1))
        )
    uniforms = (bits >> np.uint64(11)).astype(np.float64) * float(2.0**-53)
    return uniforms[0] if scalar else uniforms


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    The streams are derived with :class:`numpy.random.SeedSequence` spawning,
    which guarantees independence regardless of how many streams are drawn.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's bit stream so spawning
        # stays reproducible relative to the generator state.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]
