"""Random-number-generator plumbing.

Every stochastic routine in :mod:`repro` accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy) and
normalises it through :func:`as_rng`.  Simulations that need several
independent streams (e.g. one per sensor node) use :func:`spawn_rngs` so the
streams are reproducible yet statistically independent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]

RandomState = int | np.random.Generator | np.random.SeedSequence | None


def as_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so callers can thread
    one generator through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    The streams are derived with :class:`numpy.random.SeedSequence` spawning,
    which guarantees independence regardless of how many streams are drawn.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's bit stream so spawning
        # stays reproducible relative to the generator state.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]
