"""Argument validation helpers.

All public entry points of :mod:`repro` validate their inputs eagerly so that
configuration errors surface at construction time with a clear message rather
than as NaNs deep inside a simulation.  The helpers below raise ``ValueError``
(or ``TypeError`` for outright wrong types) with messages that always include
the offending parameter name and value.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_integer",
    "check_power_of_two",
    "check_one_of",
    "ensure_1d_array",
    "ensure_2d_array",
]


def _is_real_number(value: Any) -> bool:
    """Return True for Python/NumPy real scalars (bools excluded)."""
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return False
    return isinstance(value, (int, float, np.integer, np.floating))


def check_positive(name: str, value: Any) -> float:
    """Validate that ``value`` is a real number strictly greater than zero."""
    if not _is_real_number(value):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: Any) -> float:
    """Validate that ``value`` is a real number greater than or equal to zero."""
    if not _is_real_number(value):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(name: str, value: Any) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not _is_real_number(value):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not (0.0 <= float(value) <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_in_range(
    name: str,
    value: Any,
    lower: float | None = None,
    upper: float | None = None,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies within ``[lower, upper]`` (or open interval)."""
    if not _is_real_number(value):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    v = float(value)
    if inclusive:
        if lower is not None and v < lower:
            raise ValueError(f"{name} must be >= {lower}, got {value!r}")
        if upper is not None and v > upper:
            raise ValueError(f"{name} must be <= {upper}, got {value!r}")
    else:
        if lower is not None and v <= lower:
            raise ValueError(f"{name} must be > {lower}, got {value!r}")
        if upper is not None and v >= upper:
            raise ValueError(f"{name} must be < {upper}, got {value!r}")
    return v


def check_integer(
    name: str,
    value: Any,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int:
    """Validate that ``value`` is an integer (optionally within bounds)."""
    if isinstance(value, bool) or isinstance(value, np.bool_):
        raise TypeError(f"{name} must be an integer, got bool")
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    v = int(value)
    if minimum is not None and v < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {v}")
    if maximum is not None and v > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {v}")
    return v


def check_power_of_two(name: str, value: Any) -> int:
    """Validate that ``value`` is a positive integer power of two."""
    v = check_integer(name, value, minimum=1)
    if v & (v - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {v}")
    return v


def check_one_of(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Validate that ``value`` is one of the ``allowed`` values."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def ensure_1d_array(
    name: str,
    value: Sequence | np.ndarray,
    *,
    dtype: Any | None = None,
    length: int | None = None,
) -> np.ndarray:
    """Convert ``value`` to a contiguous 1-D ndarray and validate its length."""
    arr = np.ascontiguousarray(value, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {arr.shape[0]}")
    return arr


def ensure_2d_array(
    name: str,
    value: Sequence | np.ndarray,
    *,
    dtype: Any | None = None,
    shape: tuple[int | None, int | None] | None = None,
) -> np.ndarray:
    """Convert ``value`` to a contiguous 2-D ndarray and validate its shape.

    ``shape`` entries set to ``None`` are not checked.
    """
    arr = np.ascontiguousarray(value, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if shape is not None:
        rows, cols = shape
        if rows is not None and arr.shape[0] != rows:
            raise ValueError(f"{name} must have {rows} rows, got {arr.shape[0]}")
        if cols is not None and arr.shape[1] != cols:
            raise ValueError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    return arr
