"""Unit conversions used throughout the energy / acoustics models.

Conventions
-----------
* Internally everything is SI: seconds, watts, joules, hertz, metres.
* The paper reports microseconds, microjoules and MHz; the conversion helpers
  here keep that translation in one place so tables can be rendered in the
  paper's units without sprinkling ``1e6`` factors around the codebase.
* "dB" helpers come in two flavours: amplitude ratios (20 log10) and power
  ratios (10 log10).
"""

from __future__ import annotations

import math

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "db_to_power_ratio",
    "power_ratio_to_db",
    "joules_to_microjoules",
    "microjoules_to_joules",
    "seconds_to_microseconds",
    "microseconds_to_seconds",
    "seconds_to_milliseconds",
    "milliseconds_to_seconds",
    "watts_to_milliwatts",
    "milliwatts_to_watts",
    "hz_to_mhz",
    "mhz_to_hz",
    "hz_to_khz",
    "khz_to_hz",
    "format_si",
]

MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6


def db_to_linear(db: float) -> float:
    """Convert an amplitude gain in dB to a linear amplitude ratio (20 log10)."""
    return 10.0 ** (db / 20.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear amplitude ratio to dB (20 log10)."""
    if ratio <= 0:
        raise ValueError(f"amplitude ratio must be > 0, got {ratio!r}")
    return 20.0 * math.log10(ratio)


def db_to_power_ratio(db: float) -> float:
    """Convert a power gain in dB to a linear power ratio (10 log10)."""
    return 10.0 ** (db / 10.0)


def power_ratio_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB (10 log10)."""
    if ratio <= 0:
        raise ValueError(f"power ratio must be > 0, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def joules_to_microjoules(joules: float) -> float:
    """Convert joules to microjoules."""
    return joules / MICRO


def microjoules_to_joules(microjoules: float) -> float:
    """Convert microjoules to joules."""
    return microjoules * MICRO


def seconds_to_microseconds(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / MICRO


def microseconds_to_seconds(microseconds: float) -> float:
    """Convert microseconds to seconds."""
    return microseconds * MICRO


def seconds_to_milliseconds(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLI


def milliseconds_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * MILLI


def watts_to_milliwatts(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts / MILLI


def milliwatts_to_watts(milliwatts: float) -> float:
    """Convert milliwatts to watts."""
    return milliwatts * MILLI


def hz_to_mhz(hz: float) -> float:
    """Convert hertz to megahertz."""
    return hz / MEGA


def mhz_to_hz(mhz: float) -> float:
    """Convert megahertz to hertz."""
    return mhz * MEGA


def hz_to_khz(hz: float) -> float:
    """Convert hertz to kilohertz."""
    return hz / KILO


def khz_to_hz(khz: float) -> float:
    """Convert kilohertz to hertz."""
    return khz * KILO


_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
]


def format_si(value: float, unit: str = "", precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(3.95e-6, 's') == '3.95 us'``.

    Zero and non-finite values are formatted without a prefix.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:.{precision}g} {unit}".rstrip()
    magnitude = abs(value)
    for factor, prefix in _SI_PREFIXES:
        if magnitude >= factor:
            return f"{value / factor:.{precision}g} {prefix}{unit}".rstrip()
    factor, prefix = _SI_PREFIXES[-1]
    return f"{value / factor:.{precision}g} {prefix}{unit}".rstrip()
