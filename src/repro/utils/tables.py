"""Plain-text table rendering for experiment reports.

The benchmark harness regenerates the paper's tables; these helpers render the
resulting rows as aligned ASCII tables (the same representation is reused by
the examples and by EXPERIMENTS.md generation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["AsciiTable", "format_table"]


def _render_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


@dataclass
class AsciiTable:
    """An accumulating ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    title:
        Optional title rendered above the table.
    float_format:
        ``format()`` spec applied to float cells (default ``.4g``).
    """

    headers: Sequence[str]
    title: str = ""
    float_format: str = ".4g"
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row; the number of values must match the header count."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} values per row, got {len(values)}"
            )
        self.rows.append([_render_cell(v, self.float_format) for v in values])

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append several rows at once."""
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """Render the table as a string with aligned columns."""
        headers = [str(h) for h in self.headers]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        sep = "-+-".join("-" * width for width in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(headers))
        lines.append(sep)
        lines.extend(fmt_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
    float_format: str = ".4g",
) -> str:
    """One-shot helper: build and render an :class:`AsciiTable`."""
    table = AsciiTable(headers=headers, title=title, float_format=float_format)
    table.add_rows(rows)
    return table.render()
