"""Confidence intervals and streaming accumulators for Monte-Carlo estimates.

A reproduction is only as credible as the uncertainty on its reproduced
numbers, so this module is the single home of every interval computation in
the stack:

* :func:`wilson_interval` / :func:`clopper_pearson_interval` — binomial
  proportion intervals (symbol error rates, delivery ratios).  Wilson is the
  default (good coverage even at extreme proportions, cheap); Clopper-Pearson
  is the exact/conservative alternative, computed from the inverse regularised
  incomplete beta function implemented here in pure stdlib ``math`` (no scipy
  dependency);
* :func:`normal_interval` — the large-sample interval on a mean, for metrics
  that are not proportions (lifetimes, cycle counts);
* :class:`OnlineMean` / :class:`BinomialAccumulator` — O(1)-memory
  accumulators (Welford's algorithm for the former) that the streaming
  aggregation layer feeds record by record, so a 10^7-trial sweep computes
  means and intervals without ever materialising its records;
* :func:`group_stats` — the streaming grouped aggregator built on them:
  one pass over an iterable of tidy records, skipping records that lack the
  group or metric key (heterogeneous records are documented-normal in the
  store layer).

The adaptive sweep engine (:mod:`repro.experiments.adaptive`) stops sampling
a parameter point once its interval's half-width drops below the requested
precision; the warehouse comparison layer uses the same intervals to separate
signal from Monte-Carlo noise in run-to-run diffs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Any, Iterable, Mapping

__all__ = [
    "ConfidenceInterval",
    "wilson_interval",
    "clopper_pearson_interval",
    "binomial_interval",
    "normal_interval",
    "BINOMIAL_METHODS",
    "OnlineMean",
    "BinomialAccumulator",
    "GroupStats",
    "group_stats",
]

#: Interval methods :func:`binomial_interval` understands.
BINOMIAL_METHODS = ("wilson", "clopper-pearson")


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval around a point estimate at one confidence level."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half the interval width — the precision the adaptive engine gates on."""
        return (self.high - self.low) / 2.0

    def to_dict(self) -> dict[str, float]:
        """The interval as plain JSON-ready floats (manifest / API payloads)."""
        return {
            "estimate": self.estimate,
            "low": self.low,
            "high": self.high,
            "half_width": self.half_width,
            "confidence": self.confidence,
        }


def _z_score(confidence: float) -> float:
    """The two-sided standard-normal quantile for ``confidence``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def wilson_interval(
    successes: float, trials: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """The Wilson score interval on a binomial proportion.

    Unlike the naive Wald interval it never collapses to zero width at 0 or
    ``trials`` successes, which is exactly the regime deep SER sweeps live in
    (error rates near 1e-5).  ``successes``/``trials`` may be fractional —
    aggregated per-trial rates are accepted as well as raw counts.
    """
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    z = _z_score(confidence)
    n = float(trials)
    p = successes / n
    z2 = z * z
    denominator = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denominator
    margin = (z / denominator) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return ConfidenceInterval(
        estimate=p,
        low=max(0.0, centre - margin),
        high=min(1.0, centre + margin),
        confidence=confidence,
    )


# --------------------------------------------------------------------------- #
# regularised incomplete beta (pure stdlib; Numerical-Recipes-style Lentz
# continued fraction) and its inverse, for the exact Clopper-Pearson bounds
# --------------------------------------------------------------------------- #
def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Lentz's continued fraction for the incomplete beta function."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h


def _regularised_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, accurate over the whole domain via the symmetry relation."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(log_front)
    # the continued fraction converges fast only below the distribution bulk
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def _beta_ppf(quantile: float, a: float, b: float) -> float:
    """Inverse of the regularised incomplete beta, by bisection (monotone)."""
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    low, high = 0.0, 1.0
    for _ in range(200):
        mid = (low + high) / 2.0
        if _regularised_incomplete_beta(a, b, mid) < quantile:
            low = mid
        else:
            high = mid
        if high - low < 1e-12:
            break
    return (low + high) / 2.0


def clopper_pearson_interval(
    successes: float, trials: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """The exact (conservative) Clopper-Pearson binomial interval.

    Guaranteed coverage at every proportion, at the price of being wider than
    Wilson — the right choice when an interval is a hard acceptance gate.
    Fractional counts are rounded to the nearest integer (the interval is only
    defined on counts).
    """
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    n = int(round(trials))
    k = min(n, int(round(successes)))
    alpha = 1.0 - confidence
    low = 0.0 if k == 0 else _beta_ppf(alpha / 2.0, k, n - k + 1)
    high = 1.0 if k == n else _beta_ppf(1.0 - alpha / 2.0, k + 1, n - k)
    return ConfidenceInterval(
        estimate=k / n if n else 0.0, low=low, high=high, confidence=confidence
    )


def binomial_interval(
    successes: float, trials: float, confidence: float = 0.95, method: str = "wilson"
) -> ConfidenceInterval:
    """Dispatch to :func:`wilson_interval` or :func:`clopper_pearson_interval`."""
    if method == "wilson":
        return wilson_interval(successes, trials, confidence)
    if method == "clopper-pearson":
        return clopper_pearson_interval(successes, trials, confidence)
    raise ValueError(
        f"unknown binomial interval method {method!r}; "
        f"expected one of {', '.join(BINOMIAL_METHODS)}"
    )


def normal_interval(
    mean: float, std: float, count: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """The large-sample normal interval on a mean (non-proportion metrics)."""
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    margin = _z_score(confidence) * std / math.sqrt(count)
    return ConfidenceInterval(
        estimate=mean, low=mean - margin, high=mean + margin, confidence=confidence
    )


# --------------------------------------------------------------------------- #
# O(1)-memory accumulators
# --------------------------------------------------------------------------- #
class OnlineMean:
    """Streaming mean/variance via Welford's algorithm (numerically stable)."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count: int = 0
        self.mean: float = 0.0
        self._m2: float = 0.0

    def add(self, value: float) -> None:
        """Fold one observation in (O(1) time and memory)."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """The sample variance (0.0 below two observations)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        """The sample standard deviation."""
        return math.sqrt(self.variance)

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval | None:
        """The normal interval on the mean (``None`` below two observations)."""
        if self.count < 2:
            return None
        return normal_interval(self.mean, self.std, self.count, confidence)


class BinomialAccumulator:
    """Streaming success/trial totals for a binomial proportion."""

    __slots__ = ("successes", "trials")

    def __init__(self) -> None:
        self.successes: float = 0.0
        self.trials: float = 0.0

    def add(self, successes: float, trials: float = 1.0) -> None:
        """Fold one observation in — a raw count pair or a per-trial rate."""
        if trials <= 0:
            raise ValueError(f"trials must be > 0, got {trials}")
        if not 0 <= successes <= trials:
            raise ValueError(f"successes must be in [0, {trials}], got {successes}")
        self.successes += successes
        self.trials += trials

    @property
    def proportion(self) -> float:
        """The pooled success proportion (0.0 before any observation)."""
        return self.successes / self.trials if self.trials else 0.0

    def interval(
        self, confidence: float = 0.95, method: str = "wilson"
    ) -> ConfidenceInterval | None:
        """The proportion interval (``None`` before any observation)."""
        if self.trials <= 0:
            return None
        return binomial_interval(self.successes, self.trials, confidence, method)


# --------------------------------------------------------------------------- #
# streaming grouped aggregation over tidy records
# --------------------------------------------------------------------------- #
@dataclass
class GroupStats:
    """One group's streamed summary: count, mean and interval on the metric."""

    group: Any
    count: int
    mean: float
    interval: ConfidenceInterval | None

    def to_dict(self) -> dict[str, Any]:
        """The summary as a JSON-ready dict."""
        return {
            "group": self.group,
            "count": self.count,
            "mean": self.mean,
            "interval": self.interval.to_dict() if self.interval is not None else None,
        }


def group_stats(
    records: Iterable[Mapping[str, Any]],
    by: str,
    metric: str,
    confidence: float = 0.95,
) -> dict[Any, GroupStats]:
    """One streaming pass: mean + interval of ``metric`` grouped by ``by``.

    Records missing either key are skipped (heterogeneous records — scenarios
    whose metric sets differ per parameter — are documented-normal), so the
    aggregator is safe over any merged result stream.  Memory is O(groups),
    never O(records).
    """
    accumulators: dict[Any, OnlineMean] = {}
    for record in records:
        if by not in record or metric not in record:
            continue
        value = record[metric]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        accumulators.setdefault(record[by], OnlineMean()).add(float(value))
    return {
        group: GroupStats(
            group=group,
            count=acc.count,
            mean=acc.mean,
            interval=acc.interval(confidence),
        )
        for group, acc in accumulators.items()
    }
