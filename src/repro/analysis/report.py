"""Paper-vs-measured report rendering.

Collects the reproductions of every table and figure into one plain-text
report — the content that EXPERIMENTS.md summarises and that the benchmark
harness prints.
"""

from __future__ import annotations

from repro.analysis.figure4 import reproduce_figure4
from repro.analysis.figure6 import render_figure6, reproduce_figure6
from repro.analysis.table1 import render_table1, reproduce_table1
from repro.analysis.table2 import render_table2, reproduce_table2
from repro.analysis.table3 import render_table3, reproduce_table3

__all__ = ["comparison_report"]


def comparison_report(num_paths: int = 6) -> str:
    """Render the full paper-vs-measured comparison as plain text."""
    sections: list[str] = []

    table1 = reproduce_table1()
    sections.append(render_table1(table1))
    matches = sum(1 for row in table1 if row.matches)
    sections.append(f"Table 1: {matches}/{len(table1)} parameters reproduced exactly.\n")

    figure4 = reproduce_figure4()
    sections.append(
        "Figure 4: composite waveform set regenerated — "
        f"{figure4.num_waveforms} waveforms x {figure4.chips_per_waveform} chips "
        f"({figure4.samples_per_waveform} samples), orthogonal={figure4.orthogonal}, "
        f"constant envelope={figure4.constant_envelope}.\n"
    )

    table2 = reproduce_table2(num_paths=num_paths)
    sections.append(render_table2(table2))
    feasible = [r for r in table2 if r.feasible and r.paper_slices is not None]
    if feasible:
        worst_area = max(r.slice_error for r in feasible if r.slice_error is not None)
        worst_time = max(r.time_error for r in feasible if r.time_error is not None)
        sections.append(
            f"Table 2: worst-case area error {worst_area:.2%}, worst-case timing error {worst_time:.2%}.\n"
        )

    figure6 = reproduce_figure6(num_paths=num_paths)
    sections.append(render_figure6(figure6))

    table3 = reproduce_table3(num_paths=num_paths)
    sections.append(render_table3(table3))
    headline = next((r for r in table3 if "112FC" in r.label), None)
    if headline is not None:
        sections.append(
            "Headline: fully parallel Virtex-4 8-bit design gives "
            f"{headline.energy_decrease_vs_microcontroller:.1f}X (paper 210.6X) vs the microcontroller "
            f"and {headline.energy_decrease_vs_dsp:.1f}X (paper 52.7X) vs the DSP.\n"
        )

    return "\n".join(sections)
