"""Sensitivity of the headline energy ratios to the calibration constants.

Because the original tool chain (XPower, TI's estimator, board measurements)
is replaced by calibrated analytical models (DESIGN.md §2), it is worth
knowing how much the paper's headline conclusion — the fully parallel 8-bit
Virtex-4 core beats the microcontroller by ~210x and the DSP by ~52x — depends
on each fitted constant.  :func:`headline_sensitivity` perturbs one constant
at a time by a relative amount and reports the resulting ratios; the benchmark
asserts that the *conclusion* (two-orders-of-magnitude advantage over the
microcontroller, tens of times over the DSP) survives ±20 % perturbations of
every constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.devices import FPGADevice, VIRTEX4_XC4VSX55
from repro.hardware.fpga import FPGAImplementation
from repro.hardware.processors import ProcessorImplementation, microblaze_soft_core, ti_c6713
from repro.utils.validation import check_in_range

__all__ = ["SensitivityPoint", "headline_sensitivity", "PERTURBABLE_PARAMETERS"]

#: The calibration constants the sensitivity study perturbs.
PERTURBABLE_PARAMETERS: tuple[str, ...] = (
    "fpga_quiescent_power",
    "fpga_dynamic_coefficient",
    "fpga_clock_frequency",
    "dsp_active_power",
    "dsp_clock_frequency",
    "microblaze_active_power",
    "microblaze_clock_frequency",
)


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline ratios after one perturbation."""

    parameter: str
    relative_change: float
    energy_decrease_vs_microcontroller: float
    energy_decrease_vs_dsp: float
    fpga_energy_uj: float


def _perturbed_device(device: FPGADevice, parameter: str, factor: float) -> FPGADevice:
    if parameter == "fpga_quiescent_power":
        return replace(device, quiescent_power_w=device.quiescent_power_w * factor)
    if parameter == "fpga_dynamic_coefficient":
        return replace(
            device, dynamic_power_per_slice_hz=device.dynamic_power_per_slice_hz * factor
        )
    if parameter == "fpga_clock_frequency":
        return replace(
            device,
            clock_frequency_hz={b: f * factor for b, f in device.clock_frequency_hz.items()},
        )
    return device


def headline_sensitivity(
    parameter: str,
    relative_change: float,
    num_paths: int = 6,
) -> SensitivityPoint:
    """Recompute the headline ratios with one calibration constant perturbed.

    Parameters
    ----------
    parameter:
        One of :data:`PERTURBABLE_PARAMETERS`.
    relative_change:
        Fractional change, e.g. ``+0.2`` for +20 %; must lie in (-0.9, 10).
    num_paths:
        Workload Nf.
    """
    if parameter not in PERTURBABLE_PARAMETERS:
        raise ValueError(
            f"unknown parameter {parameter!r}; choose one of {PERTURBABLE_PARAMETERS}"
        )
    check_in_range("relative_change", relative_change, -0.9, 10.0)
    factor = 1.0 + relative_change

    device = _perturbed_device(VIRTEX4_XC4VSX55, parameter, factor)
    fpga = FPGAImplementation(device, num_fc_blocks=112, word_length=8, num_paths=num_paths)

    dsp_model = ti_c6713(
        clock_hz=225e6 * (factor if parameter == "dsp_clock_frequency" else 1.0),
        active_power_w=1.07 * (factor if parameter == "dsp_active_power" else 1.0),
    )
    microblaze_model = microblaze_soft_core(
        clock_hz=100e6 * (factor if parameter == "microblaze_clock_frequency" else 1.0),
        active_power_w=0.3155 * (factor if parameter == "microblaze_active_power" else 1.0),
    )
    dsp = ProcessorImplementation(dsp_model, num_paths=num_paths)
    microblaze = ProcessorImplementation(microblaze_model, num_paths=num_paths)

    fpga_energy = fpga.energy.energy_uj
    return SensitivityPoint(
        parameter=parameter,
        relative_change=relative_change,
        energy_decrease_vs_microcontroller=microblaze.energy.energy_uj / fpga_energy,
        energy_decrease_vs_dsp=dsp.energy.energy_uj / fpga_energy,
        fpga_energy_uj=fpga_energy,
    )
