"""Experiment E3: regenerate Table 2 (area / timing / throughput DSE).

Sweeps the paper's design axes — bit width {8, 12, 16}, FC blocks
{112, 14, 1}, device {Virtex-4 xc4vsx55, Spartan-3 xc3s5000} — through the
calibrated hardware models, and pairs each feasible point with the paper's
published row.  The infeasible (112-block Spartan-3) points are reported with
the reason, matching the footnote of the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import paper_data
from repro.core.dse import DesignSpaceExplorer, PAPER_BIT_WIDTHS, PAPER_PARALLELISM_LEVELS
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.utils.tables import AsciiTable

__all__ = ["Table2Row", "reproduce_table2", "render_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One row of the reproduced Table 2, with the paper's values alongside."""

    word_length: int
    num_fc_blocks: int
    device_family: str
    feasible: bool
    slices: int
    time_us: float
    throughput_per_us: float
    paper_slices: int | None
    paper_time_us: float | None
    paper_throughput_per_us: float | None

    @property
    def slice_error(self) -> float | None:
        """Relative error of the area model against the paper (None if not published)."""
        if self.paper_slices is None or not self.feasible:
            return None
        return abs(self.slices - self.paper_slices) / self.paper_slices

    @property
    def time_error(self) -> float | None:
        """Relative error of the timing model against the paper."""
        if self.paper_time_us is None or not self.feasible:
            return None
        return abs(self.time_us - self.paper_time_us) / self.paper_time_us


def reproduce_table2(num_paths: int = 6) -> list[Table2Row]:
    """Regenerate every Table 2 row (including the infeasible Spartan-3 points)."""
    explorer = DesignSpaceExplorer(
        devices=(VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000),
        parallelism_levels=PAPER_PARALLELISM_LEVELS,
        bit_widths=PAPER_BIT_WIDTHS,
        num_paths=num_paths,
        include_infeasible=True,
    )
    rows: list[Table2Row] = []
    for evaluation in explorer.explore():
        key = (
            evaluation.point.word_length,
            evaluation.point.num_fc_blocks,
            evaluation.point.device.family,
        )
        paper_row = paper_data.TABLE2_ROWS.get(key)
        rows.append(
            Table2Row(
                word_length=evaluation.point.word_length,
                num_fc_blocks=evaluation.point.num_fc_blocks,
                device_family=evaluation.point.device.family,
                feasible=evaluation.feasible,
                slices=evaluation.slices,
                time_us=evaluation.time_us,
                throughput_per_us=evaluation.throughput_per_us,
                paper_slices=paper_row[0] if paper_row else None,
                paper_time_us=paper_row[1] if paper_row else None,
                paper_throughput_per_us=paper_row[2] if paper_row else None,
            )
        )
    return rows


def render_table2(rows: list[Table2Row] | None = None) -> str:
    """ASCII rendering of the reproduced Table 2 with paper values alongside."""
    if rows is None:
        rows = reproduce_table2()
    table = AsciiTable(
        headers=[
            "Bits", "#FC", "Device", "Feasible",
            "Slices", "Slices(paper)", "Time us", "Time us(paper)",
            "Tput 1/us", "Tput(paper)",
        ],
        title="Table 2 — area, timing and throughput of the design space exploration",
    )
    for r in rows:
        table.add_row(
            r.word_length, r.num_fc_blocks, r.device_family, r.feasible,
            r.slices, r.paper_slices if r.paper_slices is not None else "-",
            r.time_us, r.paper_time_us if r.paper_time_us is not None else "-",
            r.throughput_per_us,
            r.paper_throughput_per_us if r.paper_throughput_per_us is not None else "-",
        )
    return table.render()
