"""Published values from Benson et al., "Energy Benefits of Reconfigurable
Hardware for Use in Underwater Sensor Nets".

These constants are the paper's reported numbers, kept verbatim so every
benchmark can print a paper-vs-measured comparison and every calibration test
can bound the model error.  Units follow the paper: microseconds,
microjoules, watts, slices.

Known internal inconsistency: the MicroBlaze row of Table 3 reports 0.38 W and
2000.40 uJ over 6341.84 us, but 0.38 x 6341.84 = 2409.9 uJ.  The 210.57x
headline ratio is 2000.40 / 9.50, so the energy value is authoritative; the
implied power is ~0.3155 W.  See EXPERIMENTS.md.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_PARAMETERS",
    "TABLE2_ROWS",
    "TABLE3_ROWS",
    "FIGURE6_QUIESCENT_POWER_W",
    "HEADLINE_ENERGY_DECREASE",
    "REAL_TIME_DEADLINE_MS",
    "AQUAMODEM_NUM_PATHS",
    "FULLY_PARALLEL_DSP48_REQUIRED",
]

#: Table 1 — AquaModem design parameters (value, unit).
TABLE1_PARAMETERS: dict[str, tuple[float, str]] = {
    "walsh_symbol_length": (8, "symbols"),
    "m_sequence_length": (7, "chips"),
    "chip_duration": (0.2, "ms"),
    "sampling_interval": (0.1, "ms"),
    "symbol_duration": (11.2, "ms"),
    "time_guard_interval": (11.2, "ms"),
    "samples_per_symbol": (112, "samples"),
    "samples_per_time_guard": (112, "samples"),
    "total_receive_vector_samples": (224, "samples"),
}

#: Table 2 — area, timing and throughput of the design space exploration.
#: Keys: (bit width, #FC blocks, device family).
#: Values: (area slices, timing us, throughput per us).
TABLE2_ROWS: dict[tuple[int, int, str], tuple[int, float, float]] = {
    (8, 112, "Virtex-4"): (11508, 3.95, 0.253),
    (8, 14, "Virtex-4"): (1439, 31.63, 0.032),
    (8, 14, "Spartan-3"): (1897, 48.94, 0.020),
    (8, 1, "Virtex-4"): (103, 442.80, 0.002),
    (8, 1, "Spartan-3"): (136, 685.17, 0.001),
    (12, 112, "Virtex-4"): (16884, 4.10, 0.244),
    (12, 14, "Virtex-4"): (2111, 32.83, 0.030),
    (12, 14, "Spartan-3"): (2783, 49.85, 0.020),
    (12, 1, "Virtex-4"): (151, 459.65, 0.002),
    (12, 1, "Spartan-3"): (199, 697.83, 0.001),
    (16, 112, "Virtex-4"): (22260, 4.32, 0.231),
    (16, 14, "Virtex-4"): (2783, 34.59, 0.029),
    (16, 14, "Spartan-3"): (3665, 52.65, 0.019),
    (16, 1, "Virtex-4"): (199, 484.24, 0.002),
    (16, 1, "Spartan-3"): (262, 737.07, 0.001),
}

#: Table 3 — platform comparison.
#: Keys: platform label.  Values: (time us, power W, energy uJ,
#: energy decrease vs MicroBlaze, energy decrease vs DSP).
TABLE3_ROWS: dict[str, tuple[float, float, float, float, float]] = {
    "MicroBlaze 32bit": (6341.84, 0.38, 2000.40, 1.0, 0.25),
    "DSP 32bit": (468.0, 1.07, 500.76, 3.99, 1.0),
    "Virtex-4 1FC 16bit": (484.24, 0.74, 360.52, 5.55, 1.39),
    "Spartan-3 1FC 16bit": (737.07, 0.35, 260.92, 7.67, 1.92),
    "Virtex-4 112FC 8bit": (3.95, 2.40, 9.50, 210.57, 52.71),
    "Spartan-3 14FC 8bit": (48.94, 0.53, 25.82, 77.47, 19.39),
}

#: Figure 6 — quiescent power of the two devices (W).
FIGURE6_QUIESCENT_POWER_W: dict[str, float] = {
    "Virtex-4": 0.723,
    "Spartan-3": 0.335,
}

#: Headline result: energy decrease of the fully parallel 8-bit Virtex-4 core.
HEADLINE_ENERGY_DECREASE: dict[str, float] = {
    "vs_microcontroller": 210.57,
    "vs_dsp": 52.71,
}

#: The real-time constraint between successive receive vectors (Section IV).
REAL_TIME_DEADLINE_MS: float = 22.4

#: Nf used for every design in the paper's evaluation.
AQUAMODEM_NUM_PATHS: int = 6

#: DSP48 resources needed by the fully parallel design (2 per FC block),
#: versus 512 available on the Virtex-4 and 104 on the Spartan-3.
FULLY_PARALLEL_DSP48_REQUIRED: int = 224
