"""Experiment E5: regenerate Table 3 (platform comparison, 210x / 52x headline).

Compares the MicroBlaze and TI C6713 baselines against the least- and
most-energy-consuming Virtex-4 and Spartan-3 IP-core designs, reporting the
energy-decrease factors relative to both baselines, and pairs every row with
the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import paper_data
from repro.hardware.comparison import compare_platforms
from repro.utils.tables import AsciiTable

__all__ = ["Table3Row", "reproduce_table3", "render_table3"]

#: Mapping from our platform labels to the paper's Table 3 row labels.
_LABEL_TO_PAPER: dict[str, str] = {
    "MicroBlaze 32bit": "MicroBlaze 32bit",
    "TI C6713 DSP 32bit": "DSP 32bit",
    "Virtex-4 1FC 16bit": "Virtex-4 1FC 16bit",
    "Spartan-3 1FC 16bit": "Spartan-3 1FC 16bit",
    "Virtex-4 112FC 8bit": "Virtex-4 112FC 8bit",
    "Spartan-3 14FC 8bit": "Spartan-3 14FC 8bit",
}


@dataclass(frozen=True)
class Table3Row:
    """One reproduced row of Table 3 with the paper's values alongside."""

    label: str
    time_us: float
    power_w: float
    energy_uj: float
    energy_decrease_vs_microcontroller: float
    energy_decrease_vs_dsp: float
    paper_time_us: float | None
    paper_power_w: float | None
    paper_energy_uj: float | None
    paper_decrease_vs_microcontroller: float | None
    paper_decrease_vs_dsp: float | None

    @property
    def energy_error(self) -> float | None:
        """Relative error of the modelled energy against the paper."""
        if self.paper_energy_uj is None:
            return None
        return abs(self.energy_uj - self.paper_energy_uj) / self.paper_energy_uj


def reproduce_table3(num_paths: int = 6) -> list[Table3Row]:
    """Regenerate the six rows of Table 3."""
    comparison = compare_platforms(num_paths=num_paths)
    rows: list[Table3Row] = []
    for result in comparison.results:
        paper_label = _LABEL_TO_PAPER.get(result.label)
        paper_row = paper_data.TABLE3_ROWS.get(paper_label) if paper_label else None
        rows.append(
            Table3Row(
                label=result.label,
                time_us=result.time_us,
                power_w=result.power_w,
                energy_uj=result.energy_uj,
                energy_decrease_vs_microcontroller=result.energy_decrease_vs_microcontroller,
                energy_decrease_vs_dsp=result.energy_decrease_vs_dsp,
                paper_time_us=paper_row[0] if paper_row else None,
                paper_power_w=paper_row[1] if paper_row else None,
                paper_energy_uj=paper_row[2] if paper_row else None,
                paper_decrease_vs_microcontroller=paper_row[3] if paper_row else None,
                paper_decrease_vs_dsp=paper_row[4] if paper_row else None,
            )
        )
    return rows


def render_table3(rows: list[Table3Row] | None = None) -> str:
    """ASCII rendering of the reproduced Table 3 with paper values alongside."""
    if rows is None:
        rows = reproduce_table3()
    table = AsciiTable(
        headers=[
            "Platform", "Time us", "Time(paper)", "Power W", "Power(paper)",
            "Energy uJ", "Energy(paper)", "vs uC", "vs uC(paper)", "vs DSP", "vs DSP(paper)",
        ],
        title="Table 3 — comparison of the DSP / MicroBlaze / FPGA implementations",
    )
    for r in rows:
        table.add_row(
            r.label,
            r.time_us, r.paper_time_us if r.paper_time_us is not None else "-",
            r.power_w, r.paper_power_w if r.paper_power_w is not None else "-",
            r.energy_uj, r.paper_energy_uj if r.paper_energy_uj is not None else "-",
            f"{r.energy_decrease_vs_microcontroller:.2f}X",
            f"{r.paper_decrease_vs_microcontroller:.2f}X" if r.paper_decrease_vs_microcontroller else "-",
            f"{r.energy_decrease_vs_dsp:.2f}X",
            f"{r.paper_decrease_vs_dsp:.2f}X" if r.paper_decrease_vs_dsp else "-",
        )
    return table.render()
