"""Experiment E2: regenerate the Figure 4 waveform (Walsh/m-sequence signals).

Figure 4 plots the 56-chip composite waveform formed from 8 Walsh symbols
each spread by the 7-chip m-sequence.  The reproduction builds the full
symbol alphabet, verifies its structural properties (chip count, orthogonality,
constant envelope) and returns the sampled waveforms that the rest of the
pipeline (the S matrix, the modulator) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.sampling import upsample_chips
from repro.dsp.spreading import composite_waveform_set
from repro.dsp.walsh import is_orthogonal_set
from repro.modem.config import AquaModemConfig

__all__ = ["Figure4Waveforms", "reproduce_figure4"]


@dataclass(frozen=True)
class Figure4Waveforms:
    """The regenerated Figure 4 content."""

    chip_waveforms: np.ndarray
    sampled_waveforms: np.ndarray
    chips_per_waveform: int
    samples_per_waveform: int
    orthogonal: bool
    constant_envelope: bool

    @property
    def num_waveforms(self) -> int:
        """Number of composite waveforms (the symbol alphabet size)."""
        return int(self.chip_waveforms.shape[0])


def reproduce_figure4(config: AquaModemConfig | None = None) -> Figure4Waveforms:
    """Build the composite waveform set and check its structural properties."""
    config = config if config is not None else AquaModemConfig()
    chips = composite_waveform_set(config.walsh_symbols, config.spreading_chips)
    sampled = np.vstack(
        [upsample_chips(row, config.samples_per_chip) for row in chips]
    )
    constant_envelope = bool(np.all(np.abs(chips) == 1.0))
    return Figure4Waveforms(
        chip_waveforms=chips,
        sampled_waveforms=sampled,
        chips_per_waveform=int(chips.shape[1]),
        samples_per_waveform=int(sampled.shape[1]),
        orthogonal=is_orthogonal_set(chips),
        constant_envelope=constant_envelope,
    )
