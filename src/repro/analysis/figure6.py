"""Experiment E4: regenerate Figure 6 (power and energy of the DSE).

Figure 6 plots, for every Table 2 design point, the total power (W) and the
energy per channel estimation (uJ).  The paper prints only a handful of the
underlying numbers (the quiescent powers and the four design points repeated
in Table 3), so the reproduction pairs each point with a published value when
one exists and otherwise reports the modelled value alone.  The qualitative
shape is asserted by the benchmark: power increases with parallelism and with
bit width, energy *decreases* with parallelism, the Virtex-4 always draws
more power than the Spartan-3, and the serial designs sit near the quiescent
floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import paper_data
from repro.core.dse import DesignSpaceExplorer, PAPER_BIT_WIDTHS, PAPER_PARALLELISM_LEVELS
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.utils.tables import AsciiTable

__all__ = ["Figure6Point", "reproduce_figure6", "render_figure6"]

#: Published (power W, energy uJ) anchors from Table 3, keyed like Table 2 rows.
_PUBLISHED_ANCHORS: dict[tuple[int, int, str], tuple[float, float]] = {
    (16, 1, "Virtex-4"): (0.74, 360.52),
    (16, 1, "Spartan-3"): (0.35, 260.92),
    (8, 112, "Virtex-4"): (2.40, 9.50),
    (8, 14, "Spartan-3"): (0.53, 25.82),
}


@dataclass(frozen=True)
class Figure6Point:
    """One point of the Figure 6 power/energy scatter."""

    word_length: int
    num_fc_blocks: int
    device_family: str
    feasible: bool
    power_w: float
    energy_uj: float
    quiescent_power_w: float
    paper_power_w: float | None
    paper_energy_uj: float | None


def reproduce_figure6(num_paths: int = 6) -> list[Figure6Point]:
    """Regenerate the power/energy value of every Figure 6 design point."""
    explorer = DesignSpaceExplorer(
        devices=(VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000),
        parallelism_levels=PAPER_PARALLELISM_LEVELS,
        bit_widths=PAPER_BIT_WIDTHS,
        num_paths=num_paths,
        include_infeasible=True,
    )
    points: list[Figure6Point] = []
    for evaluation in explorer.explore():
        key = (
            evaluation.point.word_length,
            evaluation.point.num_fc_blocks,
            evaluation.point.device.family,
        )
        anchor = _PUBLISHED_ANCHORS.get(key)
        points.append(
            Figure6Point(
                word_length=evaluation.point.word_length,
                num_fc_blocks=evaluation.point.num_fc_blocks,
                device_family=evaluation.point.device.family,
                feasible=evaluation.feasible,
                power_w=evaluation.power_w,
                energy_uj=evaluation.energy_uj,
                quiescent_power_w=paper_data.FIGURE6_QUIESCENT_POWER_W[
                    evaluation.point.device.family
                ],
                paper_power_w=anchor[0] if anchor else None,
                paper_energy_uj=anchor[1] if anchor else None,
            )
        )
    return points


def render_figure6(points: list[Figure6Point] | None = None) -> str:
    """ASCII rendering of the Figure 6 data (power and energy per design point)."""
    if points is None:
        points = reproduce_figure6()
    table = AsciiTable(
        headers=[
            "Bits", "#FC", "Device", "Feasible",
            "Power (W)", "Power paper", "Energy (uJ)", "Energy paper",
        ],
        title="Figure 6 — power and energy consumption of the design space exploration",
    )
    for p in points:
        table.add_row(
            p.word_length, p.num_fc_blocks, p.device_family, p.feasible,
            p.power_w, p.paper_power_w if p.paper_power_w is not None else "-",
            p.energy_uj, p.paper_energy_uj if p.paper_energy_uj is not None else "-",
        )
    return table.render()
