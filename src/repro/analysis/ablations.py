"""Ablation and extension studies (experiments E6-E9).

* **E6 — bit-width accuracy**: channel-estimation error of the fixed-point MP
  versus the floating-point reference, over word lengths; checks the paper's
  claim (Section IV.C) that 8-10 bits with dynamic-range scaling suffice.
* **E8 — parallelism sweep**: the energy/power/area trade-off over *all*
  divisor parallelism levels, not just the paper's three, with Pareto points.
* **E7 — DS-SS vs FSK**: symbol error rates of the two signalling schemes in
  the same multipath channels (the motivation for the DS-SS AquaModem design).
* **E9 — network lifetime**: deployment lifetime of a sensor network whose
  nodes carry each candidate processing platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.dse import DesignSpaceExplorer, DesignPointEvaluation, divisors
from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.core.matching_pursuit import matching_pursuit
from repro.core.metrics import normalized_channel_error, support_recovery_rate
from repro.dsp.signal_matrix import SignalMatrices, build_signal_matrices
from repro.dsp.spreading import composite_waveform_set
from repro.dsp.sampling import upsample_chips
from repro.hardware.devices import FPGADevice, SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.modem.config import AquaModemConfig
from repro.modem.energy_budget import ModemEnergyBudget
from repro.modem.link import LinkResult, symbol_error_rate_curve
from repro.network.lifetime import lifetime_by_platform
from repro.network.routing import shortest_path_routing
from repro.network.topology import connectivity_graph, grid_deployment
from repro.network.traffic import PeriodicTraffic
from repro.utils.rng import as_rng
from repro.utils.validation import check_integer

__all__ = [
    "BitwidthAccuracyResult",
    "bitwidth_accuracy_ablation",
    "parallelism_ablation",
    "dsss_vs_fsk_ablation",
    "network_lifetime_study",
    "aquamodem_signal_matrices",
]


def aquamodem_signal_matrices(config: AquaModemConfig | None = None) -> SignalMatrices:
    """The S/A/a matrices for the AquaModem pilot waveform (224 x 112 geometry)."""
    config = config if config is not None else AquaModemConfig()
    chips = composite_waveform_set(config.walsh_symbols, config.spreading_chips)[0]
    waveform = upsample_chips(chips, config.samples_per_chip).astype(np.float64)
    return build_signal_matrices(waveform)


# --------------------------------------------------------------------------- #
# E6 — bit-width accuracy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BitwidthAccuracyResult:
    """Estimation quality of the fixed-point datapath at one word length."""

    word_length: int
    mean_normalized_error: float
    mean_support_recovery: float
    mean_error_vs_float: float


def bitwidth_accuracy_ablation(
    word_lengths: tuple[int, ...] = (4, 6, 8, 10, 12, 16),
    num_trials: int = 20,
    num_channel_paths: int = 4,
    snr_db: float = 20.0,
    rng: np.random.Generator | int | None = 0,
    config: AquaModemConfig | None = None,
) -> list[BitwidthAccuracyResult]:
    """Channel-estimation accuracy of the fixed-point MP over word lengths.

    For each trial a random sparse channel is drawn, the pilot waveform is
    passed through it at the given SNR, and both the floating-point reference
    and the fixed-point MP estimate the channel.  Reported per word length:
    the normalised error against the true channel, the support recovery rate,
    and the deviation of the fixed-point estimate from the float estimate.
    """
    check_integer("num_trials", num_trials, minimum=1)
    config = config if config is not None else AquaModemConfig()
    rng = as_rng(rng)
    matrices = aquamodem_signal_matrices(config)
    estimators = {
        bits: FixedPointMatchingPursuit(matrices, word_length=bits, num_paths=config.num_paths)
        for bits in word_lengths
    }

    errors: dict[int, list[float]] = {bits: [] for bits in word_lengths}
    supports: dict[int, list[float]] = {bits: [] for bits in word_lengths}
    vs_float: dict[int, list[float]] = {bits: [] for bits in word_lengths}

    for _ in range(num_trials):
        channel = random_sparse_channel(
            num_paths=num_channel_paths,
            max_delay=config.multipath_spread_samples,
            rng=rng,
            min_separation=4,
        )
        true_f = channel.coefficient_vector(matrices.num_delays)
        clean = matrices.synthesize(true_f)
        received = add_noise_for_snr(clean, snr_db, rng=rng)
        reference = matching_pursuit(received, matrices, num_paths=config.num_paths)
        for bits in word_lengths:
            estimate = estimators[bits].estimate(received)
            errors[bits].append(normalized_channel_error(true_f, estimate.coefficients))
            supports[bits].append(
                support_recovery_rate(channel.delays, estimate.path_indices, tolerance=1)
            )
            vs_float[bits].append(
                normalized_channel_error(reference.coefficients, estimate.coefficients)
                if np.linalg.norm(reference.coefficients) > 0
                else 0.0
            )

    return [
        BitwidthAccuracyResult(
            word_length=bits,
            mean_normalized_error=float(np.mean(errors[bits])),
            mean_support_recovery=float(np.mean(supports[bits])),
            mean_error_vs_float=float(np.mean(vs_float[bits])),
        )
        for bits in word_lengths
    ]


# --------------------------------------------------------------------------- #
# E8 — full parallelism sweep
# --------------------------------------------------------------------------- #
def parallelism_ablation(
    device: FPGADevice | None = None,
    word_length: int = 8,
    num_delays: int = 112,
    num_paths: int = 6,
) -> list[DesignPointEvaluation]:
    """Evaluate every divisor parallelism level on one device at one bit width."""
    device = device if device is not None else VIRTEX4_XC4VSX55
    explorer = DesignSpaceExplorer(
        devices=(device,),
        parallelism_levels=tuple(divisors(num_delays)),
        bit_widths=(word_length,),
        num_paths=num_paths,
        num_delays=num_delays,
        include_infeasible=True,
    )
    return explorer.explore()


# --------------------------------------------------------------------------- #
# E7 — DS-SS vs FSK
# --------------------------------------------------------------------------- #
def dsss_vs_fsk_ablation(
    snr_points_db: tuple[float, ...] = (-6.0, -3.0, 0.0, 3.0, 6.0),
    num_symbols: int = 120,
    rng: np.random.Generator | int | None = 0,
    config: AquaModemConfig | None = None,
) -> dict[str, list[LinkResult]]:
    """Symbol-error-rate curves of the DS-SS and FSK schemes over the same SNR sweep."""
    config = config if config is not None else AquaModemConfig()
    rng = as_rng(rng)
    seed_dsss = int(rng.integers(0, 2**31 - 1))
    seed_fsk = int(rng.integers(0, 2**31 - 1))
    return {
        "DSSS": symbol_error_rate_curve(
            "DSSS", list(snr_points_db), num_symbols=num_symbols, config=config, rng=seed_dsss
        ),
        "FSK": symbol_error_rate_curve(
            "FSK", list(snr_points_db), num_symbols=num_symbols, config=config, rng=seed_fsk
        ),
    }


# --------------------------------------------------------------------------- #
# E9 — network lifetime by platform
# --------------------------------------------------------------------------- #
def network_lifetime_study(
    grid_size: tuple[int, int] = (5, 5),
    spacing_m: float = 200.0,
    communication_range_m: float = 300.0,
    battery_capacity_j: float = 50_000.0,
    report_interval_s: float = 120.0,
    packet_symbols: int = 32,
    platform_energies_uj: dict[str, float] | None = None,
    continuous_detection: bool = True,
    config: AquaModemConfig | None = None,
) -> dict[str, float]:
    """Deployment lifetime (days) for each candidate processing platform.

    ``platform_energies_uj`` defaults to the Table 3 energies (MicroBlaze,
    DSP, serial and parallel FPGA points).

    With ``continuous_detection`` (the realistic receive mode for an
    always-listening node) the processing platform runs one channel
    estimation per receive-vector period (22.4 ms) even while idle, so the
    per-estimation energy of the platform translates directly into listening
    power: ~90 mW for the MicroBlaze versus ~0.4 mW for the fully parallel
    Virtex-4 core.  This is where the paper's energy argument shows up at the
    deployment level.  Disabling it reverts to the duty-cycled mode where
    estimations happen only while a packet is being received.
    """
    if platform_energies_uj is None:
        platform_energies_uj = {
            "MicroBlaze": 2000.40,
            "TI C6713 DSP": 500.76,
            "Virtex-4 1FC 16bit": 360.52,
            "Spartan-3 14FC 8bit": 25.82,
            "Virtex-4 112FC 8bit": 9.50,
        }
    config = config if config is not None else AquaModemConfig()
    deployment = grid_deployment(*grid_size, spacing_m=spacing_m)
    graph = connectivity_graph(deployment, communication_range_m)
    routing = shortest_path_routing(graph, deployment.sink_id)
    traffic = PeriodicTraffic(report_interval_s=report_interval_s, packet_symbols=packet_symbols)
    base_budget = ModemEnergyBudget(config=config)
    platform_idle_power_w: dict[str, float] | None = None
    if continuous_detection:
        platform_idle_power_w = {
            label: base_budget.processing_idle_power_w
            + (energy_uj * 1e-6) / config.total_symbol_period_s
            for label, energy_uj in platform_energies_uj.items()
        }
    lifetimes_s = lifetime_by_platform(
        routing=routing,
        traffic=traffic,
        battery_capacity_j=battery_capacity_j,
        platform_processing_energy_j={
            label: energy_uj * 1e-6 for label, energy_uj in platform_energies_uj.items()
        },
        platform_idle_power_w=platform_idle_power_w,
        base_budget=base_budget,
    )
    return {label: seconds / 86_400.0 for label, seconds in lifetimes_s.items()}
