"""Ablation and extension studies (experiments E6-E9).

* **E6 — bit-width accuracy**: channel-estimation error of the fixed-point MP
  versus the floating-point reference, over word lengths; checks the paper's
  claim (Section IV.C) that 8-10 bits with dynamic-range scaling suffice.
* **E8 — parallelism sweep**: the energy/power/area trade-off over *all*
  divisor parallelism levels, not just the paper's three, with Pareto points.
* **E7 — DS-SS vs FSK**: symbol error rates of the two signalling schemes in
  the same multipath channels (the motivation for the DS-SS AquaModem design).
* **E9 — network lifetime**: deployment lifetime of a sensor network whose
  nodes carry each candidate processing platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dse import DesignSpaceExplorer, DesignPointEvaluation, divisors
from repro.dsp.signal_matrix import SignalMatrices, composite_signal_matrices
from repro.experiments.cache import ResultCache
from repro.experiments.registry import (
    TABLE3_PLATFORM_ENERGIES_UJ,
    config_params,
    get_scenario,
)
from repro.experiments.runner import run_sweep
from repro.hardware.devices import FPGADevice, VIRTEX4_XC4VSX55
from repro.modem.config import AquaModemConfig
from repro.modem.link import LinkResult, symbol_error_rate_curve
from repro.utils.rng import as_rng
from repro.utils.validation import check_integer

__all__ = [
    "BitwidthAccuracyResult",
    "IPCoreParallelismResult",
    "SimulatedLifetimeSummary",
    "bitwidth_accuracy_ablation",
    "ipcore_parallelism_study",
    "parallelism_ablation",
    "dsss_vs_fsk_ablation",
    "network_lifetime_study",
    "simulated_network_lifetime_study",
    "summarize_lifetimes",
    "aquamodem_signal_matrices",
]


def aquamodem_signal_matrices(config: AquaModemConfig | None = None) -> SignalMatrices:
    """The S/A/a matrices for the AquaModem pilot waveform (224 x 112 geometry)."""
    config = config if config is not None else AquaModemConfig()
    return composite_signal_matrices(
        config.walsh_symbols, config.spreading_chips, config.samples_per_chip
    )


# --------------------------------------------------------------------------- #
# E6 — bit-width accuracy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BitwidthAccuracyResult:
    """Estimation quality of the fixed-point datapath at one word length."""

    word_length: int
    mean_normalized_error: float
    mean_support_recovery: float
    mean_error_vs_float: float


def _as_base_seed(rng: np.random.Generator | int | None) -> int:
    """Collapse the legacy ``rng`` argument into a deterministic base seed."""
    if rng is None:
        return int(as_rng(None).integers(0, 2**63 - 1))
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63 - 1))
    return int(rng)


def bitwidth_accuracy_ablation(
    word_lengths: tuple[int, ...] = (4, 6, 8, 10, 12, 16),
    num_trials: int = 20,
    num_channel_paths: int = 4,
    snr_db: float = 20.0,
    rng: np.random.Generator | int | None = 0,
    config: AquaModemConfig | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    batch: bool = True,
) -> list[BitwidthAccuracyResult]:
    """Channel-estimation accuracy of the fixed-point MP over word lengths.

    For each trial a random sparse channel is drawn, the pilot waveform is
    passed through it at the given SNR, and both the floating-point reference
    and the fixed-point MP estimate the channel.  Reported per word length:
    the normalised error against the true channel, the support recovery rate,
    and the deviation of the fixed-point estimate from the float estimate.

    ``batch=True`` (the default) runs the whole ablation — every trial of
    every word length — on the batched fixed-point engine
    (:class:`~repro.core.batch.BatchFixedPointMPEngine`); it draws the
    identical RNG streams and produces identical records, just without the
    per-trial interpreter overhead.  ``batch=False`` runs the same spec
    trial by trial through the scalar datapath on the sweep engine, where
    ``jobs``/``cache`` enable parallel and resumable runs (both are ignored
    by the in-process batched engine).
    """
    check_integer("num_trials", num_trials, minimum=1)
    config = config if config is not None else AquaModemConfig()
    spec = (
        get_scenario("fixedpoint-bitwidth").spec
        .with_axis("word_length", tuple(int(bits) for bits in word_lengths))
        .with_base(
            snr_db=float(snr_db),
            num_channel_paths=int(num_channel_paths),
            **config_params(config),
        )
        .with_seed(base_seed=_as_base_seed(rng), replicates=num_trials)
    )
    if batch:
        if jobs != 1 or cache is not None:
            import warnings

            warnings.warn(
                "bitwidth_accuracy_ablation(batch=True) runs in-process on the "
                "batched engine; `jobs` and `cache` are ignored — pass "
                "batch=False for a parallel or resumable sweep",
                stacklevel=2,
            )
        from repro.core.batch import BatchFixedPointMPEngine

        result = BatchFixedPointMPEngine().run_spec(spec)
    else:
        result = run_sweep(spec, jobs=jobs, cache=cache)
    errors = result.group_mean(by="word_length", metric="normalized_error")
    supports = result.group_mean(by="word_length", metric="support_recovery")
    vs_float = result.group_mean(by="word_length", metric="error_vs_float")
    return [
        BitwidthAccuracyResult(
            word_length=bits,
            mean_normalized_error=errors[bits],
            mean_support_recovery=supports[bits],
            mean_error_vs_float=vs_float[bits],
        )
        for bits in word_lengths
    ]


# --------------------------------------------------------------------------- #
# IP-core parallelism study (Figure 5 / Table 2 timing axis)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class IPCoreParallelismResult:
    """Cycle cost and estimation quality of the IP core at one parallelism level."""

    num_fc_blocks: int
    word_length: int
    total_cycles: int
    matched_filter_cycles: int
    iteration_cycles: int
    execution_time_us: float
    mean_normalized_error: float
    mean_support_recovery: float
    mean_error_vs_float: float


def ipcore_parallelism_study(
    parallelism_levels: tuple[int, ...] = (1, 2, 4, 8, 14, 28, 56, 112),
    word_length: int = 8,
    num_trials: int = 8,
    num_channel_paths: int = 4,
    snr_db: float = 25.0,
    rng: np.random.Generator | int | None = 0,
    config: AquaModemConfig | None = None,
    batch: bool = True,
    device: FPGADevice | None = None,
) -> list[IPCoreParallelismResult]:
    """Cycle cost vs estimation quality of the IP core over parallelism levels.

    Every level estimates the same Monte-Carlo channels (the problems come
    from the registry's memoised builders, seeded exactly like the
    ``ipcore-parallelism`` scenario sweep), so the table demonstrates the
    conformance contract live: the accuracy columns are *identical* at every
    P — the study asserts cross-P bit-identity on the raw integer codes on
    every run — while the cycle and execution-time columns fall as Ns/P.

    ``batch=True`` (the default) stacks each level's trials through
    :meth:`~repro.core.ipcore.batch.BatchIPCoreEngine.estimate_batch`;
    ``batch=False`` walks the scalar FC-block simulator trial by trial (the
    executable specification — identical results, just slower).
    ``execution_time_us`` prices the closed-form schedule on ``device``
    (default: the Virtex-4) at this word length.
    """
    check_integer("num_trials", num_trials, minimum=1)
    check_integer("word_length", word_length, minimum=2, maximum=32)
    from repro.experiments.registry import (
        fixedpoint_trial_metrics,
        trial_channel_problem,
        trial_float_reference,
        trial_ipcore_engine,
    )
    from repro.hardware.timing import timing_from_schedule

    config = config if config is not None else AquaModemConfig()
    device = device if device is not None else VIRTEX4_XC4VSX55
    spec = (
        get_scenario("ipcore-parallelism").spec
        .with_axis("num_fc_blocks", tuple(int(p) for p in parallelism_levels))
        .with_axis("word_length", (int(word_length),))
        .with_base(
            snr_db=float(snr_db),
            num_channel_paths=int(num_channel_paths),
            batch=bool(batch),
            **config_params(config),
        )
        .with_seed(base_seed=_as_base_seed(rng), replicates=num_trials)
    )
    groups: dict[int, list] = {}
    for point in spec.expand():
        groups.setdefault(int(point.params["num_fc_blocks"]), []).append(point)

    results: list[IPCoreParallelismResult] = []
    baseline_estimates = None
    for level in parallelism_levels:
        points = groups[int(level)]
        engine = trial_ipcore_engine(points[0].params, int(level), int(word_length))
        problems = [trial_channel_problem(p.params, p.seed) for p in points]
        references = [trial_float_reference(p.params, p.seed) for p in points]
        if batch:
            received = np.stack([problem[2] for problem in problems])
            run = engine.estimate_batch(received)
            estimates = [run.result[t] for t in range(len(points))]
            schedule = run.schedule
        else:
            runs = [engine.core.estimate(problem[2]) for problem in problems]
            estimates = [r.result for r in runs]
            schedule = runs[0].schedule
        # the live conformance assertion: raw integer codes identical across P
        if baseline_estimates is None:
            baseline_estimates = estimates
        elif estimates != baseline_estimates:
            raise AssertionError(
                f"IP-core estimates at P={level} diverged from "
                f"P={parallelism_levels[0]} — the partition moved a quantisation point"
            )
        metrics = [
            fixedpoint_trial_metrics(problem[0], problem[1], reference, estimate)
            for problem, reference, estimate in zip(problems, references, estimates)
        ]
        timing = timing_from_schedule(device, schedule, int(word_length))
        results.append(IPCoreParallelismResult(
            num_fc_blocks=int(level),
            word_length=int(word_length),
            total_cycles=schedule.total_cycles,
            matched_filter_cycles=schedule.matched_filter_cycles,
            iteration_cycles=schedule.iteration_cycles,
            execution_time_us=timing.execution_time_us,
            mean_normalized_error=float(np.mean([m["normalized_error"] for m in metrics])),
            mean_support_recovery=float(np.mean([m["support_recovery"] for m in metrics])),
            mean_error_vs_float=float(np.mean([m["error_vs_float"] for m in metrics])),
        ))
    return results


# --------------------------------------------------------------------------- #
# E8 — full parallelism sweep
# --------------------------------------------------------------------------- #
def parallelism_ablation(
    device: FPGADevice | None = None,
    word_length: int = 8,
    num_delays: int = 112,
    num_paths: int = 6,
) -> list[DesignPointEvaluation]:
    """Evaluate every divisor parallelism level on one device at one bit width."""
    device = device if device is not None else VIRTEX4_XC4VSX55
    explorer = DesignSpaceExplorer(
        devices=(device,),
        parallelism_levels=tuple(divisors(num_delays)),
        bit_widths=(word_length,),
        num_paths=num_paths,
        num_delays=num_delays,
        include_infeasible=True,
    )
    return explorer.explore()


# --------------------------------------------------------------------------- #
# E7 — DS-SS vs FSK
# --------------------------------------------------------------------------- #
def dsss_vs_fsk_ablation(
    snr_points_db: tuple[float, ...] = (-6.0, -3.0, 0.0, 3.0, 6.0),
    num_symbols: int = 120,
    rng: np.random.Generator | int | None = 0,
    config: AquaModemConfig | None = None,
    batch: bool = True,
    num_frames: int = 10,
) -> dict[str, list[LinkResult]]:
    """Symbol-error-rate curves of the DS-SS and FSK schemes over the same SNR sweep.

    Runs on the batched link engine by default; ``batch=False`` selects the
    per-frame reference loop (identical counts for a given seed).
    """
    config = config if config is not None else AquaModemConfig()
    rng = as_rng(rng)
    seed_dsss = int(rng.integers(0, 2**31 - 1))
    seed_fsk = int(rng.integers(0, 2**31 - 1))
    return {
        "DSSS": symbol_error_rate_curve(
            "DSSS", list(snr_points_db), num_symbols=num_symbols, config=config,
            rng=seed_dsss, batch=batch, num_frames=num_frames,
        ),
        "FSK": symbol_error_rate_curve(
            "FSK", list(snr_points_db), num_symbols=num_symbols, config=config,
            rng=seed_fsk, batch=batch, num_frames=num_frames,
        ),
    }


# --------------------------------------------------------------------------- #
# E9 — network lifetime by platform
# --------------------------------------------------------------------------- #
def network_lifetime_study(
    grid_size: tuple[int, int] = (5, 5),
    spacing_m: float = 200.0,
    communication_range_m: float = 300.0,
    battery_capacity_j: float = 50_000.0,
    report_interval_s: float = 120.0,
    packet_symbols: int = 32,
    platform_energies_uj: dict[str, float] | None = None,
    continuous_detection: bool = True,
    config: AquaModemConfig | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    batch: bool = True,
    topology: str = "grid",
    topology_seed: int = 1,
) -> dict[str, float]:
    """Deployment lifetime (days) for each candidate processing platform.

    ``platform_energies_uj`` defaults to the Table 3 energies (MicroBlaze,
    DSP, serial and parallel FPGA points).  Runs on the ``network-lifetime``
    scenario of the experiment engine — platform label and energy travel as
    zipped axes, the full ``config`` travels as flat base parameters — so
    ``jobs``/``cache`` enable parallel and resumable runs.

    With ``continuous_detection`` (the realistic receive mode for an
    always-listening node) the processing platform runs one channel
    estimation per receive-vector period (22.4 ms) even while idle, so the
    per-estimation energy of the platform translates directly into listening
    power: ~90 mW for the MicroBlaze versus ~0.4 mW for the fully parallel
    Virtex-4 core.  This is where the paper's energy argument shows up at the
    deployment level.  Disabling it reverts to the duty-cycled mode where
    estimations happen only while a packet is being received.

    ``batch`` selects the vectorised lifetime estimator (identical floats to
    the scalar loop); ``topology`` chooses ``grid`` or ``random`` deployment
    geometry (the scatter drawn deterministically from ``topology_seed``).
    """
    if platform_energies_uj is None:
        platform_energies_uj = dict(TABLE3_PLATFORM_ENERGIES_UJ)
    config = config if config is not None else AquaModemConfig()
    spec = (
        get_scenario("network-lifetime").spec
        .with_axis("report_interval_s", (float(report_interval_s),))
        .with_axis("topology", (str(topology),))
        .with_zipped({
            "platform": tuple(platform_energies_uj),
            "energy_uj": tuple(float(e) for e in platform_energies_uj.values()),
        })
        .with_base(
            batch=bool(batch),
            topology_seed=int(topology_seed),
            grid_rows=int(grid_size[0]),
            grid_cols=int(grid_size[1]),
            spacing_m=float(spacing_m),
            communication_range_m=float(communication_range_m),
            battery_capacity_j=float(battery_capacity_j),
            packet_symbols=int(packet_symbols),
            continuous_detection=bool(continuous_detection),
            **config_params(config),
        )
    )
    result = run_sweep(spec, jobs=jobs, cache=cache)
    return {record["platform"]: record["lifetime_days"] for record in result.records}


# --------------------------------------------------------------------------- #
# E9 (simulated) — Monte-Carlo lifetime on the batched network engine
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SimulatedLifetimeSummary:
    """Aggregate of several simulated lifetime trials for one platform.

    ``mean_lifetime_days`` is ``None`` when *no* trial observed a node death
    within the horizon — a censored measurement ("outlived the horizon"),
    which must not be conflated with a zero lifetime.
    """

    platform: str
    trials: int
    died_trials: int
    mean_lifetime_days: float | None
    mean_delivery_ratio: float

    @property
    def censored_trials(self) -> int:
        """Trials whose deployment outlived the simulation horizon."""
        return self.trials - self.died_trials


def summarize_lifetimes(platform: str, results) -> SimulatedLifetimeSummary:
    """Aggregate simulation results, handling ``lifetime_days is None`` explicitly.

    Trials without a death are censored observations: they are excluded from
    the mean (never coerced to 0, which would read as an instant death) and
    counted separately.  With no deaths at all the mean itself is ``None``.
    Trials that generated zero packets report a NaN delivery ratio
    (undefined, not total loss) and are likewise excluded from the ratio
    mean; with no defined ratio at all the mean is NaN.
    """
    results = list(results)
    lifetimes = [r.lifetime_days for r in results if r.lifetime_days is not None]
    mean_lifetime = sum(lifetimes) / len(lifetimes) if lifetimes else None
    ratios = [r.delivery_ratio for r in results if not np.isnan(r.delivery_ratio)]
    return SimulatedLifetimeSummary(
        platform=platform,
        trials=len(results),
        died_trials=len(lifetimes),
        mean_lifetime_days=mean_lifetime,
        mean_delivery_ratio=sum(ratios) / len(ratios) if ratios else float("nan"),
    )


def simulated_network_lifetime_study(
    grid_size: tuple[int, int] = (5, 5),
    spacing_m: float = 200.0,
    communication_range_m: float = 300.0,
    battery_capacity_j: float = 8_000.0,
    report_interval_s: float = 60.0,
    packet_symbols: int = 32,
    platform_energies_uj: dict[str, float] | None = None,
    continuous_detection: bool = True,
    trials: int = 3,
    base_seed: int = 0,
    jitter_fraction: float = 0.1,
    max_days: float = 30.0,
    batch: bool = True,
    topology: str = "grid",
    topology_seed: int = 1,
    mac=None,
    protocol=None,
    mobility=None,
) -> dict[str, SimulatedLifetimeSummary]:
    """Monte-Carlo deployment lifetime per platform on the network simulator.

    Unlike :func:`network_lifetime_study` (the closed-form estimate), this
    runs the packet-level :class:`~repro.network.simulator.NetworkSimulator`
    — on the vectorised batch engine by default, with ``trials`` jittered
    traffic seeds batched per platform — and reports per-platform lifetime
    and delivery-ratio summaries.  Trials whose network outlives ``max_days``
    are reported as censored (see :func:`summarize_lifetimes`).  ``topology``
    selects the same ``grid``/``random`` geometries as the analytical study;
    ``mac``/``protocol``/``mobility`` pass a MAC model (e.g.
    :class:`~repro.network.mac.CsmaMac`), a protocol model
    (:class:`~repro.network.routing.TtlFlooding`) and a
    :class:`~repro.network.topology.LinearMobility` drift straight through to
    the simulator.
    """
    from repro.modem.energy_budget import ModemEnergyBudget
    from repro.network.batch import simulate_network_trials
    from repro.network.topology import grid_deployment, random_deployment
    from repro.network.traffic import PeriodicTraffic

    check_integer("trials", trials, minimum=1)
    if platform_energies_uj is None:
        platform_energies_uj = dict(TABLE3_PLATFORM_ENERGIES_UJ)
    rows, cols = grid_size
    if topology == "grid":
        deployment = grid_deployment(rows, cols, spacing_m=spacing_m)
    elif topology == "random":
        area = (max(1, cols - 1) * spacing_m, max(1, rows - 1) * spacing_m)
        deployment = random_deployment(rows * cols, area_m=area, rng=topology_seed)
    else:
        raise ValueError(f"unknown topology {topology!r}; expected 'grid' or 'random'")
    traffic = PeriodicTraffic(
        report_interval_s=report_interval_s,
        packet_symbols=packet_symbols,
        jitter_fraction=jitter_fraction,
    )
    seeds = [base_seed + index for index in range(trials)]
    base_budget = ModemEnergyBudget()
    summaries: dict[str, SimulatedLifetimeSummary] = {}
    for platform, energy_uj in platform_energies_uj.items():
        idle_power_w = base_budget.processing_idle_power_w
        if continuous_detection:
            # one channel estimation per receive window while listening
            config = AquaModemConfig()
            idle_power_w = idle_power_w + (energy_uj * 1e-6) / config.total_symbol_period_s
        budget = ModemEnergyBudget(
            processing_energy_per_estimation_j=energy_uj * 1e-6,
            processing_idle_power_w=idle_power_w,
        )
        results = simulate_network_trials(
            deployment,
            budget,
            traffic=traffic,
            communication_range_m=communication_range_m,
            battery_capacity_j=battery_capacity_j,
            mac=mac,
            protocol=protocol,
            mobility=mobility,
            seeds=seeds,
            max_time_s=max_days * 86_400.0,
            batch=batch,
        )
        summaries[platform] = summarize_lifetimes(platform, results)
    return summaries
