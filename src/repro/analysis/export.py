"""Export the regenerated experiment data to CSV / JSON.

The benchmark harness prints ASCII tables; for plotting (the paper's Figure 6
scatter, SER curves, lifetime bars) it is more convenient to have the raw
series on disk.  :func:`export_all` writes one CSV file per experiment plus a
``summary.json`` with the headline numbers, using only the standard library so
no plotting dependency is required.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.figure6 import reproduce_figure6
from repro.analysis.table1 import reproduce_table1
from repro.analysis.table2 import reproduce_table2
from repro.analysis.table3 import reproduce_table3
from repro.utils.atomic import atomic_writer

__all__ = ["write_csv", "export_all"]


def write_csv(path: Path | str, headers: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Atomically write one CSV file (creating parent directories).

    Goes through :func:`repro.utils.atomic.atomic_writer` so an interrupted
    export never leaves a truncated CSV behind (``ResultStore`` writes sweep
    results through this too).
    """

    def _write(handle) -> None:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)

    return atomic_writer(path, _write, newline="")


def export_all(output_dir: Path | str, num_paths: int = 6) -> dict[str, Path]:
    """Regenerate Tables 1-3 and Figure 6 and write them as CSV + a JSON summary.

    Returns a mapping from artefact name to the file written.
    """
    output_dir = Path(output_dir)
    written: dict[str, Path] = {}

    table1 = reproduce_table1()
    written["table1"] = write_csv(
        output_dir / "table1_parameters.csv",
        ["quantity", "unit", "paper_value", "reproduced_value", "matches"],
        [(r.quantity, r.unit, r.paper_value, r.reproduced_value, r.matches) for r in table1],
    )

    table2 = reproduce_table2(num_paths=num_paths)
    written["table2"] = write_csv(
        output_dir / "table2_area_timing.csv",
        ["word_length", "fc_blocks", "device", "feasible", "slices", "paper_slices",
         "time_us", "paper_time_us", "throughput_per_us", "paper_throughput_per_us"],
        [
            (r.word_length, r.num_fc_blocks, r.device_family, r.feasible, r.slices,
             r.paper_slices, r.time_us, r.paper_time_us, r.throughput_per_us,
             r.paper_throughput_per_us)
            for r in table2
        ],
    )

    figure6 = reproduce_figure6(num_paths=num_paths)
    written["figure6"] = write_csv(
        output_dir / "figure6_power_energy.csv",
        ["word_length", "fc_blocks", "device", "feasible", "power_w", "paper_power_w",
         "energy_uj", "paper_energy_uj", "quiescent_power_w"],
        [
            (p.word_length, p.num_fc_blocks, p.device_family, p.feasible, p.power_w,
             p.paper_power_w, p.energy_uj, p.paper_energy_uj, p.quiescent_power_w)
            for p in figure6
        ],
    )

    table3 = reproduce_table3(num_paths=num_paths)
    written["table3"] = write_csv(
        output_dir / "table3_platform_comparison.csv",
        ["platform", "time_us", "paper_time_us", "power_w", "paper_power_w",
         "energy_uj", "paper_energy_uj", "decrease_vs_microcontroller",
         "paper_decrease_vs_microcontroller", "decrease_vs_dsp", "paper_decrease_vs_dsp"],
        [
            (r.label, r.time_us, r.paper_time_us, r.power_w, r.paper_power_w,
             r.energy_uj, r.paper_energy_uj, r.energy_decrease_vs_microcontroller,
             r.paper_decrease_vs_microcontroller, r.energy_decrease_vs_dsp,
             r.paper_decrease_vs_dsp)
            for r in table3
        ],
    )

    headline = next(r for r in table3 if "112FC" in r.label)
    summary = {
        "table1_matches": all(r.matches for r in table1),
        "table2_rows": len(table2),
        "table2_infeasible_points": sum(1 for r in table2 if not r.feasible),
        "headline_energy_decrease_vs_microcontroller": headline.energy_decrease_vs_microcontroller,
        "headline_energy_decrease_vs_dsp": headline.energy_decrease_vs_dsp,
        "paper_headline_vs_microcontroller": headline.paper_decrease_vs_microcontroller,
        "paper_headline_vs_dsp": headline.paper_decrease_vs_dsp,
    }
    written["summary"] = atomic_writer(
        output_dir / "summary.json",
        lambda handle: json.dump(summary, handle, indent=2),
    )
    return written
