"""Experiment harness: one module per paper artefact plus the published values.

* :mod:`repro.analysis.paper_data` — every number the paper reports (Tables
  1-3, the Figure 6 anchor points), used by the benchmarks to print
  paper-vs-measured comparisons.
* :mod:`repro.analysis.table1` — regenerate the AquaModem design parameters.
* :mod:`repro.analysis.figure4` — regenerate the composite Walsh/m-sequence
  waveform of Figure 4.
* :mod:`repro.analysis.table2` — regenerate the area / timing / throughput
  design-space exploration.
* :mod:`repro.analysis.figure6` — regenerate the power / energy series.
* :mod:`repro.analysis.table3` — regenerate the platform comparison and the
  210x / 52x headline ratios.
* :mod:`repro.analysis.ablations` — the extension studies (bit-width accuracy,
  DS-SS vs FSK, full parallelism sweep, network lifetime).
* :mod:`repro.analysis.report` — paper-vs-measured report rendering.
"""

from repro.analysis import paper_data
from repro.analysis.table1 import reproduce_table1
from repro.analysis.figure4 import reproduce_figure4
from repro.analysis.table2 import reproduce_table2, Table2Row
from repro.analysis.figure6 import reproduce_figure6, Figure6Point
from repro.analysis.table3 import reproduce_table3, Table3Row
from repro.analysis.ablations import (
    bitwidth_accuracy_ablation,
    parallelism_ablation,
    dsss_vs_fsk_ablation,
    network_lifetime_study,
)
from repro.analysis.sensitivity import SensitivityPoint, headline_sensitivity, PERTURBABLE_PARAMETERS
from repro.analysis.export import export_all, write_csv
from repro.analysis.report import comparison_report

__all__ = [
    "paper_data",
    "reproduce_table1",
    "reproduce_figure4",
    "reproduce_table2",
    "Table2Row",
    "reproduce_figure6",
    "Figure6Point",
    "reproduce_table3",
    "Table3Row",
    "bitwidth_accuracy_ablation",
    "parallelism_ablation",
    "dsss_vs_fsk_ablation",
    "network_lifetime_study",
    "SensitivityPoint",
    "headline_sensitivity",
    "PERTURBABLE_PARAMETERS",
    "export_all",
    "write_csv",
    "comparison_report",
]
