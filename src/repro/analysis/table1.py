"""Experiment E1: regenerate Table 1 (AquaModem design parameters).

The table is fully derived from the three primary waveform parameters
(Nw = 8, Lpn = 7, Tc = 0.2 ms) plus the Nyquist sampling and equal-guard
rules, so the reproduction simply instantiates
:class:`repro.modem.config.AquaModemConfig` and reads the derived values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import paper_data
from repro.modem.config import AquaModemConfig
from repro.utils.tables import AsciiTable

__all__ = ["Table1Comparison", "reproduce_table1"]


@dataclass(frozen=True)
class Table1Comparison:
    """Paper value vs reproduced value for one Table 1 quantity."""

    quantity: str
    unit: str
    paper_value: float
    reproduced_value: float

    @property
    def matches(self) -> bool:
        """True when the reproduction matches the paper exactly (to 1e-9)."""
        return abs(self.paper_value - self.reproduced_value) < 1e-9


def reproduce_table1(config: AquaModemConfig | None = None) -> list[Table1Comparison]:
    """Regenerate every row of Table 1 and pair it with the published value."""
    config = config if config is not None else AquaModemConfig()
    config.validate_waveform_design()
    reproduced = {
        "walsh_symbol_length": config.walsh_symbols,
        "m_sequence_length": config.spreading_chips,
        "chip_duration": config.chip_duration_s * 1e3,
        "sampling_interval": config.sampling_interval_s * 1e3,
        "symbol_duration": config.symbol_duration_s * 1e3,
        "time_guard_interval": config.guard_duration_s * 1e3,
        "samples_per_symbol": config.samples_per_symbol,
        "samples_per_time_guard": config.samples_per_guard,
        "total_receive_vector_samples": config.receive_vector_samples,
    }
    rows = []
    for key, (paper_value, unit) in paper_data.TABLE1_PARAMETERS.items():
        rows.append(
            Table1Comparison(
                quantity=key,
                unit=unit,
                paper_value=float(paper_value),
                reproduced_value=float(reproduced[key]),
            )
        )
    return rows


def render_table1(rows: list[Table1Comparison] | None = None) -> str:
    """ASCII rendering of the Table 1 comparison."""
    if rows is None:
        rows = reproduce_table1()
    table = AsciiTable(
        headers=["Quantity", "Unit", "Paper", "Reproduced", "Match"],
        title="Table 1 — AquaModem design parameters",
    )
    for row in rows:
        table.add_row(row.quantity, row.unit, row.paper_value, row.reproduced_value, row.matches)
    return table.render()
