"""Quantisation-error metrics used by the bit-width ablation (experiment E6).

The paper (Section IV.C) cites Meng et al. [21] for the claim that 8-10 bits
with optimal dynamic-range scaling are sufficient for accurate channel
estimation.  These helpers quantify that claim on our own implementation:
signal-to-quantisation-noise ratio of the quantised signal matrices, and the
channel-estimation error as a function of word length.
"""

from __future__ import annotations

import numpy as np

from repro.utils.units import power_ratio_to_db

__all__ = [
    "quantization_noise_power",
    "signal_to_quantization_noise_ratio",
    "max_abs_error",
    "dynamic_range_scale",
    "dynamic_range_scale_batch",
]


def quantization_noise_power(original: np.ndarray, quantized: np.ndarray) -> float:
    """Mean squared error between the original and quantised arrays."""
    original = np.asarray(original)
    quantized = np.asarray(quantized)
    if original.shape != quantized.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {quantized.shape}"
        )
    err = original - quantized
    return float(np.mean(np.abs(err) ** 2))


def signal_to_quantization_noise_ratio(
    original: np.ndarray, quantized: np.ndarray
) -> float:
    """SQNR in dB.  Returns ``inf`` for an exact representation."""
    original = np.asarray(original)
    signal_power = float(np.mean(np.abs(original) ** 2))
    noise_power = quantization_noise_power(original, quantized)
    if signal_power == 0.0:
        raise ValueError("signal power is zero; SQNR undefined")
    if noise_power == 0.0:
        return float("inf")
    return power_ratio_to_db(signal_power / noise_power)


def max_abs_error(original: np.ndarray, quantized: np.ndarray) -> float:
    """Largest absolute element-wise quantisation error."""
    original = np.asarray(original)
    quantized = np.asarray(quantized)
    if original.shape != quantized.shape:
        raise ValueError(f"shape mismatch: {original.shape} vs {quantized.shape}")
    return float(np.max(np.abs(original - quantized)))


def dynamic_range_scale(values: np.ndarray) -> float:
    """Return the power-of-two scale that maps ``values`` into [-1, 1).

    Scaling by a power of two is free in hardware (a binary-point move), so the
    IP core normalises each stored matrix by the smallest power of two that
    covers its dynamic range before quantisation.  Returns 1.0 for an all-zero
    input; non-finite inputs are rejected with ``ValueError``.
    """
    values = np.asarray(values)
    if np.iscomplexobj(values):
        peak = float(max(np.max(np.abs(values.real)), np.max(np.abs(values.imag))))
    else:
        peak = float(np.max(np.abs(values)))
    if peak == 0.0:
        return 1.0
    if not np.isfinite(peak):
        raise ValueError("dynamic_range_scale requires finite values")
    exponent = int(np.ceil(np.log2(peak)))
    return float(2.0 ** exponent)


def dynamic_range_scale_batch(values: np.ndarray) -> np.ndarray:
    """Per-row power-of-two scales over a leading batch axis.

    Row ``t`` of the result equals ``dynamic_range_scale(values[t])`` exactly
    (the same ``max`` / ``log2`` / ``2**ceil`` expressions evaluated
    element-wise), so the vectorised bitwidth engine and the scalar datapath
    derive bit-identical scales.  All-zero rows get a scale of 1.0 without
    evaluating ``log2(0)``; non-finite rows are rejected with ``ValueError``,
    matching the scalar path.
    """
    values = np.asarray(values)
    if values.ndim < 1:
        raise ValueError("dynamic_range_scale_batch needs at least a batch axis")
    if values.size == 0:
        return np.ones(values.shape[0], dtype=np.float64)
    flat = values.reshape(values.shape[0], -1)
    if np.iscomplexobj(flat):
        peaks = np.maximum(
            np.max(np.abs(flat.real), axis=1), np.max(np.abs(flat.imag), axis=1)
        )
    else:
        peaks = np.max(np.abs(flat), axis=1)
    # the scalar path takes the peak through a Python float before log2;
    # promote here too, or float32 peaks near powers of two would round the
    # exponent down and halve the scale relative to the scalar path
    peaks = peaks.astype(np.float64, copy=False)
    if not np.isfinite(peaks).all():
        raise ValueError("dynamic_range_scale_batch requires finite values")
    scales = np.ones(flat.shape[0], dtype=np.float64)
    nonzero = peaks > 0.0
    exponents = np.ceil(np.log2(peaks[nonzero]))
    scales[nonzero] = 2.0 ** exponents
    return scales
