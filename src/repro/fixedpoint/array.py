"""A fixed-point array type used by the bit-accurate IP-core simulator.

:class:`FixedPointArray` stores integer raw codes together with their
:class:`~repro.fixedpoint.fmt.FixedPointFormat`.  Arithmetic is performed on
the raw integers (exactly, using int64) and then requantised to an explicit
result format, which is how the hardware datapath behaves: every multiplier
and adder output in the FC block has a declared width, and results wider than
that are rounded/saturated.

Only the operations required by the Matching Pursuits datapath are provided:
addition, subtraction, multiplication, dot products and scalar broadcasting.
The class intentionally does not try to be a full ndarray subclass; it is a
modelling tool, not a general-purpose numeric type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.fmt import FixedPointFormat
from repro.fixedpoint.quantize import OverflowMode, RoundingMode, quantize, raw_values

__all__ = ["FixedPointArray"]


@dataclass(frozen=True)
class FixedPointArray:
    """Integer raw codes plus their fixed-point format.

    Use :meth:`from_float` to construct from floating-point data and
    :meth:`to_float` to convert back.
    """

    raw: np.ndarray
    fmt: FixedPointFormat

    def __post_init__(self) -> None:
        raw = np.asarray(self.raw, dtype=np.int64)
        if np.any(raw < self.fmt.raw_min) or np.any(raw > self.fmt.raw_max):
            raise ValueError("raw codes outside the representable range of the format")
        object.__setattr__(self, "raw", raw)

    # ------------------------------------------------------------------ #
    # Construction / conversion
    # ------------------------------------------------------------------ #
    @classmethod
    def from_float(
        cls,
        values: np.ndarray | float,
        fmt: FixedPointFormat,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Quantise floating-point ``values`` into a :class:`FixedPointArray`."""
        return cls(raw_values(values, fmt, rounding, overflow), fmt)

    def to_float(self) -> np.ndarray:
        """Return the represented real values as float64."""
        return self.raw.astype(np.float64) * self.fmt.resolution

    @property
    def shape(self) -> tuple[int, ...]:
        return self.raw.shape

    def __len__(self) -> int:
        return len(self.raw)

    def __getitem__(self, index) -> "FixedPointArray":
        return FixedPointArray(np.atleast_1d(self.raw[index]), self.fmt)

    # ------------------------------------------------------------------ #
    # Arithmetic — exact on raw codes, then requantised to result_fmt
    # ------------------------------------------------------------------ #
    def _requantize(
        self,
        exact_values: np.ndarray,
        result_fmt: FixedPointFormat | None,
        default_fmt: FixedPointFormat,
        rounding: RoundingMode,
        overflow: OverflowMode,
    ) -> "FixedPointArray":
        fmt = result_fmt if result_fmt is not None else default_fmt
        quantised = quantize(exact_values, fmt, rounding, overflow)
        return FixedPointArray.from_float(quantised, fmt, rounding, overflow)

    def add(
        self,
        other: "FixedPointArray",
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Element-wise sum; default result format has one growth bit."""
        exact = self.to_float() + other.to_float()
        return self._requantize(
            exact, result_fmt, self.fmt.add_format(other.fmt), rounding, overflow
        )

    def subtract(
        self,
        other: "FixedPointArray",
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Element-wise difference; default result format has one growth bit."""
        exact = self.to_float() - other.to_float()
        return self._requantize(
            exact, result_fmt, self.fmt.add_format(other.fmt), rounding, overflow
        )

    def multiply(
        self,
        other: "FixedPointArray",
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Element-wise product; default result format is the full-precision product."""
        exact = self.to_float() * other.to_float()
        return self._requantize(
            exact, result_fmt, self.fmt.multiply_format(other.fmt), rounding, overflow
        )

    def dot(
        self,
        other: "FixedPointArray",
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Inner product of two 1-D fixed-point arrays (MAC chain of the FC block)."""
        if self.raw.ndim != 1 or other.raw.ndim != 1:
            raise ValueError("dot requires 1-D operands")
        if self.raw.shape != other.raw.shape:
            raise ValueError(
                f"dot requires equal lengths, got {self.raw.shape} and {other.raw.shape}"
            )
        exact = float(np.dot(self.to_float(), other.to_float()))
        prod_fmt = self.fmt.multiply_format(other.fmt)
        default_fmt = prod_fmt.accumulate_format(max(1, self.raw.shape[0]))
        return self._requantize(
            np.asarray(exact), result_fmt, default_fmt, rounding, overflow
        )

    def scale(
        self,
        factor: float,
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Multiply by a floating-point scalar (e.g. the pre-computed 1/A_kk)."""
        exact = self.to_float() * factor
        return self._requantize(exact, result_fmt, self.fmt, rounding, overflow)
