"""A fixed-point array type used by the bit-accurate IP-core simulator.

:class:`FixedPointArray` stores integer raw codes together with their
:class:`~repro.fixedpoint.fmt.FixedPointFormat`.  Arithmetic is performed on
the raw integers (exactly, using int64) and then requantised to an explicit
result format, which is how the hardware datapath behaves: every multiplier
and adder output in the FC block has a declared width, and results wider than
that are rounded/saturated.

Only the operations required by the Matching Pursuits datapath are provided:
addition, subtraction, multiplication, dot products and scalar broadcasting.
Every operation accepts a leading batch axis — element-wise operations
broadcast like ndarrays, and :meth:`FixedPointArray.dot` contracts the last
axis, so a ``(trials, n)`` array yields ``trials`` inner products in one
call, bit-identical to a loop of 1-D dots while the exact arithmetic stays
inside float64's 53-bit integer range (see :meth:`FixedPointArray.dot`).
The class intentionally does not try to be a full ndarray subclass; it is a
modelling tool, not a general-purpose numeric type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.fmt import FixedPointFormat
from repro.fixedpoint.quantize import OverflowMode, RoundingMode, quantize, raw_values

__all__ = ["FixedPointArray"]


@dataclass(frozen=True)
class FixedPointArray:
    """Integer raw codes plus their fixed-point format.

    Use :meth:`from_float` to construct from floating-point data and
    :meth:`to_float` to convert back.
    """

    raw: np.ndarray
    fmt: FixedPointFormat

    def __post_init__(self) -> None:
        raw = np.asarray(self.raw, dtype=np.int64)
        if np.any(raw < self.fmt.raw_min) or np.any(raw > self.fmt.raw_max):
            raise ValueError("raw codes outside the representable range of the format")
        object.__setattr__(self, "raw", raw)

    # ------------------------------------------------------------------ #
    # Construction / conversion
    # ------------------------------------------------------------------ #
    @classmethod
    def from_float(
        cls,
        values: np.ndarray | float,
        fmt: FixedPointFormat,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Quantise floating-point ``values`` into a :class:`FixedPointArray`."""
        return cls(raw_values(values, fmt, rounding, overflow), fmt)

    def to_float(self) -> np.ndarray:
        """Return the represented real values as float64."""
        return self.raw.astype(np.float64) * self.fmt.resolution

    @property
    def shape(self) -> tuple[int, ...]:
        return self.raw.shape

    def __len__(self) -> int:
        return len(self.raw)

    def __getitem__(self, index) -> "FixedPointArray":
        return FixedPointArray(np.atleast_1d(self.raw[index]), self.fmt)

    # ------------------------------------------------------------------ #
    # Arithmetic — exact on raw codes, then requantised to result_fmt
    # ------------------------------------------------------------------ #
    def _requantize(
        self,
        exact_values: np.ndarray,
        result_fmt: FixedPointFormat | None,
        default_fmt: FixedPointFormat,
        rounding: RoundingMode,
        overflow: OverflowMode,
    ) -> "FixedPointArray":
        fmt = result_fmt if result_fmt is not None else default_fmt
        quantised = quantize(exact_values, fmt, rounding, overflow)
        return FixedPointArray.from_float(quantised, fmt, rounding, overflow)

    def add(
        self,
        other: "FixedPointArray",
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Element-wise sum (broadcasts over batch axes); default format has one growth bit."""
        exact = self.to_float() + other.to_float()
        return self._requantize(
            exact, result_fmt, self.fmt.add_format(other.fmt), rounding, overflow
        )

    def subtract(
        self,
        other: "FixedPointArray",
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Element-wise difference (broadcasts over batch axes); one growth bit by default."""
        exact = self.to_float() - other.to_float()
        return self._requantize(
            exact, result_fmt, self.fmt.add_format(other.fmt), rounding, overflow
        )

    def multiply(
        self,
        other: "FixedPointArray",
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Element-wise product (broadcasts over batch axes); full-precision format by default."""
        exact = self.to_float() * other.to_float()
        return self._requantize(
            exact, result_fmt, self.fmt.multiply_format(other.fmt), rounding, overflow
        )

    def dot(
        self,
        other: "FixedPointArray",
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Inner product over the last axis (MAC chain of the FC block).

        1-D operands give the plain inner product.  Operands with leading
        batch axes contract the last axis per row — ``(trials, n)`` against
        ``(trials, n)`` or a shared ``(n,)`` vector yields ``trials``
        accumulator outputs in one call.  The accumulation is exact integer
        math as long as the raw products and partial sums fit float64's
        53-bit integer mantissa (word lengths summing to ≲ 46 bits for the
        FC-block geometry), where every summation order gives the same bits;
        the property suite pins batched dots against loops of 1-D dots
        inside that domain.
        """
        if self.raw.ndim == 0 or other.raw.ndim == 0:
            raise ValueError("dot requires at least 1-D operands")
        if self.raw.shape[-1] != other.raw.shape[-1]:
            raise ValueError(
                f"dot requires equal last-axis lengths, got {self.raw.shape} "
                f"and {other.raw.shape}"
            )
        prod_fmt = self.fmt.multiply_format(other.fmt)
        default_fmt = prod_fmt.accumulate_format(max(1, self.raw.shape[-1]))
        if self.raw.ndim == 1 and other.raw.ndim == 1:
            exact = np.asarray(float(np.dot(self.to_float(), other.to_float())))
        else:
            exact = np.einsum("...i,...i->...", self.to_float(), other.to_float())
        return self._requantize(
            exact, result_fmt, default_fmt, rounding, overflow
        )

    def scale(
        self,
        factor: float,
        result_fmt: FixedPointFormat | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowMode = OverflowMode.SATURATE,
    ) -> "FixedPointArray":
        """Multiply by a floating-point scalar (e.g. the pre-computed 1/A_kk)."""
        exact = self.to_float() * factor
        return self._requantize(exact, result_fmt, self.fmt, rounding, overflow)
