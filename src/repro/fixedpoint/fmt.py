"""Fixed-point format descriptors (Q-format).

A fixed-point number with word length ``w``, fraction length ``f`` and a sign
bit represents the value ``raw * 2**-f`` where ``raw`` is a ``w``-bit signed
(two's-complement) or unsigned integer.  This mirrors the Xilinx System
Generator ``Fix``/``UFix`` types used by the paper's IP core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_integer

__all__ = ["FixedPointFormat"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A fixed-point number format.

    Parameters
    ----------
    word_length:
        Total number of bits, including the sign bit when ``signed``.
    fraction_length:
        Number of fractional bits.  May exceed ``word_length`` (pure
        fractions) or be negative (coarse integers), as in System Generator.
    signed:
        Whether the raw integer is two's complement.

    Examples
    --------
    >>> fmt = FixedPointFormat(8, 6)
    >>> fmt.resolution
    0.015625
    >>> fmt.max_value
    1.984375
    >>> fmt.min_value
    -2.0
    """

    word_length: int
    fraction_length: int
    signed: bool = True

    def __post_init__(self) -> None:
        check_integer("word_length", self.word_length, minimum=1, maximum=64)
        check_integer("fraction_length", self.fraction_length, minimum=-64, maximum=128)

    # ------------------------------------------------------------------ #
    # Derived properties
    # ------------------------------------------------------------------ #
    @property
    def integer_length(self) -> int:
        """Number of integer (non-fraction, non-sign) bits."""
        return self.word_length - self.fraction_length - (1 if self.signed else 0)

    @property
    def resolution(self) -> float:
        """The value of one least-significant bit."""
        return 2.0 ** (-self.fraction_length)

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer."""
        if self.signed:
            return -(1 << (self.word_length - 1))
        return 0

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        if self.signed:
            return (1 << (self.word_length - 1)) - 1
        return (1 << self.word_length) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.resolution

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.resolution

    @property
    def num_levels(self) -> int:
        """Number of distinct representable values."""
        return 1 << self.word_length

    def contains(self, value: float) -> bool:
        """Return True if ``value`` lies inside the representable range."""
        return self.min_value <= value <= self.max_value

    # ------------------------------------------------------------------ #
    # Format algebra (result formats of exact arithmetic)
    # ------------------------------------------------------------------ #
    def multiply_format(self, other: "FixedPointFormat") -> "FixedPointFormat":
        """Format of an exact (full-precision) product of two fixed-point numbers."""
        signed = self.signed or other.signed
        word = self.word_length + other.word_length
        frac = self.fraction_length + other.fraction_length
        return FixedPointFormat(word, frac, signed)

    def add_format(self, other: "FixedPointFormat") -> "FixedPointFormat":
        """Format of an exact sum of two fixed-point numbers (one growth bit)."""
        signed = self.signed or other.signed
        frac = max(self.fraction_length, other.fraction_length)
        int_self = self.word_length - self.fraction_length
        int_other = other.word_length - other.fraction_length
        word = max(int_self, int_other) + frac + 1
        return FixedPointFormat(min(word, 64), frac, signed)

    def accumulate_format(self, terms: int) -> "FixedPointFormat":
        """Format of an exact sum of ``terms`` values of this format."""
        check_integer("terms", terms, minimum=1)
        growth = max(1, int(terms - 1).bit_length())
        return FixedPointFormat(min(self.word_length + growth, 64), self.fraction_length, self.signed)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def for_unit_range(cls, word_length: int, signed: bool = True) -> "FixedPointFormat":
        """Format covering approximately [-1, 1) (or [0, 1) unsigned).

        This is the natural format for normalised chip sequences (±1 values are
        scaled by the dynamic-range scaler before quantisation, see
        :func:`repro.fixedpoint.metrics.dynamic_range_scale`).
        """
        frac = word_length - 1 if signed else word_length
        return cls(word_length, frac, signed)

    @classmethod
    def for_range(
        cls, word_length: int, max_abs_value: float, signed: bool = True
    ) -> "FixedPointFormat":
        """Choose the fraction length that covers ``[-max_abs_value, max_abs_value]``.

        The fraction length is the largest one (finest resolution) whose range
        still covers the requested magnitude.
        """
        check_integer("word_length", word_length, minimum=1, maximum=64)
        if max_abs_value <= 0:
            raise ValueError(f"max_abs_value must be > 0, got {max_abs_value!r}")
        # integer bits needed to represent max_abs_value
        import math

        int_bits = max(0, math.ceil(math.log2(max_abs_value + 2.0 ** -52)))
        frac = word_length - int_bits - (1 if signed else 0)
        return cls(word_length, frac, signed)

    def __str__(self) -> str:
        kind = "Fix" if self.signed else "UFix"
        return f"{kind}{self.word_length}_{self.fraction_length}"
