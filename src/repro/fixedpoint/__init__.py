"""Fixed-point arithmetic substrate.

The paper's FPGA IP core uses fixed-point datapaths of 8, 12 and 16 bits
(Section IV.C).  This subpackage provides the machinery to model those
datapaths in software:

* :class:`~repro.fixedpoint.fmt.FixedPointFormat` — a Q-format descriptor
  (word length, fraction length, signedness) with range/resolution queries.
* :func:`~repro.fixedpoint.quantize.quantize` — vectorised quantisation with
  selectable rounding and overflow behaviour.
* :class:`~repro.fixedpoint.array.FixedPointArray` — a light wrapper holding
  integer raw values plus their format, supporting the arithmetic the FC-block
  datapath needs (add, subtract, multiply, accumulate) with explicit result
  formats.
* :mod:`~repro.fixedpoint.metrics` — quantisation-error metrics (SQNR, max
  error) used by the bit-width ablation (experiment E6).
"""

from repro.fixedpoint.fmt import FixedPointFormat
from repro.fixedpoint.quantize import (
    quantize,
    quantize_batch,
    quantize_to_format,
    quantize_to_format_batch,
    raw_values,
    raw_values_batch,
    OverflowMode,
    RoundingMode,
)
from repro.fixedpoint.array import FixedPointArray
from repro.fixedpoint.metrics import (
    quantization_noise_power,
    signal_to_quantization_noise_ratio,
    max_abs_error,
    dynamic_range_scale,
    dynamic_range_scale_batch,
)

__all__ = [
    "FixedPointFormat",
    "quantize",
    "quantize_batch",
    "quantize_to_format",
    "quantize_to_format_batch",
    "raw_values",
    "raw_values_batch",
    "OverflowMode",
    "RoundingMode",
    "FixedPointArray",
    "quantization_noise_power",
    "signal_to_quantization_noise_ratio",
    "max_abs_error",
    "dynamic_range_scale",
    "dynamic_range_scale_batch",
]
