"""Vectorised quantisation of floating-point arrays to fixed-point grids.

The quantiser supports the rounding and overflow behaviours offered by the
Xilinx System Generator blocks used in the paper's IP core: round-to-nearest
vs. truncation, and saturation vs. two's-complement wrap-around.  Complex
inputs are quantised component-wise (the IP core duplicates the datapath for
real and imaginary parts, Section IV.A).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.fixedpoint.fmt import FixedPointFormat

__all__ = [
    "RoundingMode",
    "OverflowMode",
    "quantize",
    "quantize_to_format",
    "raw_values",
    "quantize_batch",
    "quantize_to_format_batch",
    "raw_values_batch",
]


class RoundingMode(str, Enum):
    """How the infinite-precision value is mapped onto the fixed-point grid."""

    NEAREST = "nearest"
    TRUNCATE = "truncate"


class OverflowMode(str, Enum):
    """What happens when a value exceeds the representable range."""

    SATURATE = "saturate"
    WRAP = "wrap"


def _round_raw(scaled: np.ndarray, rounding: RoundingMode) -> np.ndarray:
    if rounding is RoundingMode.NEAREST:
        return np.round(scaled)
    return np.floor(scaled)


def _apply_overflow(
    raw: np.ndarray, fmt: FixedPointFormat, overflow: OverflowMode
) -> np.ndarray:
    if overflow is OverflowMode.SATURATE:
        return np.clip(raw, fmt.raw_min, fmt.raw_max)
    # two's-complement wrap
    span = fmt.num_levels
    wrapped = np.mod(raw - fmt.raw_min, span) + fmt.raw_min
    return wrapped


def raw_values(
    values: np.ndarray | float,
    fmt: FixedPointFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> np.ndarray:
    """Return the integer raw codes of ``values`` quantised to ``fmt``.

    Real inputs only; complex inputs must be split by the caller.
    """
    arr = np.asarray(values)
    if np.iscomplexobj(arr):
        raise TypeError("raw_values operates on real arrays; split complex inputs first")
    arr = arr.astype(np.float64, copy=False)
    scaled = arr / fmt.resolution
    raw = _round_raw(scaled, rounding)
    raw = _apply_overflow(raw, fmt, overflow)
    return raw.astype(np.int64)


def quantize(
    values: np.ndarray | float | complex,
    fmt: FixedPointFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> np.ndarray:
    """Quantise ``values`` to the grid of ``fmt`` and return them as floats.

    The returned array has the same shape as the input; complex inputs are
    quantised component-wise.  The result is exactly representable in ``fmt``
    (i.e. ``quantize(quantize(x)) == quantize(x)``).
    """
    arr = np.asarray(values)
    if np.iscomplexobj(arr):
        real = quantize(arr.real, fmt, rounding, overflow)
        imag = quantize(arr.imag, fmt, rounding, overflow)
        return real + 1j * imag
    raw = raw_values(arr, fmt, rounding, overflow)
    return raw.astype(np.float64) * fmt.resolution


def quantize_to_format(
    values: np.ndarray | float | complex,
    word_length: int,
    *,
    max_abs_value: float | None = None,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> tuple[np.ndarray, FixedPointFormat]:
    """Quantise ``values`` choosing a fraction length that fits the data.

    If ``max_abs_value`` is not given it is taken from the data (with complex
    inputs, from the larger of the real/imaginary magnitudes).  Returns the
    quantised values and the chosen format.  This implements the "optimal
    dynamic range scaling" the paper attributes to Meng et al. [21].
    """
    arr = np.asarray(values)
    if max_abs_value is None:
        if np.iscomplexobj(arr):
            max_abs_value = float(max(np.max(np.abs(arr.real)), np.max(np.abs(arr.imag))))
        else:
            max_abs_value = float(np.max(np.abs(arr)))
        if max_abs_value == 0.0:
            max_abs_value = 1.0
    fmt = FixedPointFormat.for_range(word_length, max_abs_value)
    return quantize(arr, fmt, rounding, overflow), fmt


# --------------------------------------------------------------------------- #
# Batched variants — a leading batch axis with per-row scaling / formats.
#
# Every batched function is pinned by the property suite to be *bit-identical*
# to a Python loop of its scalar counterpart: the same element-wise
# divide / round / clip expressions run on the whole batch at once, so the
# vectorised fixed-point engine and the scalar executable specification
# produce the same raw integer codes.
# --------------------------------------------------------------------------- #
def _broadcast_scales(scales: np.ndarray | None, arr: np.ndarray) -> np.ndarray | None:
    """Reshape per-row ``scales`` of a leading batch axis for broadcasting."""
    if scales is None:
        return None
    scales = np.asarray(scales, dtype=np.float64)
    if scales.shape != (arr.shape[0],):
        raise ValueError(
            f"scales must have shape ({arr.shape[0]},) to match the batch axis, "
            f"got {scales.shape}"
        )
    return scales.reshape((arr.shape[0],) + (1,) * (arr.ndim - 1))


def raw_values_batch(
    values: np.ndarray,
    fmt: FixedPointFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
    *,
    scales: np.ndarray | None = None,
) -> np.ndarray:
    """Raw codes of a batch of real rows, each divided by its own ``scales[t]``.

    Equivalent to ``np.stack([raw_values(values[t] / scales[t], fmt, ...)])``
    but in one vectorised pass.  ``scales`` defaults to all ones.
    """
    arr = np.asarray(values)
    if arr.ndim < 1:
        raise ValueError("raw_values_batch needs at least a batch axis")
    if np.iscomplexobj(arr):
        raise TypeError("raw_values_batch operates on real arrays; split complex inputs first")
    arr = arr.astype(np.float64, copy=False)
    broadcast = _broadcast_scales(scales, arr)
    if broadcast is not None:
        arr = arr / broadcast
    scaled = arr / fmt.resolution
    raw = _round_raw(scaled, rounding)
    raw = _apply_overflow(raw, fmt, overflow)
    return raw.astype(np.int64)


def quantize_batch(
    values: np.ndarray,
    fmt: FixedPointFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
    *,
    scales: np.ndarray | None = None,
) -> np.ndarray:
    """Quantise a batch of rows on one grid, with per-row power-of-two scaling.

    Row ``t`` equals ``quantize(values[t] / scales[t], fmt, ...) * scales[t]``
    bit for bit — the dynamic-range-scaled quantisation step of the
    fixed-point datapath, vectorised over the whole batch.  Complex inputs
    are quantised component-wise, like :func:`quantize`.
    """
    arr = np.asarray(values)
    if arr.ndim < 1:
        raise ValueError("quantize_batch needs at least a batch axis")
    if np.iscomplexobj(arr):
        real = quantize_batch(arr.real, fmt, rounding, overflow, scales=scales)
        imag = quantize_batch(arr.imag, fmt, rounding, overflow, scales=scales)
        return real + 1j * imag
    broadcast = _broadcast_scales(scales, arr)
    scaled_in = arr if broadcast is None else arr / broadcast
    raw = raw_values_batch(scaled_in, fmt, rounding, overflow)
    quantised = raw.astype(np.float64) * fmt.resolution
    if broadcast is not None:
        quantised = quantised * broadcast
    return quantised


def quantize_to_format_batch(
    values: np.ndarray,
    word_length: int,
    *,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> tuple[np.ndarray, list[FixedPointFormat]]:
    """Per-row :func:`quantize_to_format` over a leading batch axis.

    Each row picks its own fraction length from its own peak magnitude (the
    per-matrix dynamic-range scaling of the IP core) and the quantisation of
    all rows then runs as one vectorised pass.  Row ``t`` of the result and
    ``formats[t]`` equal ``quantize_to_format(values[t], word_length, ...)``
    bit for bit; the formats are chosen by the same
    :meth:`~repro.fixedpoint.fmt.FixedPointFormat.for_range` call per row, so
    no float-library differences can creep in between the paths.
    """
    arr = np.asarray(values)
    if arr.ndim < 1:
        raise ValueError("quantize_to_format_batch needs at least a batch axis")
    flat = arr.reshape(arr.shape[0], -1)
    if np.iscomplexobj(flat):
        peaks = np.maximum(
            np.max(np.abs(flat.real), axis=1, initial=0.0),
            np.max(np.abs(flat.imag), axis=1, initial=0.0),
        )
    else:
        peaks = np.max(np.abs(flat), axis=1, initial=0.0)
    formats = [
        FixedPointFormat.for_range(word_length, float(peak) if peak > 0.0 else 1.0)
        for peak in peaks
    ]
    # quantising on per-row formats == quantising on an integer grid (the
    # same word length, fraction length 0) scaled by each row's resolution
    resolutions = np.array([fmt.resolution for fmt in formats], dtype=np.float64)
    integer_grid = FixedPointFormat(word_length, 0, signed=True)
    quantised = quantize_batch(
        arr, integer_grid, rounding, overflow, scales=resolutions
    )
    return quantised, formats
