"""Vectorised quantisation of floating-point arrays to fixed-point grids.

The quantiser supports the rounding and overflow behaviours offered by the
Xilinx System Generator blocks used in the paper's IP core: round-to-nearest
vs. truncation, and saturation vs. two's-complement wrap-around.  Complex
inputs are quantised component-wise (the IP core duplicates the datapath for
real and imaginary parts, Section IV.A).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.fixedpoint.fmt import FixedPointFormat

__all__ = ["RoundingMode", "OverflowMode", "quantize", "quantize_to_format", "raw_values"]


class RoundingMode(str, Enum):
    """How the infinite-precision value is mapped onto the fixed-point grid."""

    NEAREST = "nearest"
    TRUNCATE = "truncate"


class OverflowMode(str, Enum):
    """What happens when a value exceeds the representable range."""

    SATURATE = "saturate"
    WRAP = "wrap"


def _round_raw(scaled: np.ndarray, rounding: RoundingMode) -> np.ndarray:
    if rounding is RoundingMode.NEAREST:
        return np.round(scaled)
    return np.floor(scaled)


def _apply_overflow(
    raw: np.ndarray, fmt: FixedPointFormat, overflow: OverflowMode
) -> np.ndarray:
    if overflow is OverflowMode.SATURATE:
        return np.clip(raw, fmt.raw_min, fmt.raw_max)
    # two's-complement wrap
    span = fmt.num_levels
    wrapped = np.mod(raw - fmt.raw_min, span) + fmt.raw_min
    return wrapped


def raw_values(
    values: np.ndarray | float,
    fmt: FixedPointFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> np.ndarray:
    """Return the integer raw codes of ``values`` quantised to ``fmt``.

    Real inputs only; complex inputs must be split by the caller.
    """
    arr = np.asarray(values)
    if np.iscomplexobj(arr):
        raise TypeError("raw_values operates on real arrays; split complex inputs first")
    arr = arr.astype(np.float64, copy=False)
    scaled = arr / fmt.resolution
    raw = _round_raw(scaled, rounding)
    raw = _apply_overflow(raw, fmt, overflow)
    return raw.astype(np.int64)


def quantize(
    values: np.ndarray | float | complex,
    fmt: FixedPointFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> np.ndarray:
    """Quantise ``values`` to the grid of ``fmt`` and return them as floats.

    The returned array has the same shape as the input; complex inputs are
    quantised component-wise.  The result is exactly representable in ``fmt``
    (i.e. ``quantize(quantize(x)) == quantize(x)``).
    """
    arr = np.asarray(values)
    if np.iscomplexobj(arr):
        real = quantize(arr.real, fmt, rounding, overflow)
        imag = quantize(arr.imag, fmt, rounding, overflow)
        return real + 1j * imag
    raw = raw_values(arr, fmt, rounding, overflow)
    return raw.astype(np.float64) * fmt.resolution


def quantize_to_format(
    values: np.ndarray | float | complex,
    word_length: int,
    *,
    max_abs_value: float | None = None,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> tuple[np.ndarray, FixedPointFormat]:
    """Quantise ``values`` choosing a fraction length that fits the data.

    If ``max_abs_value`` is not given it is taken from the data (with complex
    inputs, from the larger of the real/imaginary magnitudes).  Returns the
    quantised values and the chosen format.  This implements the "optimal
    dynamic range scaling" the paper attributes to Meng et al. [21].
    """
    arr = np.asarray(values)
    if max_abs_value is None:
        if np.iscomplexobj(arr):
            max_abs_value = float(max(np.max(np.abs(arr.real)), np.max(np.abs(arr.imag))))
        else:
            max_abs_value = float(np.max(np.abs(arr)))
        if max_abs_value == 0.0:
            max_abs_value = 1.0
    fmt = FixedPointFormat.for_range(word_length, max_abs_value)
    return quantize(arr, fmt, rounding, overflow), fmt
