"""Cross-sweep result warehouse: a queryable SQLite index over every run.

The sweep stack *writes* crash-safe per-run silos — content-addressed cache
entries, per-sweep ``results.jsonl``/``manifest.json`` directories, per-job
service artifacts.  This package is the *read side* that turns that disk full
of hashes into a dataset:

* :mod:`repro.warehouse.schema` — the versioned SQLite table layout
  (runs / trials / params / metrics) and its
  :class:`~repro.warehouse.schema.SchemaVersionError` contract;
* :mod:`repro.warehouse.ingest` — incremental, idempotent scanning of cache
  dirs, service job dirs and result-store outputs (content-hash keyed,
  quarantine-aware, one transaction per run);
* :mod:`repro.warehouse.query` — runs/trials lookups with parameter-range
  filters;
* :mod:`repro.warehouse.compare` — run-vs-run metric diffs with regression
  highlighting;
* :mod:`repro.warehouse.db` — the :class:`Warehouse` facade the CLI
  (``repro ingest`` / ``repro query`` / ``repro compare``) and the sweep
  service (auto-ingest + ``GET /api/v1/runs``) are built on.
"""

from repro.warehouse.compare import ComparisonReport, MetricDiff, compare_runs, render_comparison
from repro.warehouse.db import DEFAULT_WAREHOUSE_PATH, Warehouse
from repro.warehouse.ingest import IngestReport, discover, ingest_path
from repro.warehouse.query import ParamFilter, RunInfo, TrialRow, parse_filter
from repro.warehouse.schema import SCHEMA_VERSION, SchemaVersionError

__all__ = [
    "Warehouse",
    "DEFAULT_WAREHOUSE_PATH",
    "IngestReport",
    "discover",
    "ingest_path",
    "ParamFilter",
    "RunInfo",
    "TrialRow",
    "parse_filter",
    "ComparisonReport",
    "MetricDiff",
    "compare_runs",
    "render_comparison",
    "SCHEMA_VERSION",
    "SchemaVersionError",
]
