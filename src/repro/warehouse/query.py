"""Read-side of the warehouse: runs, trials and parameter-range filters.

Queries never touch the source artifacts — they answer entirely from the
SQLite index, so "every run of this scenario ever ingested" is one indexed
``SELECT`` instead of a crawl over content-addressed hash directories.

Filtering is built from :class:`ParamFilter` predicates
(``name <op> value``, parsed from CLI strings like ``snr_db>=-3`` by
:func:`parse_filter`).  A filter applies to *trials*; a *run* matches when at
least one of its trials satisfies every filter — which is the useful reading
of "runs that swept SNR down to -9 dB".
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.telemetry.metrics import counter

__all__ = [
    "ParamFilter",
    "RunInfo",
    "TrialRow",
    "parse_filter",
    "select_runs",
    "select_trials",
    "metric_names",
]

_QUERIES = counter("warehouse.queries")

#: Comparison operators, longest first so ``>=`` never parses as ``>``.
_OPERATORS = (">=", "<=", "!=", "==", ">", "<", "=")

#: Operators as SQL (``=``/``==`` normalise to one spelling).
_SQL_OPS = {">=": ">=", "<=": "<=", "!=": "!=", "==": "=", ">": ">", "<": "<", "=": "="}


@dataclass(frozen=True)
class ParamFilter:
    """One trial-parameter predicate: ``name <op> value``."""

    name: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        """Reject unknown operators at construction, not at SQL-build time."""
        if self.op not in _SQL_OPS:
            raise ValueError(
                f"unknown operator {self.op!r}; expected one of {', '.join(_SQL_OPS)}"
            )

    def sql(self, table: str = "params") -> tuple[str, list[Any]]:
        """The ``EXISTS`` subquery (and its bind values) matching this filter."""
        op = _SQL_OPS[self.op]
        if isinstance(self.value, bool):
            column, bound = "value_num", float(self.value)
        elif isinstance(self.value, (int, float)):
            column, bound = "value_num", float(self.value)
        else:
            column, bound = "value_text", str(self.value)
        clause = (
            f"EXISTS (SELECT 1 FROM {table} f WHERE f.trial_id = t.trial_id"
            f" AND f.name = ? AND f.{column} {op} ?)"
        )
        return clause, [self.name, bound]


def _parse_value(token: str) -> int | float | str | bool:
    """Parse a filter value the same way the CLI parses ``--set`` values."""
    for parse in (int, float):
        try:
            return parse(token)
        except ValueError:
            pass
    if token.lower() in ("true", "false"):
        return token.lower() == "true"
    return token


def parse_filter(expression: str) -> ParamFilter:
    """Parse ``"snr_db>=-3"`` / ``"scheme=DSSS"`` into a :class:`ParamFilter`."""
    for op in _OPERATORS:
        name, separator, value = expression.partition(op)
        if separator and name:
            return ParamFilter(name=name.strip(), op=op, value=_parse_value(value.strip()))
    raise ValueError(
        f"cannot parse filter {expression!r}; expected NAME<op>VALUE with one of "
        f"{', '.join(_OPERATORS)}"
    )


@dataclass(frozen=True)
class RunInfo:
    """One warehouse run row, with its spec/stats JSON decoded."""

    run_id: int
    run_key: str
    source: str
    source_path: str
    scenario: str
    scenario_version: str | None
    ingested_at: float
    num_trials: int
    spec: dict[str, Any] | None
    stats: dict[str, Any] | None

    def to_dict(self) -> dict[str, Any]:
        """The run as a JSON-ready dict (CLI/API output)."""
        return {
            "run_id": self.run_id,
            "run_key": self.run_key,
            "source": self.source,
            "source_path": self.source_path,
            "scenario": self.scenario,
            "scenario_version": self.scenario_version,
            "ingested_at": self.ingested_at,
            "num_trials": self.num_trials,
            "spec": self.spec,
            "stats": self.stats,
        }


@dataclass(frozen=True)
class TrialRow:
    """One trial: its owning run and the verbatim tidy record."""

    run_id: int
    trial_id: int
    record: dict[str, Any]


def _run_info(row: sqlite3.Row) -> RunInfo:
    return RunInfo(
        run_id=row["run_id"],
        run_key=row["run_key"],
        source=row["source"],
        source_path=row["source_path"],
        scenario=row["scenario"],
        scenario_version=row["scenario_version"],
        ingested_at=row["ingested_at"],
        num_trials=row["num_trials"],
        spec=json.loads(row["spec_json"]) if row["spec_json"] else None,
        stats=json.loads(row["stats_json"]) if row["stats_json"] else None,
    )


def select_runs(
    conn: sqlite3.Connection,
    scenario: str | None = None,
    version: str | None = None,
    source: str | None = None,
    since: float | None = None,
    until: float | None = None,
    where: Sequence[ParamFilter] = (),
) -> list[RunInfo]:
    """Runs matching the filters, oldest ingested first.

    ``since``/``until`` bound ``ingested_at`` (POSIX seconds) — the
    time-window half of ``repro compare``.  ``where`` predicates must all be
    satisfied by at least one trial of the run.
    """
    _QUERIES.inc()
    clauses: list[str] = []
    binds: list[Any] = []
    for column, value in (
        ("scenario = ?", scenario),
        ("scenario_version = ?", version),
        ("source = ?", source),
        ("ingested_at >= ?", since),
        ("ingested_at <= ?", until),
    ):
        if value is not None:
            clauses.append(f"r.{column}")
            binds.append(value)
    for predicate in where:
        sub, sub_binds = predicate.sql()
        clauses.append(
            "EXISTS (SELECT 1 FROM trials t WHERE t.run_id = r.run_id AND "
            + sub + ")"
        )
        binds.extend(sub_binds)
    sql = "SELECT r.* FROM runs r"
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    sql += " ORDER BY r.ingested_at, r.run_id"
    return [_run_info(row) for row in conn.execute(sql, binds)]


def select_trials(
    conn: sqlite3.Connection,
    run_ids: Iterable[int] | None = None,
    scenario: str | None = None,
    where: Sequence[ParamFilter] = (),
    limit: int | None = None,
) -> list[TrialRow]:
    """Trials matching the filters, in (run, trial-index) order."""
    _QUERIES.inc()
    clauses: list[str] = []
    binds: list[Any] = []
    if run_ids is not None:
        ids = list(run_ids)
        placeholders = ", ".join("?" for _ in ids)
        clauses.append(f"t.run_id IN ({placeholders})")
        binds.extend(ids)
    if scenario is not None:
        clauses.append("r.scenario = ?")
        binds.append(scenario)
    for predicate in where:
        sub, sub_binds = predicate.sql()
        clauses.append(sub)
        binds.extend(sub_binds)
    sql = (
        "SELECT t.run_id, t.trial_id, t.record_json FROM trials t"
        " JOIN runs r ON r.run_id = t.run_id"
    )
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    sql += " ORDER BY t.run_id, t.trial_index, t.trial_id"
    if limit is not None:
        sql += " LIMIT ?"
        binds.append(int(limit))
    return [
        TrialRow(
            run_id=row["run_id"],
            trial_id=row["trial_id"],
            record=json.loads(row["record_json"]),
        )
        for row in conn.execute(sql, binds)
    ]


def metric_names(conn: sqlite3.Connection, run_id: int, numeric_only: bool = True) -> list[str]:
    """The metric column names recorded for one run (sorted)."""
    sql = (
        "SELECT DISTINCT m.name FROM metrics m"
        " JOIN trials t ON t.trial_id = m.trial_id WHERE t.run_id = ?"
    )
    if numeric_only:
        sql += " AND m.kind = 'num'"
    return sorted(row["name"] for row in conn.execute(sql, (run_id,)))
