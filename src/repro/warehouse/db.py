"""The :class:`Warehouse` facade: one object over ingest, query and compare.

A :class:`Warehouse` is addressed by its SQLite file path and opens a
*short-lived connection per operation*.  That choice is deliberate: the
sweep service ingests from executor worker threads while API handler threads
answer ``GET /api/v1/runs``, and per-call connections sidestep SQLite's
same-thread affinity entirely — cross-thread and cross-process safety then
rests on SQLite's own file locking plus the one-transaction-per-run ingest
convention of :mod:`repro.warehouse.ingest`.

Run references accepted wherever a run is named (:meth:`Warehouse.resolve`):
an integer run id, or the selectors ``latest`` / ``prev`` (optionally scoped
to a scenario) for the most recent and second-most-recent ingested runs —
the spelling ``repro compare prev latest --scenario modem-ser-vs-snr`` reads
as intended.
"""

from __future__ import annotations

import contextlib
import sqlite3
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.warehouse.compare import (
    DEFAULT_THRESHOLD,
    ComparisonReport,
    compare_runs,
)
from repro.warehouse.ingest import IngestReport, ingest_path
from repro.warehouse.query import (
    ParamFilter,
    RunInfo,
    TrialRow,
    metric_names,
    select_runs,
    select_trials,
)
from repro.warehouse.schema import connect

__all__ = ["Warehouse", "DEFAULT_WAREHOUSE_PATH"]

#: Where the CLI commands put the warehouse unless told otherwise.
DEFAULT_WAREHOUSE_PATH = "results/warehouse.sqlite"


class Warehouse:
    """A queryable index over every ingested sweep run (see module docstring)."""

    def __init__(self, path: Path | str = DEFAULT_WAREHOUSE_PATH) -> None:
        """Address a warehouse by its SQLite file path (created lazily on use)."""
        self.path = Path(path)

    @contextlib.contextmanager
    def _connection(self) -> Iterator[sqlite3.Connection]:
        conn = connect(self.path)
        try:
            yield conn
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    # write side
    # ------------------------------------------------------------------ #
    def ingest(self, *paths: Path | str, source: str | None = None) -> IngestReport:
        """Ingest every artifact found under each path; returns the merged report."""
        report = IngestReport()
        with self._connection() as conn:
            for path in paths:
                report.merge(ingest_path(conn, path, source=source))
        return report

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #
    def runs(
        self,
        scenario: str | None = None,
        version: str | None = None,
        source: str | None = None,
        since: float | None = None,
        until: float | None = None,
        where: Sequence[ParamFilter] = (),
    ) -> list[RunInfo]:
        """Runs matching the filters, oldest ingested first."""
        with self._connection() as conn:
            return select_runs(
                conn, scenario=scenario, version=version, source=source,
                since=since, until=until, where=where,
            )

    def trials(
        self,
        run_ids: Sequence[int] | None = None,
        scenario: str | None = None,
        where: Sequence[ParamFilter] = (),
        limit: int | None = None,
    ) -> list[TrialRow]:
        """Trial records matching the filters, in (run, trial-index) order."""
        with self._connection() as conn:
            return select_trials(
                conn, run_ids=run_ids, scenario=scenario, where=where, limit=limit
            )

    def metric_names(self, run_id: int) -> list[str]:
        """The numeric metric columns recorded for one run."""
        with self._connection() as conn:
            return metric_names(conn, run_id)

    def resolve(self, reference: str | int, scenario: str | None = None) -> RunInfo:
        """Resolve a run reference (id, ``latest`` or ``prev``) to its run.

        Raises :class:`LookupError` with an actionable message when nothing
        matches — the CLI surfaces it verbatim.
        """
        if isinstance(reference, str) and reference.lower() in ("latest", "prev"):
            candidates = self.runs(scenario=scenario)
            offset = 1 if reference.lower() == "latest" else 2
            if len(candidates) < offset:
                scope = f" for scenario {scenario!r}" if scenario else ""
                raise LookupError(
                    f"no {reference.lower()!r} run{scope}: the warehouse holds "
                    f"{len(candidates)} matching run(s)"
                )
            return candidates[-offset]
        try:
            run_id = int(reference)
        except (TypeError, ValueError):
            raise LookupError(
                f"run reference {reference!r} is neither an id nor 'latest'/'prev'"
            ) from None
        for run in self.runs(scenario=scenario):
            if run.run_id == run_id:
                return run
        scope = f" for scenario {scenario!r}" if scenario else ""
        raise LookupError(f"no run with id {run_id}{scope} in {self.path}")

    def compare(
        self,
        run_a: RunInfo | str | int,
        run_b: RunInfo | str | int,
        metrics: list[str] | None = None,
        by: str | None = None,
        threshold: float = DEFAULT_THRESHOLD,
        higher_is_better: bool = False,
        scenario: str | None = None,
    ) -> ComparisonReport:
        """Diff two runs' metric values (see :func:`repro.warehouse.compare.compare_runs`)."""
        if not isinstance(run_a, RunInfo):
            run_a = self.resolve(run_a, scenario=scenario)
        if not isinstance(run_b, RunInfo):
            run_b = self.resolve(run_b, scenario=scenario)
        with self._connection() as conn:
            return compare_runs(
                conn, run_a, run_b, metrics=metrics, by=by,
                threshold=threshold, higher_is_better=higher_is_better,
            )

    def counts(self) -> dict[str, int]:
        """Row counts per table — the idempotency tests' measuring stick."""
        with self._connection() as conn:
            return {
                table: conn.execute(f"SELECT COUNT(*) AS n FROM {table}").fetchone()["n"]
                for table in ("runs", "trials", "params", "metrics")
            }
