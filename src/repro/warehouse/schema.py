"""SQLite schema of the result warehouse (versioned, crash-safe).

The warehouse is one SQLite file holding a normalized index over every
ingested run:

* ``warehouse_meta`` — key/value metadata, most importantly
  ``schema_version``.  Opening a database whose version differs from
  :data:`SCHEMA_VERSION` raises :class:`SchemaVersionError` (the documented
  error for readers built against a different warehouse layout — delete or
  re-ingest the file rather than guessing at its tables);
* ``runs`` — one row per ingested artifact source (a ``ResultStore`` output
  directory, a sweep-service per-job directory, or one scenario of a trial
  cache), identified by ``source_path`` and fingerprinted by ``run_key``
  (a content hash — the idempotency anchor re-ingestion checks first);
* ``trials`` — one row per trial record, carrying the verbatim record JSON
  plus the identity columns (``trial_index``, ``replicate``, ``seed``) and,
  for cache-sourced trials, the cache file's content-address key;
* ``params`` / ``metrics`` — the record's columns unpivoted to
  ``(trial_id, name, kind, value_num, value_text)`` rows so SQL can filter
  on parameter ranges and aggregate metric values without parsing JSON.

Crash safety follows the repository's artifact conventions by construction:
every ingest runs inside one SQLite transaction (``BEGIN IMMEDIATE`` …
``COMMIT``), and SQLite's rollback journal guarantees a reader never observes
a half-ingested run — the transactional equivalent of the temp-file +
``os.replace`` contract the JSONL/CSV artifacts use.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

__all__ = ["SCHEMA_VERSION", "SchemaVersionError", "connect", "ensure_schema"]

#: Version of the table layout below.  Bump on any incompatible change; old
#: warehouse files then fail loudly with :class:`SchemaVersionError` instead
#: of answering queries from tables with different semantics.
SCHEMA_VERSION = 1

_TABLES = """
CREATE TABLE warehouse_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE runs (
    run_id           INTEGER PRIMARY KEY,
    run_key          TEXT NOT NULL,
    source           TEXT NOT NULL,
    source_path      TEXT NOT NULL UNIQUE,
    scenario         TEXT NOT NULL,
    scenario_version TEXT,
    ingested_at      REAL NOT NULL,
    num_trials       INTEGER NOT NULL,
    spec_json        TEXT,
    stats_json       TEXT
);
CREATE INDEX runs_scenario ON runs(scenario);

CREATE TABLE trials (
    trial_id    INTEGER PRIMARY KEY,
    run_id      INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    trial_key   TEXT,
    trial_index INTEGER,
    replicate   INTEGER,
    seed        INTEGER,
    record_json TEXT NOT NULL
);
CREATE INDEX trials_run ON trials(run_id);
CREATE UNIQUE INDEX trials_run_key ON trials(run_id, trial_key)
    WHERE trial_key IS NOT NULL;

CREATE TABLE params (
    trial_id   INTEGER NOT NULL REFERENCES trials(trial_id) ON DELETE CASCADE,
    name       TEXT NOT NULL,
    kind       TEXT NOT NULL,
    value_num  REAL,
    value_text TEXT
);
CREATE INDEX params_trial ON params(trial_id);
CREATE INDEX params_name ON params(name, value_num);

CREATE TABLE metrics (
    trial_id   INTEGER NOT NULL REFERENCES trials(trial_id) ON DELETE CASCADE,
    name       TEXT NOT NULL,
    kind       TEXT NOT NULL,
    value_num  REAL,
    value_text TEXT
);
CREATE INDEX metrics_trial ON metrics(trial_id);
CREATE INDEX metrics_name ON metrics(name, value_num);
"""


class SchemaVersionError(RuntimeError):
    """The warehouse file was written with an incompatible schema version.

    Raised on open (never mid-query), naming both versions.  The remedy is to
    re-ingest into a fresh file — ingestion is cheap and the source artifacts
    (results directories, caches) remain the ground truth.
    """

    def __init__(self, found: str, expected: int) -> None:
        """Build the actionable message from the found/expected versions."""
        super().__init__(
            f"warehouse schema version {found!r} does not match the supported "
            f"version {expected}; re-ingest into a fresh warehouse file "
            "(the source result directories and caches are unaffected)"
        )
        self.found = found
        self.expected = expected


def connect(path: Path | str) -> sqlite3.Connection:
    """Open (creating if needed) a warehouse database and validate its schema.

    The connection has foreign keys on (so deleting a run cascades through
    its trials/params/metrics) and autocommit semantics — writers open their
    own explicit ``BEGIN IMMEDIATE`` transactions so each ingest commits
    atomically.  Raises :class:`SchemaVersionError` on a version mismatch.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(path, isolation_level=None)
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA foreign_keys = ON")
    try:
        ensure_schema(conn)
    except BaseException:
        conn.close()
        raise
    return conn


def ensure_schema(conn: sqlite3.Connection) -> None:
    """Create the tables on a fresh database; verify the version otherwise."""
    row = conn.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' AND name = 'warehouse_meta'"
    ).fetchone()
    if row is None:
        conn.execute("BEGIN IMMEDIATE")
        try:
            # two connections can both see the table absent above and then
            # serialise on BEGIN IMMEDIATE — re-check under the write lock so
            # the loser verifies instead of re-creating (concurrent service
            # ingest threads open the same warehouse)
            row = conn.execute(
                "SELECT name FROM sqlite_master"
                " WHERE type = 'table' AND name = 'warehouse_meta'"
            ).fetchone()
            if row is not None:
                conn.execute("ROLLBACK")
            else:
                # statement-by-statement (executescript would COMMIT the
                # pending transaction first, defeating the all-or-nothing
                # creation)
                for statement in _TABLES.split(";"):
                    if statement.strip():
                        conn.execute(statement)
                conn.execute(
                    "INSERT INTO warehouse_meta (key, value)"
                    " VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                conn.execute("COMMIT")
                return
        except BaseException:
            conn.execute("ROLLBACK")
            raise
    found = conn.execute(
        "SELECT value FROM warehouse_meta WHERE key = 'schema_version'"
    ).fetchone()
    version = found["value"] if found is not None else "<missing>"
    if version != str(SCHEMA_VERSION):
        raise SchemaVersionError(version, SCHEMA_VERSION)
