"""Run-to-run metric comparison with regression highlighting.

:func:`compare_runs` diffs the metric values of two ingested runs — "this
week's SER curve against last week's", "lifetime across platforms between two
service deployments".  For each metric it averages the trials of each run,
either overall or grouped by a parameter axis (``by="snr_db"`` turns the diff
into a curve-vs-curve comparison point by point), aligns the groups, and
flags relative changes beyond a threshold as regressions or improvements.

Whether "up" is bad depends on the metric: symbol error rates and
normalized errors regress upward, lifetimes and delivery ratios regress
downward.  ``higher_is_better`` flips the polarity; the default treats higher
values as worse, which matches the error-style metrics that dominate the
registry.

Each side of a diff also carries the 95% confidence half-width on its mean
(Welford accumulation via :mod:`repro.analysis.intervals`), and a diff whose
delta exceeds the sum of the two half-widths is flagged *significant* — the
reader's guard against mistaking Monte-Carlo noise for a real change.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.intervals import OnlineMean
from repro.warehouse.query import RunInfo, metric_names, select_trials

__all__ = ["MetricDiff", "ComparisonReport", "compare_runs", "render_comparison"]

#: Relative change below which a diff is considered noise (default 10%).
DEFAULT_THRESHOLD = 0.10

#: Confidence level of the per-side interval half-widths.
CI_CONFIDENCE = 0.95


@dataclass(frozen=True)
class MetricDiff:
    """One aligned comparison cell: a metric at one group value, run A vs B."""

    metric: str
    by: str | None
    by_value: Any
    mean_a: float | None
    mean_b: float | None
    count_a: int
    count_b: int
    #: 95% half-width on each side's mean (``None`` below two trials).
    ci_a: float | None = None
    ci_b: float | None = None

    @property
    def significant(self) -> bool | None:
        """Whether the delta clears both sides' combined CI half-widths.

        ``None`` when either side is missing its mean or its interval (too
        few trials to judge); the naive half-width sum is conservative, which
        is the right bias for a regression gate.
        """
        if self.mean_a is None or self.mean_b is None:
            return None
        if self.ci_a is None or self.ci_b is None:
            return None
        return abs(self.mean_b - self.mean_a) > self.ci_a + self.ci_b

    @property
    def delta(self) -> float | None:
        """``mean_b - mean_a`` (``None`` when either side is missing)."""
        if self.mean_a is None or self.mean_b is None:
            return None
        return self.mean_b - self.mean_a

    @property
    def relative_change(self) -> float | None:
        """Delta relative to run A's magnitude (``None`` if undefined).

        A zero baseline with a nonzero new value reads as infinite change;
        both zero reads as no change.
        """
        if self.mean_a is None or self.mean_b is None:
            return None
        if self.mean_a == 0.0:
            return 0.0 if self.mean_b == 0.0 else float("inf")
        return (self.mean_b - self.mean_a) / abs(self.mean_a)

    def classify(self, threshold: float, higher_is_better: bool) -> str:
        """``'regression'``, ``'improvement'``, ``''`` (within threshold),
        or ``'only-a'``/``'only-b'`` for groups present in one run only."""
        if self.mean_a is None:
            return "only-b"
        if self.mean_b is None:
            return "only-a"
        change = self.relative_change
        if change is None or abs(change) <= threshold:
            return ""
        worse = change < 0 if higher_is_better else change > 0
        return "regression" if worse else "improvement"


@dataclass
class ComparisonReport:
    """The full diff between two runs, plus the classification policy."""

    run_a: RunInfo
    run_b: RunInfo
    threshold: float
    higher_is_better: bool
    diffs: list[MetricDiff] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDiff]:
        """The diffs classified as regressions under this report's policy."""
        return [
            diff for diff in self.diffs
            if diff.classify(self.threshold, self.higher_is_better) == "regression"
        ]

    def to_dict(self) -> dict[str, Any]:
        """The report as a JSON-ready dict (CLI ``--format json``)."""
        return {
            "run_a": self.run_a.to_dict(),
            "run_b": self.run_b.to_dict(),
            "threshold": self.threshold,
            "higher_is_better": self.higher_is_better,
            "diffs": [
                {
                    "metric": diff.metric,
                    "by": diff.by,
                    "by_value": diff.by_value,
                    "mean_a": diff.mean_a,
                    "mean_b": diff.mean_b,
                    "count_a": diff.count_a,
                    "count_b": diff.count_b,
                    "ci_a": diff.ci_a,
                    "ci_b": diff.ci_b,
                    "significant": diff.significant,
                    "delta": diff.delta,
                    "relative_change": _finite_or_none(diff.relative_change),
                    "classification": diff.classify(self.threshold, self.higher_is_better),
                }
                for diff in self.diffs
            ],
            "num_regressions": len(self.regressions),
        }


def _finite_or_none(value: float | None) -> float | None:
    """JSON-safe float: strict parsers reject the ``Infinity`` literal."""
    if value is None or value != value or value in (float("inf"), float("-inf")):
        return None
    return value


def _grouped_means(
    conn: sqlite3.Connection, run_id: int, metric: str, by: str | None
) -> dict[Any, tuple[float, int, float | None]]:
    """``{group: (mean, count, ci half-width)}`` of one metric over one run.

    With ``by=None`` everything lands in a single ``None`` group.  Trials
    without the metric (or the group axis) are skipped, so scenarios whose
    metric sets differ per parameter still compare cleanly; NaN values (an
    undefined measurement, e.g. the delivery ratio of a zero-packet trial)
    are likewise skipped rather than poisoning the group mean.  The
    half-width is the 95% normal interval on the mean (``None`` below two
    trials).
    """
    accumulators: dict[Any, OnlineMean] = {}
    for trial in select_trials(conn, run_ids=(run_id,)):
        value = trial.record.get(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if value != value:
            continue
        group = trial.record.get(by) if by is not None else None
        if by is not None and group is None:
            continue
        accumulators.setdefault(group, OnlineMean()).add(float(value))
    result: dict[Any, tuple[float, int, float | None]] = {}
    for group, acc in accumulators.items():
        interval = acc.interval(CI_CONFIDENCE)
        result[group] = (
            acc.mean,
            acc.count,
            interval.half_width if interval is not None else None,
        )
    return result


def compare_runs(
    conn: sqlite3.Connection,
    run_a: RunInfo,
    run_b: RunInfo,
    metrics: list[str] | None = None,
    by: str | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    higher_is_better: bool = False,
) -> ComparisonReport:
    """Diff two runs' metrics (see the module docstring for semantics).

    ``metrics=None`` compares every numeric metric the runs share; an
    explicit list lets the caller narrow to one curve.  Group values are
    aligned by equality; groups present in only one run are kept and
    classified ``only-a``/``only-b`` rather than silently dropped.
    """
    if metrics is None:
        shared = set(metric_names(conn, run_a.run_id)) & set(
            metric_names(conn, run_b.run_id)
        )
        metrics = sorted(shared)
    report = ComparisonReport(
        run_a=run_a, run_b=run_b, threshold=threshold, higher_is_better=higher_is_better
    )
    for metric in metrics:
        means_a = _grouped_means(conn, run_a.run_id, metric, by)
        means_b = _grouped_means(conn, run_b.run_id, metric, by)
        groups = sorted(
            set(means_a) | set(means_b), key=lambda value: (value is None, str(value))
        )
        for group in groups:
            mean_a, count_a, ci_a = means_a.get(group, (None, 0, None))
            mean_b, count_b, ci_b = means_b.get(group, (None, 0, None))
            report.diffs.append(
                MetricDiff(
                    metric=metric,
                    by=by,
                    by_value=group,
                    mean_a=mean_a,
                    mean_b=mean_b,
                    count_a=count_a,
                    count_b=count_b,
                    ci_a=ci_a,
                    ci_b=ci_b,
                )
            )
    return report


def render_comparison(report: ComparisonReport) -> str:
    """The report as an aligned text table with a trailing regression summary."""
    from repro.utils.tables import format_table

    headers = ["Metric"]
    has_by = any(diff.by is not None for diff in report.diffs)
    if has_by:
        by_name = next(diff.by for diff in report.diffs if diff.by is not None)
        headers.append(by_name)
    headers += ["Run A mean", "±95% A", "Run B mean", "±95% B", "Delta", "Change",
                "Signif", "Flag"]

    rows = []
    for diff in report.diffs:
        row: list[Any] = [diff.metric]
        if has_by:
            row.append("" if diff.by_value is None else diff.by_value)
        change = diff.relative_change
        row += [
            "-" if diff.mean_a is None else f"{diff.mean_a:.6g}",
            "-" if diff.ci_a is None else f"{diff.ci_a:.3g}",
            "-" if diff.mean_b is None else f"{diff.mean_b:.6g}",
            "-" if diff.ci_b is None else f"{diff.ci_b:.3g}",
            "-" if diff.delta is None else f"{diff.delta:+.6g}",
            "-" if change is None else ("inf" if change == float("inf") else f"{change:+.1%}"),
            {True: "yes", False: "no", None: "-"}[diff.significant],
            diff.classify(report.threshold, report.higher_is_better),
        ]
        rows.append(row)

    title = (
        f"run {report.run_a.run_id} ({report.run_a.scenario}) vs "
        f"run {report.run_b.run_id} ({report.run_b.scenario})"
    )
    table = format_table(headers, rows, title=title)
    regressions = len(report.regressions)
    direction = "higher-is-better" if report.higher_is_better else "lower-is-better"
    summary = (
        f"{regressions} regression(s) beyond {report.threshold:.0%} "
        f"({direction}, {len(report.diffs)} comparison cells)"
    )
    return f"{table}\n{summary}"
