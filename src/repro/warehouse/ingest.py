"""Scan result artifacts into the warehouse — incremental and idempotent.

Three artifact shapes are discovered by walking a path (see
:func:`discover`):

* **result-store directories** — any directory holding a ``results.jsonl``
  (written by :class:`repro.experiments.store.ResultStore`), with the
  sibling ``manifest.json`` supplying the spec and stats when present;
* **sweep-service job directories** — the same shape under a ``jobs/``
  parent (``<data-dir>/jobs/<job-id>/``); they ingest identically but are
  tagged ``source='service'`` so queries can tell daemon runs from direct
  sweeps;
* **trial caches** — the two-level content-addressed fan-out of
  :class:`repro.experiments.cache.ResultCache`
  (``<cache>/<scenario>/<key[:2]>/<key>.json``).  Each *scenario* directory
  becomes one run whose trials are keyed by their cache content address.

Idempotency rests on content hashes, never on timestamps:

* a result directory's ``run_key`` is the SHA-256 of its ``results.jsonl``
  and ``manifest.json`` bytes — re-ingesting an unchanged directory matches
  the stored key and inserts **zero** rows; a directory whose contents
  changed (a re-run sweep) is replaced wholesale under the same run id;
* a cache scenario's ``run_key`` hashes the sorted set of cached trial keys
  — new cache entries are added incrementally (``INSERT``-if-absent on the
  per-run unique trial key), existing ones are never touched;
* quarantined ``*.corrupt`` files — and any ``*.json`` that fails to parse
  as a well-formed cache record — are *skipped and counted*
  (:attr:`IngestReport.quarantined_skipped`), mirroring the cache layer's
  own never-trust-a-corrupt-file contract.

Every ingest runs in one ``BEGIN IMMEDIATE`` transaction per run, so a crash
mid-ingest leaves the previous complete state (the SQLite analogue of the
repository's atomic temp-file + ``os.replace`` convention), and feeds the
telemetry metrics registry (``warehouse.runs_ingested``,
``warehouse.trials_ingested``, ``warehouse.quarantined_skipped``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import re
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.experiments.segments import iter_merged_records, segment_files
from repro.experiments.spec import stable_hash
from repro.telemetry.metrics import counter
from repro.telemetry.tracing import span

__all__ = ["IngestReport", "discover", "ingest_path", "param_names_for"]

logger = logging.getLogger(__name__)

_RUNS_INGESTED = counter("warehouse.runs_ingested")
_TRIALS_INGESTED = counter("warehouse.trials_ingested")
_QUARANTINED_SKIPPED = counter("warehouse.quarantined_skipped")

#: Identity columns every tidy record carries (never params or metrics).
IDENTITY_COLUMNS = ("scenario", "trial_index", "replicate", "seed")

#: A cache record file name: the 40-hex-char content address.
_CACHE_FILE = re.compile(r"^[0-9a-f]{40}\.json$")


@dataclass
class IngestReport:
    """What one ingest pass did (all counts cumulative over its sources)."""

    sources_scanned: int = 0
    runs_added: int = 0
    runs_replaced: int = 0
    runs_unchanged: int = 0
    trials_added: int = 0
    quarantined_skipped: int = 0

    def merge(self, other: "IngestReport") -> None:
        """Fold another report's counts into this one."""
        self.sources_scanned += other.sources_scanned
        self.runs_added += other.runs_added
        self.runs_replaced += other.runs_replaced
        self.runs_unchanged += other.runs_unchanged
        self.trials_added += other.trials_added
        self.quarantined_skipped += other.quarantined_skipped

    def to_dict(self) -> dict[str, int]:
        """The report as a plain dict (CLI/JSON output)."""
        return {
            "sources_scanned": self.sources_scanned,
            "runs_added": self.runs_added,
            "runs_replaced": self.runs_replaced,
            "runs_unchanged": self.runs_unchanged,
            "trials_added": self.trials_added,
            "quarantined_skipped": self.quarantined_skipped,
        }


# --------------------------------------------------------------------------- #
# discovery
# --------------------------------------------------------------------------- #
def _is_cache_scenario_dir(path: Path) -> bool:
    """Whether ``path`` looks like one scenario of a ``ResultCache`` fan-out."""
    for bucket in path.iterdir():
        if bucket.is_dir() and len(bucket.name) == 2:
            for file in bucket.iterdir():
                if _CACHE_FILE.match(file.name):
                    return True
    return False


def discover(root: Path | str) -> Iterator[tuple[str, Path]]:
    """Yield ``(kind, directory)`` pairs for every ingestible artifact under ``root``.

    ``kind`` is ``'store'`` (a results directory), ``'service'`` (a results
    directory under a ``jobs/`` parent) or ``'cache'`` (one scenario of a
    trial cache).  A directory holding only a ``segments/`` shard set (a
    segmented store that was never merged — e.g. a killed adaptive sweep) is
    discovered as a store too; its records are streamed through the segment
    merge at ingest time.  ``root`` may also point directly at a
    ``results.jsonl`` file or at a single artifact directory.
    """
    root = Path(root)
    if root.is_file():
        if root.suffix == ".jsonl":
            yield ("store", root.parent)
        return
    if not root.is_dir():
        raise FileNotFoundError(f"nothing to ingest at {root}")
    for path in sorted([root, *root.rglob("*")]):
        if not path.is_dir():
            continue
        if (path / "results.jsonl").is_file() or segment_files(path):
            kind = "service" if path.parent.name == "jobs" else "store"
            yield (kind, path)
        elif _is_cache_scenario_dir(path):
            yield ("cache", path)


# --------------------------------------------------------------------------- #
# record classification
# --------------------------------------------------------------------------- #
def param_names_for(scenario: str, spec: Mapping[str, Any] | None) -> frozenset[str]:
    """The parameter-column names of a run's records.

    Taken from the run's own manifest spec when available (grid + zipped +
    base keys); otherwise from the registered scenario's default spec; for an
    unknown scenario every non-identity column is treated as a metric.
    """
    if spec is not None:
        return frozenset(
            key
            for group in ("grid", "zipped", "base")
            for key in dict(spec.get(group) or {})
        )
    try:
        from repro.experiments.registry import get_scenario

        default = get_scenario(scenario).spec
        return frozenset([*default.grid, *default.zipped, *default.base])
    except KeyError:
        return frozenset()


def _value_columns(value: Any) -> tuple[str, float | None, str | None]:
    """Map one record value to its ``(kind, value_num, value_text)`` columns."""
    if value is None:
        return ("null", None, None)
    if isinstance(value, bool):
        return ("bool", float(value), None)
    if isinstance(value, (int, float)):
        return ("num", float(value), None)
    return ("text", None, str(value))


# --------------------------------------------------------------------------- #
# row insertion
# --------------------------------------------------------------------------- #
def _insert_trial(
    conn: sqlite3.Connection,
    run_id: int,
    record: Mapping[str, Any],
    param_names: frozenset[str],
    trial_key: str | None = None,
) -> None:
    cursor = conn.execute(
        "INSERT INTO trials (run_id, trial_key, trial_index, replicate, seed, record_json)"
        " VALUES (?, ?, ?, ?, ?, ?)",
        (
            run_id,
            trial_key,
            record.get("trial_index"),
            record.get("replicate"),
            record.get("seed"),
            json.dumps(record, sort_keys=True),
        ),
    )
    trial_id = cursor.lastrowid
    params = []
    metrics = []
    for name, value in record.items():
        if name in IDENTITY_COLUMNS:
            continue
        kind, value_num, value_text = _value_columns(value)
        row = (trial_id, name, kind, value_num, value_text)
        (params if name in param_names else metrics).append(row)
    insert = (
        "INSERT INTO {table} (trial_id, name, kind, value_num, value_text)"
        " VALUES (?, ?, ?, ?, ?)"
    )
    conn.executemany(insert.format(table="params"), params)
    conn.executemany(insert.format(table="metrics"), metrics)


def _scenario_version(scenario: str) -> str | None:
    """The registered version of ``scenario`` (``None`` when unregistered)."""
    try:
        from repro.experiments.registry import get_scenario

        return get_scenario(scenario).version
    except KeyError:
        return None


def _upsert_run(
    conn: sqlite3.Connection,
    *,
    run_key: str,
    source: str,
    source_path: Path,
    scenario: str,
    num_trials: int,
    spec_json: str | None,
    stats_json: str | None,
) -> tuple[int, str]:
    """Insert or refresh the ``runs`` row for ``source_path``.

    Returns ``(run_id, disposition)`` where disposition is ``'added'``,
    ``'replaced'`` (content changed — the caller must delete stale trials) or
    ``'unchanged'`` (content hash matched — the caller must insert nothing).
    """
    existing = conn.execute(
        "SELECT run_id, run_key FROM runs WHERE source_path = ?", (str(source_path),)
    ).fetchone()
    if existing is not None and existing["run_key"] == run_key:
        return existing["run_id"], "unchanged"
    columns = (
        run_key,
        source,
        scenario,
        _scenario_version(scenario),
        time.time(),
        num_trials,
        spec_json,
        stats_json,
    )
    if existing is None:
        cursor = conn.execute(
            "INSERT INTO runs (run_key, source, scenario, scenario_version,"
            " ingested_at, num_trials, spec_json, stats_json, source_path)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (*columns, str(source_path)),
        )
        return cursor.lastrowid, "added"  # type: ignore[return-value]
    conn.execute(
        "UPDATE runs SET run_key = ?, source = ?, scenario = ?, scenario_version = ?,"
        " ingested_at = ?, num_trials = ?, spec_json = ?, stats_json = ?"
        " WHERE run_id = ?",
        (*columns, existing["run_id"]),
    )
    return existing["run_id"], "replaced"


# --------------------------------------------------------------------------- #
# per-source ingestion
# --------------------------------------------------------------------------- #
def _file_digest(*paths: Path) -> str:
    digest = hashlib.sha256()
    for path in paths:
        digest.update(path.read_bytes())
    return digest.hexdigest()[:40]


def _ingest_store_dir(
    conn: sqlite3.Connection, directory: Path, source: str, report: IngestReport
) -> None:
    """Ingest one ``ResultStore`` output directory as one run.

    A directory without a merged ``results.jsonl`` but with a ``segments/``
    shard set (an unmerged segmented store) ingests the same way: its
    records stream through the deduplicating segment merge, and its run key
    hashes the segment files instead.
    """
    results_path = directory / "results.jsonl"
    manifest_path = directory / "manifest.json"
    hash_inputs = (
        [results_path] if results_path.is_file() else segment_files(directory)
    )
    spec: Mapping[str, Any] | None = None
    stats: Mapping[str, Any] | None = None
    if manifest_path.is_file():
        hash_inputs.append(manifest_path)
        manifest = json.loads(manifest_path.read_text())
        spec = manifest.get("spec") or None
        stats = manifest.get("stats") or None
    run_key = _file_digest(*hash_inputs)

    records: list[dict[str, Any]] = []
    if results_path.is_file():
        with results_path.open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    else:
        records.extend(iter_merged_records(directory))
    scenario = (
        str(spec["scenario"]) if spec and "scenario" in spec
        else str(records[0].get("scenario", "<unknown>")) if records
        else "<unknown>"
    )
    param_names = param_names_for(scenario, spec)

    run_id, disposition = _upsert_run(
        conn,
        run_key=run_key,
        source=source,
        source_path=directory.resolve(),
        scenario=scenario,
        num_trials=len(records),
        spec_json=json.dumps(spec, sort_keys=True) if spec is not None else None,
        stats_json=json.dumps(stats, sort_keys=True) if stats is not None else None,
    )
    if disposition == "unchanged":
        report.runs_unchanged += 1
        return
    if disposition == "replaced":
        conn.execute("DELETE FROM trials WHERE run_id = ?", (run_id,))
        report.runs_replaced += 1
    else:
        report.runs_added += 1
    for record in records:
        _insert_trial(conn, run_id, record, param_names)
    report.trials_added += len(records)
    _RUNS_INGESTED.inc()
    _TRIALS_INGESTED.inc(len(records))
    logger.info("warehouse: %s run %d from %s (%d trials)",
                disposition, run_id, directory, len(records))


def _ingest_cache_dir(
    conn: sqlite3.Connection, directory: Path, report: IngestReport
) -> None:
    """Ingest one cache *scenario* directory as one incrementally-grown run."""
    scenario = directory.name
    entries: list[Path] = []
    quarantined = 0
    for bucket in sorted(directory.iterdir()):
        if not bucket.is_dir():
            continue
        for file in sorted(bucket.iterdir()):
            if file.suffix == ".corrupt":
                quarantined += 1
            elif _CACHE_FILE.match(file.name):
                entries.append(file)
    report.quarantined_skipped += quarantined
    _QUARANTINED_SKIPPED.inc(quarantined)

    run_key = stable_hash(sorted(entry.stem for entry in entries), length=40)
    run_id, disposition = _upsert_run(
        conn,
        run_key=run_key,
        source="cache",
        source_path=directory.resolve(),
        scenario=scenario,
        num_trials=len(entries),
        spec_json=None,
        stats_json=None,
    )
    if disposition == "unchanged":
        report.runs_unchanged += 1
        return
    # incremental, never destructive: cache runs only grow, so existing trial
    # keys are kept and only the new content addresses insert
    report.runs_added += 1 if disposition == "added" else 0
    report.runs_replaced += 1 if disposition == "replaced" else 0
    known = {
        row["trial_key"]
        for row in conn.execute(
            "SELECT trial_key FROM trials WHERE run_id = ?", (run_id,)
        )
    }
    param_names = param_names_for(scenario, None)
    added = 0
    for entry in entries:
        if entry.stem in known:
            continue
        try:
            payload = json.loads(entry.read_text())
            record = payload["record"]
            if not isinstance(record, dict):
                raise TypeError("record is not an object")
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            # not-yet-quarantined corruption: skip it exactly like the cache
            # layer would (it becomes a miss there, a non-row here)
            report.quarantined_skipped += 1
            _QUARANTINED_SKIPPED.inc()
            continue
        _insert_trial(conn, run_id, record, param_names, trial_key=entry.stem)
        added += 1
    report.trials_added += added
    _RUNS_INGESTED.inc()
    _TRIALS_INGESTED.inc(added)
    logger.info("warehouse: %s cache run %d from %s (%d new trials)",
                disposition, run_id, directory, added)


def ingest_path(
    conn: sqlite3.Connection, path: Path | str, source: str | None = None
) -> IngestReport:
    """Discover and ingest every artifact under ``path`` (one transaction each).

    ``source`` overrides the discovered source tag (the sweep service passes
    ``'service'`` for its per-job directories).  Returns the cumulative
    :class:`IngestReport`; an empty directory — e.g. a cache that has never
    stored a trial — is a clean no-op, not an error.
    """
    report = IngestReport()
    with span("warehouse.ingest", path=str(path)):
        for kind, directory in discover(path):
            report.sources_scanned += 1
            conn.execute("BEGIN IMMEDIATE")
            try:
                if kind == "cache":
                    _ingest_cache_dir(conn, directory, report)
                else:
                    _ingest_store_dir(conn, directory, source or kind, report)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
    return report
