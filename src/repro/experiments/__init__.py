"""Experiment orchestration: declarative sweeps, parallel execution, caching.

The subsystem splits an experiment into four orthogonal pieces:

* :mod:`repro.experiments.spec` — *what* to run: :class:`SweepSpec` with grid
  and zipped parameter axes and a deterministic :class:`SeedPolicy`;
* :mod:`repro.experiments.registry` — *which code* runs each point: named
  :class:`Scenario` objects wrapping the repro layers (five built-ins);
* :mod:`repro.experiments.runner` — *how* it runs: :func:`run_sweep` with a
  multiprocessing pool, serial fallback and per-trial result caching;
* :mod:`repro.experiments.cache` / :mod:`repro.experiments.store` — *where*
  results live: a content-addressed trial cache plus tidy JSONL/CSV outputs.

Quick start::

    from repro.experiments import get_scenario, run_sweep, ResultCache

    spec = get_scenario("fixedpoint-bitwidth").spec.with_axis("word_length", (6, 8))
    result = run_sweep(spec, jobs=4, cache=ResultCache(".repro_cache"))
    result.group_mean(by="word_length", metric="normalized_error")
"""

from repro.experiments.adaptive import (
    AdaptiveConfig,
    AdaptivePointSummary,
    AdaptiveSweepResult,
    run_adaptive_sweep,
)
from repro.experiments.cache import CacheStats, ResultCache, code_version_tag, trial_key
from repro.experiments.registry import (
    Scenario,
    get_scenario,
    list_scenarios,
    register,
    scenario_names,
)
from repro.experiments.runner import (
    SweepResult,
    SweepStats,
    execute_trials,
    run_sweep,
)
from repro.experiments.segments import (
    SegmentedResultStore,
    iter_merged_records,
    run_fingerprint,
    segment_files,
)
from repro.experiments.spec import SeedPolicy, SweepSpec, TrialPoint, stable_hash
from repro.experiments.store import ResultStore, iter_jsonl, read_jsonl, write_jsonl

__all__ = [
    "SweepSpec",
    "SeedPolicy",
    "TrialPoint",
    "stable_hash",
    "Scenario",
    "register",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "run_sweep",
    "execute_trials",
    "SweepResult",
    "SweepStats",
    "run_adaptive_sweep",
    "AdaptiveConfig",
    "AdaptivePointSummary",
    "AdaptiveSweepResult",
    "ResultCache",
    "CacheStats",
    "trial_key",
    "code_version_tag",
    "ResultStore",
    "SegmentedResultStore",
    "iter_merged_records",
    "run_fingerprint",
    "segment_files",
    "write_jsonl",
    "read_jsonl",
    "iter_jsonl",
]
