"""Content-addressed on-disk cache for trial results.

Each trial's identity is the stable hash of (scenario name + version, trial
parameters, trial seed, code version tag) — nothing about the sweep it was
part of — so a resumed sweep, a re-run, or a *larger* sweep that includes
previously-computed points all hit the cache for the trials they share.

Records are stored one-JSON-file-per-trial under a two-level fan-out
(``<scenario>/<key[:2]>/<key>.json``) so directories stay small.

**Concurrency contract** (the sweep service multiplexes many concurrent
sweeps — threads and worker processes — over one shared cache):

* *writes are atomic, last-write-wins*: :meth:`ResultCache.put` goes through
  a same-directory temp file + :func:`os.replace`, so a reader never observes
  a torn record and a killed writer (even ``kill -9``) leaves at most an
  orphaned ``*.tmp`` file, never a corrupt ``*.json``.  Two writers racing on
  one key both publish complete records; because keys are content addresses
  of deterministic trials, the two payloads are identical and the race is
  harmless;
* *corrupt files are quarantined, never trusted*: a record that is unreadable
  or malformed (not valid JSON, or valid JSON without a well-formed
  ``"record"`` object — e.g. external tampering or a torn write by a
  pre-atomic version of this code) is renamed to ``<key>.corrupt`` on first
  contact and reported as a miss, so :meth:`ResultCache.get`,
  :meth:`ResultCache.contains` and :meth:`ResultCache.count` can never
  disagree about what is cached and the next run simply re-executes that
  trial;
* *per-instance stats are advisory*: :class:`CacheStats` counters are plain
  attribute increments (GIL-atomic but not cross-thread-exact under heavy
  contention); correctness never depends on them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import repro

from repro.experiments.spec import canonical_json, stable_hash
from repro.telemetry.metrics import counter
from repro.utils.atomic import atomic_write_text

__all__ = ["ResultCache", "CacheStats", "trial_key", "code_version_tag"]

# process-wide telemetry counters (every ResultCache instance feeds them; the
# per-instance CacheStats below stay the precise per-cache view)
_HITS = counter("cache.hits")
_MISSES = counter("cache.misses")
_WRITES = counter("cache.writes")
_QUARANTINED = counter("cache.quarantined")


def code_version_tag() -> str:
    """The tag folded into every cache key; bump ``repro.__version__`` to
    invalidate all cached results after a behaviour-changing code change."""
    return f"repro-{repro.__version__}"


def trial_key(
    scenario: str,
    scenario_version: str,
    params: Mapping[str, Any],
    seed: int,
    code_tag: str | None = None,
) -> str:
    """Stable content address of one trial result."""
    return stable_hash(
        {
            "scenario": scenario,
            "scenario_version": scenario_version,
            "params": dict(params),
            "seed": int(seed),
            "code": code_tag if code_tag is not None else code_version_tag(),
        },
        length=40,
    )


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _CorruptRecord(Exception):
    """Internal: the file exists but does not hold a well-formed record."""


@dataclass
class ResultCache:
    """A content-addressed store of trial records under ``cache_dir``."""

    cache_dir: Path | str
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.cache_dir = Path(self.cache_dir)

    def _path(self, scenario: str, key: str) -> Path:
        return Path(self.cache_dir) / scenario / key[:2] / f"{key}.json"

    def _load(self, path: Path) -> dict[str, Any]:
        """Read and validate one record file.

        Raises :class:`FileNotFoundError` for a genuine miss and
        :class:`_CorruptRecord` for a file that exists but cannot be trusted
        (invalid JSON, or a payload without a dict-valued ``"record"``).
        """
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise _CorruptRecord(f"invalid JSON: {error}") from None
        if not isinstance(payload, dict) or not isinstance(payload.get("record"), dict):
            raise _CorruptRecord("payload is not an object with a 'record' object")
        return payload["record"]

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt file out of the ``*.json`` namespace (best effort).

        The rename is atomic, so concurrent readers tripping over the same
        bad file either quarantine it themselves or find it already gone —
        both end up reporting a miss.
        """
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except FileNotFoundError:
            pass  # another reader quarantined it first
        self.stats.quarantined += 1
        _QUARANTINED.inc()

    def get(self, scenario: str, key: str) -> dict[str, Any] | None:
        """The cached record for ``key``, or ``None`` (counts a hit/miss).

        A malformed file is quarantined (renamed to ``<key>.corrupt``) and
        reported as a miss, so the caller re-executes the trial and the next
        :meth:`put` rewrites a clean record.
        """
        path = self._path(scenario, key)
        try:
            record = self._load(path)
        except FileNotFoundError:
            self.stats.misses += 1
            _MISSES.inc()
            return None
        except _CorruptRecord:
            self._quarantine(path)
            self.stats.misses += 1
            _MISSES.inc()
            return None
        self.stats.hits += 1
        _HITS.inc()
        return record

    def put(self, scenario: str, key: str, record: Mapping[str, Any]) -> Path:
        """Atomically persist ``record`` under ``key`` and return its path.

        Safe under concurrent writers (see the module docstring): each write
        publishes a complete file via temp-file + ``os.replace``; racing
        writers of the same content-addressed key are last-write-wins over
        identical payloads.
        """
        path = self._path(scenario, key)
        atomic_write_text(path, canonical_json({"key": key, "record": dict(record)}))
        self.stats.writes += 1
        _WRITES.inc()
        return path

    def contains(self, scenario: str, key: str) -> bool:
        """Whether a *valid* record for ``key`` is cached (no hit/miss counts).

        Validates the payload the same way :meth:`get` does — and quarantines
        corrupt files the same way — so ``contains()`` never claims a record
        that ``get()`` would treat as a miss.
        """
        path = self._path(scenario, key)
        try:
            self._load(path)
        except FileNotFoundError:
            return False
        except _CorruptRecord:
            self._quarantine(path)
            return False
        return True

    def count(self, scenario: str | None = None) -> int:
        """Number of cached records (for one scenario or the whole cache).

        Counts ``*.json`` files; quarantined ``*.corrupt`` files and in-flight
        ``*.tmp`` files are excluded by construction.
        """
        root = Path(self.cache_dir) if scenario is None else Path(self.cache_dir) / scenario
        if not root.exists():
            return 0
        return sum(1 for _ in root.rglob("*.json"))
