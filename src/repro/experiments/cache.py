"""Content-addressed on-disk cache for trial results.

Each trial's identity is the stable hash of (scenario name + version, trial
parameters, trial seed, code version tag) — nothing about the sweep it was
part of — so a resumed sweep, a re-run, or a *larger* sweep that includes
previously-computed points all hit the cache for the trials they share.

Records are stored one-JSON-file-per-trial under a two-level fan-out
(``<scenario>/<key[:2]>/<key>.json``) so directories stay small, and writes
go through a same-directory temp file + :func:`os.replace` so an interrupted
run never leaves a truncated record behind (the next run simply re-executes
that trial).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import repro

from repro.experiments.spec import canonical_json, stable_hash
from repro.telemetry.metrics import counter

__all__ = ["ResultCache", "CacheStats", "trial_key", "code_version_tag"]

# process-wide telemetry counters (every ResultCache instance feeds them; the
# per-instance CacheStats below stay the precise per-cache view)
_HITS = counter("cache.hits")
_MISSES = counter("cache.misses")
_WRITES = counter("cache.writes")


def code_version_tag() -> str:
    """The tag folded into every cache key; bump ``repro.__version__`` to
    invalidate all cached results after a behaviour-changing code change."""
    return f"repro-{repro.__version__}"


def trial_key(
    scenario: str,
    scenario_version: str,
    params: Mapping[str, Any],
    seed: int,
    code_tag: str | None = None,
) -> str:
    """Stable content address of one trial result."""
    return stable_hash(
        {
            "scenario": scenario,
            "scenario_version": scenario_version,
            "params": dict(params),
            "seed": int(seed),
            "code": code_tag if code_tag is not None else code_version_tag(),
        },
        length=40,
    )


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """A content-addressed store of trial records under ``cache_dir``."""

    cache_dir: Path | str
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.cache_dir = Path(self.cache_dir)

    def _path(self, scenario: str, key: str) -> Path:
        return Path(self.cache_dir) / scenario / key[:2] / f"{key}.json"

    def get(self, scenario: str, key: str) -> dict[str, Any] | None:
        """The cached record for ``key``, or ``None`` (counts a hit/miss)."""
        path = self._path(scenario, key)
        try:
            payload = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            self.stats.misses += 1
            _MISSES.inc()
            return None
        self.stats.hits += 1
        _HITS.inc()
        return payload["record"]

    def put(self, scenario: str, key: str, record: Mapping[str, Any]) -> Path:
        """Atomically persist ``record`` under ``key`` and return its path."""
        path = self._path(scenario, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = canonical_json({"key": key, "record": dict(record)})
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self.stats.writes += 1
        _WRITES.inc()
        return path

    def contains(self, scenario: str, key: str) -> bool:
        """Whether ``key`` is cached (does not touch the hit/miss counters)."""
        return self._path(scenario, key).is_file()

    def count(self, scenario: str | None = None) -> int:
        """Number of cached records (for one scenario or the whole cache)."""
        root = Path(self.cache_dir) if scenario is None else Path(self.cache_dir) / scenario
        if not root.exists():
            return 0
        return sum(1 for _ in root.rglob("*.json"))
