"""Sharded result storage: append-only JSONL segments with a streaming merge.

A fixed-count sweep can hand :class:`~repro.experiments.store.ResultStore`
its full record list; a 10^7-trial adaptive sweep cannot.  This module is the
out-of-core half of the storage layer:

* **segments** — completed waves of records are appended as immutable
  ``segments/segment-NNNNNN[-label].jsonl`` files, each written atomically
  (same-directory temp + ``os.replace``), each internally sorted by
  ``trial_index``.  A writer killed mid-wave — including ``kill -9`` — leaves
  either a complete segment or no segment, never a torn one, so every record
  that reached disk is trustworthy;
* **streaming merge** — :meth:`SegmentedResultStore.merge` k-way-merges the
  segments by ``trial_index`` (a ``heapq.merge`` over lazy per-file readers)
  into the canonical ``results.jsonl`` / ``results.csv`` / ``manifest.json``
  triple that the rest of the stack (warehouse ingest, ``repro compare``,
  plots) already understands.  Peak memory is O(segments), never O(records);
* **resume-safe dedup** — a crashed-and-resumed sweep re-executes its last
  incomplete wave and may flush trials that an earlier segment already holds.
  Trials are deterministic, so duplicates are byte-identical; the merge keeps
  the first copy of each ``trial_index`` and *verifies* the equality, turning
  any nondeterminism into a loud error instead of silent corruption.

The merged artefacts are byte-identical to what a fixed-count
``ResultStore.write`` of the same realised records would produce — pinned by
the segment tests — so every downstream consumer works unchanged.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import re
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.analysis.export import write_csv
from repro.experiments.store import iter_jsonl, tidy_headers
from repro.telemetry.metrics import counter
from repro.utils.atomic import atomic_writer

__all__ = [
    "SegmentedResultStore",
    "iter_merged_records",
    "run_fingerprint",
    "segment_files",
]

_SEGMENTS_FLUSHED = counter("segments.flushed")
_SEGMENT_RECORDS = counter("segments.records_flushed")

#: A segment file name: zero-padded sequence number plus an optional label.
_SEGMENT_FILE = re.compile(r"^segment-(\d{6})(?:-[A-Za-z0-9_.-]+)?\.jsonl$")

#: Run-identity sidecar inside ``segments/`` (never matches ``_SEGMENT_FILE``).
_META_FILE = "run.json"


def run_fingerprint(**parts: Mapping[str, Any] | None) -> str:
    """A stable content hash identifying one sweep run's inputs.

    Segments are only mergeable when every one came from the *same* run —
    the same spec and (for adaptive sweeps) the same stopping rule, since
    those determine the ceiling indexing.  Callers hash the run's defining
    dicts (``run_fingerprint(spec=..., adaptive=...)``) and hand the digest
    to :class:`SegmentedResultStore` so a reused output directory is caught
    up front instead of corrupting the merge.
    """
    payload = json.dumps(
        {name: dict(part or {}) for name, part in parts.items()}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def segment_files(directory: Path | str) -> list[Path]:
    """The segment files under ``directory``'s ``segments/`` dir, in order."""
    segments_dir = Path(directory) / "segments"
    if not segments_dir.is_dir():
        return []
    return sorted(
        path for path in segments_dir.iterdir() if _SEGMENT_FILE.match(path.name)
    )


def _ordered_records(path: Path) -> Iterator[tuple[int, dict[str, Any]]]:
    """Yield ``(trial_index, record)`` pairs of one segment, lazily."""
    for record in iter_jsonl(path):
        yield (int(record.get("trial_index", 0)), record)


def iter_merged_records(directory: Path | str) -> Iterator[dict[str, Any]]:
    """Stream the deduplicated union of all segments in ``trial_index`` order.

    The k-way merge holds one record per segment in memory.  Duplicate trial
    indexes (a resumed sweep re-flushing its interrupted wave) must carry
    identical records — trials are deterministic — and collapse to one; a
    content mismatch raises ``ValueError`` rather than pick a winner silently.
    """
    streams = [_ordered_records(path) for path in segment_files(directory)]
    previous_index: int | None = None
    previous_record: dict[str, Any] | None = None
    for index, record in heapq.merge(*streams, key=lambda pair: pair[0]):
        if previous_index == index:
            if record != previous_record:
                raise ValueError(
                    f"segments disagree about trial_index {index}: "
                    "deterministic trials can never produce two different records"
                )
            continue
        previous_index, previous_record = index, record
        yield record


class SegmentedResultStore:
    """Append-only per-wave segments under ``output_dir`` plus their merge.

    Parameters
    ----------
    output_dir:
        The sweep's results directory; segments land in a ``segments/``
        subdirectory, the merged artefacts beside it.
    flush_trials:
        Advisory buffer size for callers that flush incrementally (the
        ``store=`` hook of :func:`~repro.experiments.runner.run_sweep` flushes
        a segment every this many completed trials).
    fingerprint:
        Optional run identity (see :func:`run_fingerprint`).  When given, it
        is recorded in ``segments/run.json`` before any segment is written;
        opening a directory whose surviving segments carry a *different*
        fingerprint raises ``ValueError`` — resuming the same run is safe,
        merging segments of two different sweeps never is.
    """

    def __init__(
        self,
        output_dir: Path | str,
        flush_trials: int = 4096,
        fingerprint: str | None = None,
    ) -> None:
        if flush_trials < 1:
            raise ValueError(f"flush_trials must be >= 1, got {flush_trials}")
        self.output_dir = Path(output_dir)
        self.flush_trials = flush_trials
        # resume-safe: continue numbering after any segments a previous
        # (possibly killed) run of the same output directory left behind
        existing = segment_files(self.output_dir)
        if fingerprint is not None:
            self._claim(fingerprint, bool(existing))
        self._sequence = (
            int(_SEGMENT_FILE.match(existing[-1].name).group(1)) + 1  # type: ignore[union-attr]
            if existing
            else 0
        )

    def _claim(self, fingerprint: str, has_segments: bool) -> None:
        """Record the run identity, refusing another run's leftover segments."""
        meta_path = self.segments_dir / _META_FILE
        recorded: str | None = None
        try:
            recorded = json.loads(meta_path.read_text()).get("fingerprint")
        except (OSError, ValueError):
            recorded = None
        if recorded == fingerprint:
            return
        if has_segments:
            raise ValueError(
                f"{self.segments_dir} holds segments from a different sweep "
                "(the spec or adaptive config changed); remove that directory "
                "or choose a fresh output directory"
            )
        # fresh directory (or stale sidecar with no data behind it): claim it
        # *before* the first segment so a killed run still identifies itself
        atomic_writer(
            meta_path,
            lambda handle: json.dump({"fingerprint": fingerprint}, handle),
        )

    @property
    def segments_dir(self) -> Path:
        """Where the segment files live."""
        return self.output_dir / "segments"

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(
        self, records: Iterable[Mapping[str, Any]], label: str | None = None
    ) -> Path | None:
        """Atomically write one new segment holding ``records``.

        Records are sorted by ``trial_index`` before writing (each segment
        must be internally ordered for the streaming merge); an empty batch
        writes nothing and returns ``None``.  The segment file appears
        complete or not at all — there is no partially-visible state.
        """
        batch = sorted(
            (dict(record) for record in records),
            key=lambda record: int(record.get("trial_index", 0)),
        )
        if not batch:
            return None
        name = f"segment-{self._sequence:06d}" + (f"-{label}" if label else "")
        self._sequence += 1
        path = self.segments_dir / f"{name}.jsonl"

        def _write(handle: Any) -> None:
            for record in batch:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

        written = atomic_writer(path, _write)
        _SEGMENTS_FLUSHED.inc()
        _SEGMENT_RECORDS.inc(len(batch))
        return written

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def segments(self) -> list[Path]:
        """The segment files written so far, in sequence order."""
        return segment_files(self.output_dir)

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Stream the merged, deduplicated records in canonical trial order."""
        return iter_merged_records(self.output_dir)

    def record_count(self) -> int:
        """Number of distinct records across all segments (streamed, O(1) memory)."""
        return sum(1 for _ in self.iter_records())

    # ------------------------------------------------------------------ #
    # merge
    # ------------------------------------------------------------------ #
    def merge(
        self,
        spec: Mapping[str, Any] | None = None,
        stats: Mapping[str, Any] | None = None,
        basename: str = "results",
    ) -> dict[str, Path]:
        """Merge every segment into the canonical store artefacts; return paths.

        Two streaming passes, each atomic:

        1. k-way merge all segments into ``<basename>.jsonl`` while collecting
           the header set (identity columns first, rest sorted — the
           :func:`~repro.experiments.store.tidy_headers` order);
        2. re-stream the merged JSONL into ``<basename>.csv``.

        With ``spec``/``stats`` given, ``manifest.json`` is written too, so a
        merged segmented store is indistinguishable from a
        :class:`~repro.experiments.store.ResultStore` output — warehouse
        ingest, ``repro compare`` and the plots consume it unchanged.
        """
        out = self.output_dir
        written: dict[str, Path] = {}
        keys: set[str] = set()

        def _write_jsonl(handle: Any) -> None:
            for record in self.iter_records():
                keys.update(record)
                handle.write(json.dumps(record, sort_keys=True) + "\n")

        jsonl_path = out / f"{basename}.jsonl"
        written["jsonl"] = atomic_writer(jsonl_path, _write_jsonl)
        headers = tidy_headers([dict.fromkeys(keys)]) if keys else []
        written["csv"] = write_csv(
            out / f"{basename}.csv",
            headers,
            (
                [record.get(column, "") for column in headers]
                for record in iter_jsonl(jsonl_path)
            ),
        )
        if spec is not None or stats is not None:
            manifest = {"spec": dict(spec or {}), "stats": dict(stats or {})}
            written["manifest"] = atomic_writer(
                out / "manifest.json",
                lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
            )
        return written
