"""Sequential-stopping sweeps: sample each point until its CI is tight enough.

A fixed-count sweep spends the same number of trials on every parameter
point, but Monte-Carlo error is wildly non-uniform across a sweep: at high
SNR a symbol-error-rate estimate converges in a handful of frames, while the
deep-noise points need orders of magnitude more.  :func:`run_adaptive_sweep`
grows a spec in *waves* of replicates and applies a per-point sequential
stopping rule — a point stops sampling once the Wilson (or Clopper-Pearson)
confidence interval on its designated binomial metric is tighter than the
requested half-width, or once it hits the hard trial ceiling.

Three invariants make adaptive runs interchangeable with fixed-count runs:

* **paired seeds, extended not re-drawn** — per-trial seeds come from the
  spec's :class:`~repro.experiments.spec.SeedPolicy`, which derives them from
  the replicate number alone (never the replicate *count*), so wave *k+1*
  extends exactly the random streams wave *k* drew from.  An adaptive run
  that realises ``n`` replicates of a point executes byte-for-byte the same
  trials as a fixed run with ``replicates=n``;
* **canonical ceiling indexing** — records carry
  ``trial_index = point_ordinal * max_trials + replicate``, the index the
  *ceiling* spec (``replicates=max_trials``) would assign, so an adaptive
  store merges/sorts/dedupes identically to the fixed-count run it is a
  prefix of;
* **cache-compatible trials** — each wave executes through the same
  :func:`~repro.experiments.runner.execute_trials` engine as ``run_sweep``,
  with the same content-addressed cache keys, so adaptive and fixed sweeps
  share cached results and a killed adaptive run resumes from cache.

Each completed wave is flushed to the optional
:class:`~repro.experiments.segments.SegmentedResultStore` (and chunked
within a wave at ``store.flush_trials``), so a ``kill -9`` loses at most the
in-flight chunk of one wave.  Telemetry: the run traces as
``sweep > adaptive.wave > sweep.cache_scan / sweep.execute > trial`` and
counts waves, early-stopped points and trials saved versus the ceiling.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.analysis.intervals import (
    BINOMIAL_METHODS,
    BinomialAccumulator,
    ConfidenceInterval,
)
from repro.experiments.registry import get_scenario
from repro.experiments.runner import (
    ExecutionOutcome,
    SweepResult,
    SweepStats,
    execute_trials,
)
from repro.experiments.spec import SweepSpec, TrialPoint
from repro.telemetry.metrics import counter, flatten_snapshot, registry, snapshot_delta
from repro.telemetry.progress import ProgressEvent, ProgressReporter
from repro.telemetry.tracing import current_tracer, span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.cache import ResultCache
    from repro.experiments.segments import SegmentedResultStore

__all__ = [
    "AdaptiveConfig",
    "AdaptivePointSummary",
    "AdaptiveSweepResult",
    "BINOMIAL_COUNT_KEYS",
    "run_adaptive_sweep",
]

logger = logging.getLogger(__name__)

_WAVES = counter("adaptive.waves")
_POINTS_STOPPED_EARLY = counter("adaptive.points_stopped_early")
_TRIALS_SAVED = counter("adaptive.trials_saved")

#: Metrics whose records carry exact binomial counts: metric name →
#: ``(successes_key, trials_key)``.  Count columns give the stopping rule
#: exact numerators/denominators; metrics not listed here fall back to
#: treating each record's metric value as a per-trial proportion.
BINOMIAL_COUNT_KEYS: Mapping[str, tuple[str, str]] = {
    "symbol_error_rate": ("symbol_errors", "symbols_sent"),
}


@dataclass(frozen=True)
class AdaptiveConfig:
    """The sequential stopping rule of one adaptive sweep.

    Parameters
    ----------
    metric:
        Record key of the binomial metric the rule gates on (a proportion in
        ``[0, 1]``, e.g. ``symbol_error_rate`` or a delivery ratio).
    ci_width:
        Target precision: a point stops once its interval half-width is
        ``<= ci_width``.
    max_trials:
        Hard per-point replicate ceiling — the adaptive run is a prefix of a
        fixed run with ``replicates=max_trials``.
    confidence:
        Interval confidence level.
    method:
        ``"wilson"`` (default) or ``"clopper-pearson"`` (exact/conservative).
    min_trials:
        Replicates every point runs before the rule may stop it (a 1-trial
        "converged" SER of 0.0 is noise, not convergence).
    wave_trials:
        Replicates each wave adds to every still-active point.
    successes_key / trials_key:
        Record keys holding the exact binomial counts behind ``metric``.
        Default: looked up in :data:`BINOMIAL_COUNT_KEYS`, else per-record
        proportions are accumulated with weight 1.
    """

    metric: str
    ci_width: float
    max_trials: int
    confidence: float = 0.95
    method: str = "wilson"
    min_trials: int = 4
    wave_trials: int = 8
    successes_key: str | None = None
    trials_key: str | None = None

    def __post_init__(self) -> None:
        if not self.metric:
            raise ValueError("metric must be a non-empty record key")
        if not 0.0 < self.ci_width < 1.0:
            raise ValueError(f"ci_width must be in (0, 1), got {self.ci_width}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.method not in BINOMIAL_METHODS:
            raise ValueError(
                f"unknown interval method {self.method!r}; "
                f"expected one of {', '.join(BINOMIAL_METHODS)}"
            )
        if self.min_trials < 1:
            raise ValueError(f"min_trials must be >= 1, got {self.min_trials}")
        if self.wave_trials < 1:
            raise ValueError(f"wave_trials must be >= 1, got {self.wave_trials}")
        if self.max_trials < self.min_trials:
            raise ValueError(
                f"max_trials ({self.max_trials}) must be >= "
                f"min_trials ({self.min_trials})"
            )
        if (self.successes_key is None) != (self.trials_key is None):
            raise ValueError("successes_key and trials_key must be given together")

    @property
    def count_keys(self) -> tuple[str, str] | None:
        """The resolved ``(successes_key, trials_key)`` pair, if any."""
        if self.successes_key is not None and self.trials_key is not None:
            return (self.successes_key, self.trials_key)
        return BINOMIAL_COUNT_KEYS.get(self.metric)

    def to_dict(self) -> dict[str, Any]:
        """The rule as a JSON-ready dict (manifest / service payloads)."""
        return {
            "metric": self.metric,
            "ci_width": self.ci_width,
            "max_trials": self.max_trials,
            "confidence": self.confidence,
            "method": self.method,
            "min_trials": self.min_trials,
            "wave_trials": self.wave_trials,
            "successes_key": self.successes_key,
            "trials_key": self.trials_key,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdaptiveConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys rejected)."""
        known = {
            "metric", "ci_width", "max_trials", "confidence", "method",
            "min_trials", "wave_trials", "successes_key", "trials_key",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown adaptive option(s): {', '.join(sorted(unknown))}")
        if "metric" not in data or "ci_width" not in data or "max_trials" not in data:
            raise ValueError("adaptive options require metric, ci_width and max_trials")
        kwargs: dict[str, Any] = {
            "metric": str(data["metric"]),
            "ci_width": float(data["ci_width"]),
            "max_trials": int(data["max_trials"]),
        }
        if "confidence" in data:
            kwargs["confidence"] = float(data["confidence"])
        if "method" in data:
            kwargs["method"] = str(data["method"])
        if "min_trials" in data:
            kwargs["min_trials"] = int(data["min_trials"])
        if "wave_trials" in data:
            kwargs["wave_trials"] = int(data["wave_trials"])
        if data.get("successes_key") is not None:
            kwargs["successes_key"] = str(data["successes_key"])
        if data.get("trials_key") is not None:
            kwargs["trials_key"] = str(data["trials_key"])
        return cls(**kwargs)


@dataclass(frozen=True)
class AdaptivePointSummary:
    """The stopping decision of one parameter point."""

    #: The point's position in the spec's canonical (grid × zip) order.
    ordinal: int
    #: The point's full parameter dict (base + grid + zipped values).
    params: Mapping[str, Any]
    #: Replicates realised (executed or cache-hit) before stopping.
    trials: int
    #: Interval on the gated metric over the realised replicates (``None``
    #: only if every record lacked the metric).
    interval: ConfidenceInterval | None
    #: ``True`` when the CI converged below ``max_trials`` replicates.
    stopped_early: bool
    #: Why sampling stopped: ``"converged"`` or ``"ceiling"``.
    reason: str

    def to_dict(self) -> dict[str, Any]:
        """The summary as a JSON-ready dict (manifest ``stats.adaptive.points``)."""
        return {
            "ordinal": self.ordinal,
            "params": dict(self.params),
            "trials": self.trials,
            "interval": self.interval.to_dict() if self.interval is not None else None,
            "stopped_early": self.stopped_early,
            "reason": self.reason,
        }


@dataclass
class AdaptiveSweepResult(SweepResult):
    """A :class:`~repro.experiments.runner.SweepResult` plus stopping evidence.

    Subclassing keeps every consumer of fixed-count results (the store, the
    service's records endpoint, ``group_mean``) working unchanged; the extra
    fields carry what the stopping rule decided, destined for the manifest's
    ``stats.adaptive`` block.
    """

    config: AdaptiveConfig | None = None
    points: list[AdaptivePointSummary] = field(default_factory=list)
    waves: int = 0

    @property
    def points_stopped_early(self) -> int:
        """How many points converged below the trial ceiling."""
        return sum(1 for point in self.points if point.stopped_early)

    @property
    def ceiling_trials(self) -> int:
        """Trials a fixed-count run at ``max_trials`` replicates would take."""
        if self.config is None:
            return 0
        return len(self.points) * self.config.max_trials

    def stats_payload(self) -> dict[str, Any]:
        """``stats`` for the manifest: SweepStats plus the ``adaptive`` block."""
        payload = self.stats.to_dict() if self.stats is not None else {}
        payload["adaptive"] = {
            "config": self.config.to_dict() if self.config is not None else None,
            "waves": self.waves,
            "points_total": len(self.points),
            "points_stopped_early": self.points_stopped_early,
            "ceiling_trials": self.ceiling_trials,
            "points": [point.to_dict() for point in self.points],
        }
        return payload


@dataclass
class _PointState:
    """Mutable per-point bookkeeping while the wave loop runs."""

    ordinal: int
    params: Mapping[str, Any]
    accumulator: BinomialAccumulator
    trials: int = 0
    metric_records: int = 0
    reason: str | None = None

    @property
    def active(self) -> bool:
        return self.reason is None


def _fold_record(
    state: _PointState, record: Mapping[str, Any], config: AdaptiveConfig
) -> None:
    """Fold one trial record into its point's binomial accumulator.

    Prefers the exact count columns when the record has them; falls back to
    the metric value as a per-trial proportion.  Records lacking both are
    counted as realised trials but contribute no interval evidence
    (heterogeneous records are documented-normal in the store layer).
    """
    state.trials += 1
    count_keys = config.count_keys
    if count_keys is not None:
        successes_key, trials_key = count_keys
        if successes_key in record and trials_key in record:
            trials = float(record[trials_key])
            if trials > 0:
                state.accumulator.add(float(record[successes_key]), trials)
                state.metric_records += 1
            return
    value = record.get(config.metric)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return
    proportion = float(value)
    if not math.isfinite(proportion) or not 0.0 <= proportion <= 1.0:
        raise ValueError(
            f"metric {config.metric!r} value {proportion!r} is not a proportion "
            "in [0, 1]; sequential stopping is defined on binomial metrics"
        )
    state.accumulator.add(proportion, 1.0)
    state.metric_records += 1


def run_adaptive_sweep(
    spec: SweepSpec,
    config: AdaptiveConfig,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    chunk_size: int | None = None,
    mp_context: multiprocessing.context.BaseContext | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
    progress_interval_s: float = 0.0,
    store: "SegmentedResultStore | None" = None,
) -> AdaptiveSweepResult:
    """Run ``spec`` with per-point sequential stopping; return all records.

    The spec's own ``replicates`` is ignored — sampling depth is the stopping
    rule's job: every point starts with ``config.min_trials`` replicates,
    then gains ``config.wave_trials`` per wave until its interval half-width
    on ``config.metric`` drops to ``config.ci_width`` or it reaches
    ``config.max_trials``.  Execution parameters (``jobs``, ``cache``,
    ``chunk_size``, ``mp_context``, ``progress``, ``store``) mean exactly
    what they mean for :func:`~repro.experiments.runner.run_sweep`; each
    wave batches all active points into one ``execute_trials`` call so pool
    workers stay saturated even when only a few points remain.
    """
    scenario = get_scenario(spec.scenario)
    # one TrialPoint per parameter point, in canonical (grid × zip) order;
    # its index is the point ordinal the ceiling indexing is built on
    point_trials = spec.with_seed(replicates=1).expand()
    states = [
        _PointState(
            ordinal=point.index,
            params=dict(point.params),
            accumulator=BinomialAccumulator(),
        )
        for point in point_trials
    ]
    ceiling = len(states) * config.max_trials
    started = time.perf_counter()
    tracer = current_tracer()
    telemetry_on = tracer is not None
    metrics_before = registry().snapshot() if telemetry_on else None
    logger.info(
        "adaptive sweep %s: %d points, ci_width=%g (%s, %g confidence), "
        "ceiling %d trials",
        scenario.name, len(states), config.ci_width, config.method,
        config.confidence, ceiling,
    )

    reporter = (
        ProgressReporter(progress, total=ceiling, min_interval_s=progress_interval_s)
        if progress is not None
        else None
    )

    flush_buffer: list[dict[str, Any]] = []

    def _flush_segment(label: str | None = None) -> None:
        if store is not None and flush_buffer:
            store.append(flush_buffer, label=label)
            flush_buffer.clear()

    def _on_record(record: dict[str, Any]) -> None:
        if store is not None:
            flush_buffer.append(record)
            if len(flush_buffer) >= store.flush_trials:
                _flush_segment()

    records: dict[int, dict[str, Any]] = {}
    executed = 0
    cache_hits = 0
    effective_jobs = 1
    waves = 0
    # the in-flight wave's outcome, mutated in place by execute_trials so a
    # trial raising mid-wave still leaves its partial counts visible to the
    # finally block; re-bound to a folded-empty instance after each wave
    wave_outcome = ExecutionOutcome()

    # try/finally mirrors run_sweep: a trial raising mid-wave still flushes
    # the records that completed and still delivers the terminal progress
    # heartbeat the sweep service polls for
    with span(
        "sweep",
        scenario=scenario.name,
        adaptive=True,
        points=len(states),
        ceiling_trials=ceiling,
    ):
        try:
            while any(state.active for state in states):
                active = [state for state in states if state.active]
                depth = min(
                    (state.trials for state in active), default=0
                )
                target = (
                    config.min_trials if depth < config.min_trials
                    else min(depth + config.wave_trials, config.max_trials)
                )
                wave_trials: list[TrialPoint] = []
                for state in active:
                    stop = min(target, config.max_trials)
                    for replicate in range(state.trials, stop):
                        wave_trials.append(
                            TrialPoint(
                                index=state.ordinal * config.max_trials + replicate,
                                replicate=replicate,
                                seed=spec.seed.trial_seed(replicate, state.params),
                                params=dict(state.params),
                            )
                        )
                wave_outcome = ExecutionOutcome()
                with span(
                    "adaptive.wave",
                    wave=waves,
                    points=len(active),
                    trials=len(wave_trials),
                ):
                    execute_trials(
                        scenario,
                        wave_trials,
                        jobs=jobs,
                        cache=cache,
                        chunk_size=chunk_size,
                        mp_context=mp_context,
                        reporter=reporter,
                        completed_before=executed + cache_hits,
                        executed_before=executed,
                        hits_before=cache_hits,
                        on_record=_on_record if store is not None else None,
                        outcome=wave_outcome,
                    )
                waves += 1
                _WAVES.inc()
                executed += wave_outcome.executed
                cache_hits += wave_outcome.cache_hits
                effective_jobs = max(effective_jobs, wave_outcome.effective_jobs)
                records.update(wave_outcome.records)
                wave_records = wave_outcome.records
                wave_outcome = ExecutionOutcome()  # folded: don't double count
                _flush_segment(label=f"wave-{waves - 1:03d}")

                by_ordinal = {state.ordinal: state for state in active}
                for index in sorted(wave_records):
                    state = by_ordinal[index // config.max_trials]
                    _fold_record(state, wave_records[index], config)
                if waves == 1 and not any(s.metric_records for s in states):
                    # a typo'd metric would otherwise sample every point to
                    # the ceiling without ever accumulating evidence
                    sample = next(iter(wave_records.values()), {})
                    candidates = sorted(
                        key for key, value in sample.items()
                        if isinstance(value, (int, float))
                        and not isinstance(value, bool)
                    )
                    raise ValueError(
                        f"metric {config.metric!r} never appeared in any trial "
                        "record after the first wave; numeric record keys: "
                        f"{', '.join(candidates) or '(none)'}"
                    )
                stopped_this_wave = 0
                for state in active:
                    interval = state.accumulator.interval(
                        config.confidence, config.method
                    )
                    if (
                        state.trials >= config.min_trials
                        and interval is not None
                        and interval.half_width <= config.ci_width
                    ):
                        state.reason = "converged"
                        if state.trials < config.max_trials:
                            stopped_this_wave += 1
                    elif state.trials >= config.max_trials:
                        state.reason = "ceiling"
                if stopped_this_wave:
                    _POINTS_STOPPED_EARLY.inc(stopped_this_wave)
                logger.info(
                    "adaptive sweep %s: wave %d done — %d active points remain "
                    "at depth <= %d",
                    scenario.name, waves - 1,
                    sum(1 for state in states if state.active), target,
                )
        finally:
            _flush_segment(label="final")
            if reporter is not None:
                reporter.update(
                    completed=executed + cache_hits
                    + wave_outcome.executed + wave_outcome.cache_hits,
                    executed=executed + wave_outcome.executed,
                    cache_hits=cache_hits + wave_outcome.cache_hits,
                    final=True,
                )

    realised = executed + cache_hits
    _TRIALS_SAVED.inc(ceiling - realised)
    elapsed = time.perf_counter() - started
    metrics_delta = None
    if metrics_before is not None:
        metrics_delta = flatten_snapshot(
            snapshot_delta(metrics_before, registry().snapshot())
        )
    stats = SweepStats(
        num_trials=realised,
        executed=executed,
        cache_hits=cache_hits,
        jobs=effective_jobs,
        elapsed_s=elapsed,
        metrics=metrics_delta or None,
    )
    points = [
        AdaptivePointSummary(
            ordinal=state.ordinal,
            params=state.params,
            trials=state.trials,
            interval=state.accumulator.interval(config.confidence, config.method),
            stopped_early=state.reason == "converged"
            and state.trials < config.max_trials,
            reason=state.reason or "ceiling",
        )
        for state in states
    ]
    logger.info(
        "adaptive sweep %s: done — %d/%d trials of the ceiling "
        "(%d points stopped early) in %.2fs",
        scenario.name, realised, ceiling,
        sum(1 for point in points if point.stopped_early), elapsed,
    )
    ordered = [records[index] for index in sorted(records)]
    return AdaptiveSweepResult(
        spec=spec,
        records=ordered,
        stats=stats,
        config=config,
        points=points,
        waves=waves,
    )
