"""Tidy on-disk results for sweeps: JSONL, CSV and a manifest.

Every sweep writes three artefacts into its output directory:

* ``results.jsonl`` — one tidy record per line, one line per trial (the
  machine-readable source of truth; append-friendly);
* ``results.csv`` — the same records as CSV (via
  :func:`repro.analysis.export.write_csv`, so the format matches the rest of
  the analysis exports and loads straight into pandas / a spreadsheet);
* ``manifest.json`` — the sweep spec plus execution stats, so a results
  directory is self-describing and the sweep can be re-run verbatim.

Records are flat dicts: identity columns (scenario, trial index, replicate,
seed), then the trial parameters, then the measured metrics.  Missing keys
(scenarios whose metrics differ by parameter) become empty CSV cells.

All three artefacts are written atomically (same-directory temp file +
``os.replace``, via :mod:`repro.utils.atomic`): a sweep killed mid-write —
including ``kill -9`` — leaves either the previous complete file or the new
complete file, never a torn ``results.jsonl`` or half a ``manifest.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.analysis.export import write_csv
from repro.utils.atomic import atomic_writer

__all__ = ["ResultStore", "write_jsonl", "read_jsonl", "iter_jsonl", "tidy_headers"]

#: Columns that lead every CSV, in this order, when present in the records.
IDENTITY_COLUMNS = ("scenario", "trial_index", "replicate", "seed")


def write_jsonl(path: Path | str, records: Iterable[Mapping[str, Any]]) -> Path:
    """Atomically write records as JSON Lines (creating parent directories).

    The records stream into a temp file that replaces ``path`` in one rename,
    so an interrupted write (or a record that fails to serialise mid-stream)
    never leaves a truncated results file behind.
    """

    def _write(handle: Any) -> None:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    return atomic_writer(path, _write)


def read_jsonl(path: Path | str) -> list[dict[str, Any]]:
    """Load a JSONL results file back into a list of records."""
    return list(iter_jsonl(path))


def iter_jsonl(path: Path | str) -> Iterator[dict[str, Any]]:
    """Stream a JSONL results file one record at a time (O(1) memory).

    The streaming counterpart of :func:`read_jsonl`: the online aggregators in
    :mod:`repro.analysis.intervals` and the segment merge in
    :mod:`repro.experiments.segments` consume this so a 10^7-trial result
    file never has to fit in memory.
    """
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def tidy_headers(records: Sequence[Mapping[str, Any]]) -> list[str]:
    """Column order for a set of tidy records: identity first, rest sorted."""
    keys: set[str] = set()
    for record in records:
        keys.update(record)
    leading = [column for column in IDENTITY_COLUMNS if column in keys]
    rest = sorted(keys - set(leading))
    return leading + rest


@dataclass
class ResultStore:
    """Writes one sweep's records and manifest under ``output_dir``."""

    output_dir: Path | str

    def __post_init__(self) -> None:
        self.output_dir = Path(self.output_dir)

    def write(
        self,
        records: Iterable[Mapping[str, Any]],
        spec: Mapping[str, Any] | None = None,
        stats: Mapping[str, Any] | None = None,
        basename: str = "results",
    ) -> dict[str, Path]:
        """Write JSONL + CSV (+ manifest when spec/stats given); return paths."""
        # materialise exactly once: a one-shot iterable (generator) would be
        # consumed by the JSONL writer, leaving the header scan and the CSV
        # writer an empty stream — JSONL full, CSV silently empty
        records = [record for record in records]
        out = Path(self.output_dir)
        written: dict[str, Path] = {}
        written["jsonl"] = write_jsonl(out / f"{basename}.jsonl", records)
        headers = tidy_headers(records)
        written["csv"] = write_csv(
            out / f"{basename}.csv",
            headers,
            ([record.get(column, "") for column in headers] for record in records),
        )
        if spec is not None or stats is not None:
            manifest = {"spec": dict(spec or {}), "stats": dict(stats or {})}
            written["manifest"] = atomic_writer(
                out / "manifest.json",
                lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
            )
        return written
