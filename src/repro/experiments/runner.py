"""The sweep engine: expand a spec, execute its trials, cache the results.

:func:`run_sweep` is the single entry point.  It expands a
:class:`~repro.experiments.spec.SweepSpec` into trial points, skips any whose
result is already in the :class:`~repro.experiments.cache.ResultCache`, and
executes the rest — serially for small batches, or on a ``multiprocessing``
pool with chunked dispatch for large ones.  Three properties the tests pin
down:

* **determinism** — per-trial seeds come from the seed policy, never from
  execution order, and records are returned in canonical trial order, so a
  serial run and a ``--jobs 8`` run of the same spec produce byte-identical
  records;
* **resumability** — each trial result is written to the cache the moment it
  arrives, so an interrupted sweep re-runs only its unfinished trials;
* **isolation** — workers resolve the scenario by name from the registry
  (trial functions are module-level), so nothing unpicklable crosses the
  process boundary.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.experiments.cache import ResultCache, code_version_tag, trial_key
from repro.experiments.registry import get_scenario
from repro.experiments.spec import SweepSpec, TrialPoint

__all__ = ["SweepStats", "SweepResult", "plain_value", "run_sweep"]

#: Below this many pending trials a worker pool costs more than it saves.
MIN_TRIALS_FOR_POOL = 4

#: Record keys written by the engine itself; trial params/metrics must not
#: collide with them.
IDENTITY_KEYS = ("scenario", "trial_index", "replicate", "seed")


def plain_value(value: Any) -> Any:
    """Coerce a metric/param value to a plain JSON-serialisable scalar.

    Applied to every record value by :func:`run_sweep` and by the batched
    engines that emit run_sweep-compatible records, so numpy scalars never
    leak into stored results.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"trial produced a non-scalar value {value!r} ({type(value).__name__}); "
        "trial functions must return flat dicts of scalars"
    )


def _execute_trial(payload: tuple[str, int, int, int, Mapping[str, Any]]) -> tuple[int, dict[str, Any]]:
    """Run one trial (possibly in a worker process) and build its tidy record."""
    scenario_name, index, replicate, seed, params = payload
    scenario = get_scenario(scenario_name)
    metrics = scenario.run_trial(params, seed)
    record: dict[str, Any] = {
        "scenario": scenario_name,
        "trial_index": index,
        "replicate": replicate,
        "seed": seed,
    }
    for source in (params, metrics):
        for key, value in source.items():
            if key in IDENTITY_KEYS or (key in record and source is metrics):
                raise ValueError(
                    f"scenario {scenario_name!r}: key {key!r} collides with an "
                    "identity or parameter column"
                )
            record[key] = plain_value(value)
    return index, record


@dataclass(frozen=True)
class SweepStats:
    """Execution statistics of one :func:`run_sweep` call."""

    num_trials: int
    executed: int
    cache_hits: int
    jobs: int
    elapsed_s: float

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.num_trials if self.num_trials else 0.0

    @property
    def trials_per_second(self) -> float:
        return self.num_trials / self.elapsed_s if self.elapsed_s > 0 else float("inf")

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_trials": self.num_trials,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "jobs": self.jobs,
            "elapsed_s": self.elapsed_s,
            "trials_per_second": self.trials_per_second,
        }


@dataclass
class SweepResult:
    """Records (in canonical trial order) plus the spec and run statistics."""

    spec: SweepSpec
    records: list[dict[str, Any]] = field(default_factory=list)
    stats: SweepStats | None = None

    def column(self, name: str) -> list[Any]:
        """The values of one record column, in trial order."""
        return [record.get(name) for record in self.records]

    def group_mean(self, by: str, metric: str) -> dict[Any, float]:
        """Mean of ``metric`` grouped by the values of column ``by``."""
        totals: dict[Any, list[float]] = {}
        for record in self.records:
            totals.setdefault(record[by], []).append(float(record[metric]))
        return {key: sum(vals) / len(vals) for key, vals in totals.items()}


def _chunk_size(pending: int, jobs: int) -> int:
    """Chunked dispatch: ~4 chunks per worker balances latency and overhead."""
    return max(1, pending // (jobs * 4))


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache: ResultCache | None = None,
    chunk_size: int | None = None,
    mp_context: multiprocessing.context.BaseContext | None = None,
) -> SweepResult:
    """Execute every trial of ``spec`` and return their tidy records.

    Parameters
    ----------
    spec:
        The sweep to run; its scenario must exist in the registry.
    jobs:
        Worker processes.  ``1`` (or a batch smaller than
        ``MIN_TRIALS_FOR_POOL``) runs serially in-process.
    cache:
        Optional result cache; hits skip execution, fresh results are stored
        as soon as they arrive so interrupted sweeps resume.
    chunk_size:
        Trials per pool task; defaults to ~4 chunks per worker.
    mp_context:
        Multiprocessing context override (``fork`` is the default on Linux;
        with a ``spawn`` context only built-in scenarios resolve in workers).
    """
    scenario = get_scenario(spec.scenario)
    trials = spec.expand()
    started = time.perf_counter()
    code_tag = code_version_tag()

    records: dict[int, dict[str, Any]] = {}
    pending: list[TrialPoint] = []
    keys: dict[int, str] = {}
    cache_hits = 0

    for trial in trials:
        if cache is not None:
            key = trial_key(scenario.name, scenario.version, trial.params, trial.seed, code_tag)
            keys[trial.index] = key
            hit = cache.get(scenario.name, key)
            if hit is not None:
                # restamp the identity columns: the cached record may have been
                # executed by a different sweep of the same trials
                records[trial.index] = {
                    **hit, "trial_index": trial.index, "replicate": trial.replicate,
                }
                cache_hits += 1
                continue
        pending.append(trial)

    payloads = [
        (scenario.name, trial.index, trial.replicate, trial.seed, trial.params)
        for trial in pending
    ]
    effective_jobs = max(1, min(int(jobs), len(pending)))

    def _collect(results: Iterable[tuple[int, dict[str, Any]]]) -> None:
        for index, record in results:
            records[index] = record
            if cache is not None:
                cache.put(scenario.name, keys[index], record)

    if effective_jobs == 1 or len(pending) < MIN_TRIALS_FOR_POOL:
        effective_jobs = 1
        _collect(map(_execute_trial, payloads))
    else:
        ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        size = chunk_size if chunk_size is not None else _chunk_size(len(pending), effective_jobs)
        with ctx.Pool(processes=effective_jobs) as pool:
            _collect(pool.imap_unordered(_execute_trial, payloads, chunksize=size))

    elapsed = time.perf_counter() - started
    stats = SweepStats(
        num_trials=len(trials),
        executed=len(pending),
        cache_hits=cache_hits,
        jobs=effective_jobs,
        elapsed_s=elapsed,
    )
    ordered = [records[trial.index] for trial in trials]
    return SweepResult(spec=spec, records=ordered, stats=stats)
