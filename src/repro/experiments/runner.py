"""The sweep engine: expand a spec, execute its trials, cache the results.

:func:`run_sweep` is the fixed-count entry point.  It expands a
:class:`~repro.experiments.spec.SweepSpec` into trial points and hands them to
:func:`execute_trials` — the wave-level engine that the adaptive runner
(:mod:`repro.experiments.adaptive`) reuses to grow sweeps in waves.  The
engine skips trials whose result is already in the
:class:`~repro.experiments.cache.ResultCache`, and executes the rest —
serially for small batches, or on a ``multiprocessing`` pool with chunked
dispatch for large ones.  Three properties the tests pin down:

* **determinism** — per-trial seeds come from the seed policy, never from
  execution order, and records are returned in canonical trial order, so a
  serial run and a ``--jobs 8`` run of the same spec produce byte-identical
  records;
* **resumability** — each trial result is written to the cache the moment it
  arrives, so an interrupted sweep re-runs only its unfinished trials;
* **isolation** — workers resolve the scenario by name from the registry
  (trial functions are module-level), so nothing unpicklable crosses the
  process boundary.

For out-of-core sweeps, ``run_sweep`` takes a ``store=``
:class:`~repro.experiments.segments.SegmentedResultStore` and flushes
completed trials to append-only segments every ``store.flush_trials``
records, so a killed sweep keeps every finished wave on disk.

The engine is also the telemetry trunk (:mod:`repro.telemetry`): with a
tracer active it opens ``sweep > sweep.cache_scan / sweep.execute > trial``
spans (workers buffer their spans and metric deltas and ship them back with
each trial result for parent-side merging), folds the sweep's metric deltas
into :class:`SweepStats`, and drives an optional throttled ``progress``
callback — the hook the sweep service polls.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.experiments.cache import ResultCache, code_version_tag, trial_key
from repro.experiments.registry import Scenario, get_scenario
from repro.experiments.spec import SweepSpec, TrialPoint
from repro.telemetry.metrics import counter, flatten_snapshot, registry, snapshot_delta
from repro.telemetry.progress import ProgressEvent, ProgressReporter
from repro.telemetry.tracing import SpanRecord, current_tracer, span, worker_trace

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.experiments.segments import SegmentedResultStore

__all__ = [
    "SweepStats",
    "SweepResult",
    "ExecutionOutcome",
    "execute_trials",
    "plain_value",
    "run_sweep",
]

logger = logging.getLogger(__name__)

_TRIALS_EXECUTED = counter("sweep.trials_executed")
_TRIALS_CACHED = counter("sweep.trials_cached")

#: Below this many pending trials a worker pool costs more than it saves.
MIN_TRIALS_FOR_POOL = 4

#: Record keys written by the engine itself; trial params/metrics must not
#: collide with them.
IDENTITY_KEYS = ("scenario", "trial_index", "replicate", "seed")


def plain_value(value: Any) -> Any:
    """Coerce a metric/param value to a plain JSON-serialisable scalar.

    Applied to every record value by :func:`run_sweep` and by the batched
    engines that emit run_sweep-compatible records, so numpy scalars never
    leak into stored results.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"trial produced a non-scalar value {value!r} ({type(value).__name__}); "
        "trial functions must return flat dicts of scalars"
    )


#: One executed trial: its canonical index, tidy record, the spans it
#: produced (empty unless it ran in a worker with telemetry on), and the
#: worker's metric delta (``None`` unless it ran in a worker with telemetry
#: on — in-process trials record straight into the parent tracer/registry).
_TrialResult = tuple[int, dict[str, Any], tuple[SpanRecord, ...], dict[str, Any] | None]


def _run_trial_record(
    scenario_name: str, index: int, replicate: int, seed: int, params: Mapping[str, Any]
) -> dict[str, Any]:
    """Run one trial and build its tidy record."""
    scenario = get_scenario(scenario_name)
    metrics = scenario.run_trial(params, seed)
    record: dict[str, Any] = {
        "scenario": scenario_name,
        "trial_index": index,
        "replicate": replicate,
        "seed": seed,
    }
    for source in (params, metrics):
        for key, value in source.items():
            if key in IDENTITY_KEYS or (key in record and source is metrics):
                raise ValueError(
                    f"scenario {scenario_name!r}: key {key!r} collides with an "
                    "identity or parameter column"
                )
            record[key] = plain_value(value)
    return record


def _execute_trial(
    payload: tuple[str, int, int, int, Mapping[str, Any], bool]
) -> _TrialResult:
    """Run one trial (possibly in a worker process), with telemetry capture.

    Three telemetry regimes, decided here so the pool dispatch stays dumb:

    * a tracer owned by *this* process is active → in-process (serial)
      execution: the trial span records straight into it, nothing ships;
    * ``telemetry`` flag set but no live local tracer → worker process (the
      forked parent tracer, if any, is a dead copy): buffer spans and the
      metric delta locally and ship both back with the record;
    * telemetry off → run bare (the disabled path adds two tuple fields and
      one contextvar read over the pre-telemetry engine).
    """
    scenario_name, index, replicate, seed, params, telemetry = payload
    tracer = current_tracer()
    if tracer is not None and tracer.pid == os.getpid():
        with span("trial", trial_index=index, seed=seed):
            record = _run_trial_record(scenario_name, index, replicate, seed, params)
        return index, record, (), None
    if telemetry:
        before = registry().snapshot()
        with worker_trace() as local:
            with span("trial", trial_index=index, seed=seed):
                record = _run_trial_record(scenario_name, index, replicate, seed, params)
        delta = snapshot_delta(before, registry().snapshot())
        return index, record, tuple(local.records), delta or None
    record = _run_trial_record(scenario_name, index, replicate, seed, params)
    return index, record, (), None


@dataclass(frozen=True)
class SweepStats:
    """Execution statistics of one :func:`run_sweep` call."""

    num_trials: int
    executed: int
    cache_hits: int
    jobs: int
    elapsed_s: float
    #: Flattened telemetry-metric deltas attributable to this sweep (counter
    #: increments, histogram windows) — see :mod:`repro.telemetry.metrics`.
    #: ``None`` when the run recorded no metric activity.
    metrics: Mapping[str, Any] | None = None

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.num_trials if self.num_trials else 0.0

    @property
    def trials_per_second(self) -> float:
        """Throughput of *executed* trials.

        Cache hits are lookups, not work: a 100%-cache-hit resume must not
        claim an absurd execution rate, so the numerator is ``executed``,
        never ``num_trials``.  A run that executed nothing reports 0.0 (and
        a zero-elapsed run stays ``inf``, serialised as null).
        """
        if self.elapsed_s <= 0:
            return float("inf")
        return self.executed / self.elapsed_s

    def to_dict(self) -> dict[str, Any]:
        # a zero-elapsed run has no meaningful rate: serialise it as null —
        # json.dumps would otherwise emit the non-standard literal `Infinity`
        # that strict JSON parsers (and the manifest's future readers) reject
        rate = self.trials_per_second
        payload: dict[str, Any] = {
            "num_trials": self.num_trials,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "jobs": self.jobs,
            "elapsed_s": self.elapsed_s,
            "trials_per_second": rate if math.isfinite(rate) else None,
        }
        if self.metrics:
            payload["metrics"] = dict(self.metrics)
        return payload


@dataclass
class SweepResult:
    """Records (in canonical trial order) plus the spec and run statistics."""

    spec: SweepSpec
    records: list[dict[str, Any]] = field(default_factory=list)
    stats: SweepStats | None = None

    def column(self, name: str) -> list[Any]:
        """The values of one record column, in trial order."""
        return [record.get(name) for record in self.records]

    def group_mean(self, by: str, metric: str) -> dict[Any, float]:
        """Mean of ``metric`` grouped by the values of column ``by``.

        Records missing either key are skipped — heterogeneous records
        (scenarios whose metric sets differ per parameter) are
        documented-normal in the store layer, never an error here.
        """
        totals: dict[Any, list[float]] = {}
        for record in self.records:
            if by not in record or metric not in record:
                continue
            totals.setdefault(record[by], []).append(float(record[metric]))
        return {key: sum(vals) / len(vals) for key, vals in totals.items()}


def _chunk_size(pending: int, jobs: int) -> int:
    """Chunked dispatch: ~4 chunks per worker balances latency and overhead."""
    return max(1, pending // (jobs * 4))


@dataclass
class ExecutionOutcome:
    """What one :func:`execute_trials` call produced (updated *in place*).

    Callers may pass their own instance to ``execute_trials``; because the
    engine mutates it as results arrive, the counts and records survive a
    trial raising mid-batch — that is how ``run_sweep``'s ``finally`` block
    reports partial progress after a failure.
    """

    #: Completed records keyed by canonical trial index.
    records: dict[int, dict[str, Any]] = field(default_factory=dict)
    executed: int = 0
    cache_hits: int = 0
    effective_jobs: int = 1


def execute_trials(
    scenario: Scenario,
    trials: Sequence[TrialPoint],
    jobs: int = 1,
    cache: ResultCache | None = None,
    chunk_size: int | None = None,
    mp_context: multiprocessing.context.BaseContext | None = None,
    reporter: ProgressReporter | None = None,
    completed_before: int = 0,
    executed_before: int = 0,
    hits_before: int = 0,
    on_record: Callable[[dict[str, Any]], None] | None = None,
    outcome: ExecutionOutcome | None = None,
) -> ExecutionOutcome:
    """Execute one batch of trial points — the engine under every sweep.

    This is the wave-level primitive: :func:`run_sweep` calls it once with a
    spec's full expansion; the adaptive runner calls it per wave with just
    the replicates that wave adds.  It opens the ``sweep.cache_scan`` and
    ``sweep.execute`` spans, writes fresh results to the cache as they
    arrive, restamps identity columns on cache hits, merges worker telemetry
    home, and invokes ``on_record`` for every completed record (hits and
    fresh alike) — the flush hook the segmented store plugs into.

    ``*_before`` offsets let a multi-wave caller report cumulative progress
    through one shared ``reporter``; the final (terminal) progress event is
    the caller's responsibility.  ``outcome`` (optional) is updated in place
    as results arrive, so the caller sees partial counts even when a trial
    raises.
    """
    code_tag = code_version_tag()
    tracer = current_tracer()
    telemetry_on = tracer is not None and tracer.pid == os.getpid()
    result = outcome if outcome is not None else ExecutionOutcome()

    pending: list[TrialPoint] = []
    keys: dict[int, str] = {}

    with span("sweep.cache_scan", cached=cache is not None):
        for trial in trials:
            if cache is not None:
                key = trial_key(
                    scenario.name, scenario.version, trial.params, trial.seed, code_tag
                )
                keys[trial.index] = key
                hit = cache.get(scenario.name, key)
                if hit is not None:
                    # restamp the identity columns: the cached record may
                    # have been executed by a different sweep of the same
                    # trials
                    record = {
                        **hit, "trial_index": trial.index, "replicate": trial.replicate,
                    }
                    result.records[trial.index] = record
                    result.cache_hits += 1
                    # a zero-duration trial span per hit keeps the trace's
                    # trial count equal to stats.num_trials
                    with span("trial", trial_index=trial.index, seed=trial.seed,
                              cache_hit=True):
                        pass
                    if on_record is not None:
                        on_record(record)
                    continue
            pending.append(trial)
    cache_hits = result.cache_hits
    _TRIALS_CACHED.inc(cache_hits)
    logger.info(
        "sweep %s: cache scan done — %d hits, %d to execute",
        scenario.name, cache_hits, len(pending),
    )

    payloads = [
        (scenario.name, trial.index, trial.replicate, trial.seed, trial.params,
         telemetry_on)
        for trial in pending
    ]
    result.effective_jobs = max(1, min(int(jobs), len(pending)))

    if reporter is not None:
        reporter.update(
            completed=completed_before + cache_hits,
            executed=executed_before,
            cache_hits=hits_before + cache_hits,
        )

    # the metric increments in a finally so a trial raising mid-pool still
    # counts the trials that did complete; those results are already in the
    # cache (and flushed through on_record) because _collect handles each
    # one the moment it arrives
    executed = 0
    try:
        with span("sweep.execute", pending=len(pending)) as execute_span:
            execute_id = execute_span.span_id if execute_span is not None else None

            def _collect(results: Iterable[_TrialResult]) -> None:
                nonlocal executed
                for index, record, spans, metric_delta in results:
                    result.records[index] = record
                    executed += 1
                    result.executed += 1
                    if cache is not None:
                        cache.put(scenario.name, keys[index], record)
                    if spans and tracer is not None:
                        tracer.adopt(spans, parent_id=execute_id)
                    if metric_delta:
                        registry().merge_delta(metric_delta)
                    if on_record is not None:
                        on_record(record)
                    if reporter is not None:
                        reporter.update(
                            completed=completed_before + cache_hits + executed,
                            executed=executed_before + executed,
                            cache_hits=hits_before + cache_hits,
                        )

            if result.effective_jobs == 1 or len(pending) < MIN_TRIALS_FOR_POOL:
                result.effective_jobs = 1
                _collect(map(_execute_trial, payloads))
            else:
                ctx = (
                    mp_context if mp_context is not None
                    else multiprocessing.get_context()
                )
                size = (
                    chunk_size if chunk_size is not None
                    else _chunk_size(len(pending), result.effective_jobs)
                )
                logger.debug(
                    "sweep %s: pool dispatch — %d workers, chunk size %d",
                    scenario.name, result.effective_jobs, size,
                )
                with ctx.Pool(processes=result.effective_jobs) as pool:
                    _collect(
                        pool.imap_unordered(_execute_trial, payloads, chunksize=size)
                    )
    finally:
        _TRIALS_EXECUTED.inc(executed)

    return result


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache: ResultCache | None = None,
    chunk_size: int | None = None,
    mp_context: multiprocessing.context.BaseContext | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
    progress_interval_s: float = 0.0,
    store: "SegmentedResultStore | None" = None,
) -> SweepResult:
    """Execute every trial of ``spec`` and return their tidy records.

    Parameters
    ----------
    spec:
        The sweep to run; its scenario must exist in the registry.
    jobs:
        Worker processes.  ``1`` (or a batch smaller than
        ``MIN_TRIALS_FOR_POOL``) runs serially in-process.
    cache:
        Optional result cache; hits skip execution, fresh results are stored
        as soon as they arrive so interrupted sweeps resume.
    chunk_size:
        Trials per pool task; defaults to ~4 chunks per worker.
    mp_context:
        Multiprocessing context override (``fork`` is the default on Linux;
        with a ``spawn`` context only built-in scenarios resolve in workers).
    progress:
        Optional heartbeat callback.  Receives a
        :class:`~repro.telemetry.progress.ProgressEvent` after the cache scan,
        after trial completions (throttled to ``progress_interval_s``), and a
        final event when the sweep is done.
    progress_interval_s:
        Minimum seconds between intermediate progress events (first and final
        events always fire).
    store:
        Optional :class:`~repro.experiments.segments.SegmentedResultStore`:
        completed records are flushed to an append-only segment every
        ``store.flush_trials`` completions (and once at the end), so a killed
        sweep keeps every flushed wave on disk.  Call ``store.merge()`` to
        produce the canonical results afterwards.
    """
    scenario = get_scenario(spec.scenario)
    trials = spec.expand()
    started = time.perf_counter()
    tracer = current_tracer()
    telemetry_on = tracer is not None and tracer.pid == os.getpid()
    metrics_before = registry().snapshot() if telemetry_on else None
    logger.info(
        "sweep %s: %d trials (jobs=%d, cache=%s)",
        scenario.name, len(trials), jobs, "on" if cache is not None else "off",
    )

    reporter = (
        ProgressReporter(progress, total=len(trials), min_interval_s=progress_interval_s)
        if progress is not None
        else None
    )

    flush_buffer: list[dict[str, Any]] = []

    def _flush_segment() -> None:
        if store is not None and flush_buffer:
            store.append(flush_buffer)
            flush_buffer.clear()

    def _on_record(record: dict[str, Any]) -> None:
        if store is not None:
            flush_buffer.append(record)
            if len(flush_buffer) >= store.flush_trials:
                _flush_segment()

    # execute_trials updates this outcome in place, so the finally block
    # still sees the partial counts when a trial raises mid-batch
    outcome = ExecutionOutcome()
    # try/finally so a trial raising mid-pool still delivers the final
    # progress heartbeat (pollers — the sweep service — must observe a
    # terminal event) and still flushes the records that did complete
    with span("sweep", scenario=scenario.name, num_trials=len(trials)):
        try:
            execute_trials(
                scenario,
                trials,
                jobs=jobs,
                cache=cache,
                chunk_size=chunk_size,
                mp_context=mp_context,
                reporter=reporter,
                on_record=_on_record if store is not None else None,
                outcome=outcome,
            )
        finally:
            _flush_segment()
            if reporter is not None:
                reporter.update(
                    completed=outcome.cache_hits + outcome.executed,
                    executed=outcome.executed,
                    cache_hits=outcome.cache_hits,
                    final=True,
                )

    elapsed = time.perf_counter() - started
    metrics_delta = None
    if metrics_before is not None:
        metrics_delta = flatten_snapshot(
            snapshot_delta(metrics_before, registry().snapshot())
        )
    stats = SweepStats(
        num_trials=len(trials),
        executed=outcome.executed,
        cache_hits=outcome.cache_hits,
        jobs=outcome.effective_jobs,
        elapsed_s=elapsed,
        metrics=metrics_delta or None,
    )
    logger.info(
        "sweep %s: done — %d executed, %d cache hits in %.2fs",
        scenario.name, stats.executed, stats.cache_hits, elapsed,
    )
    ordered = [outcome.records[trial.index] for trial in trials]
    return SweepResult(spec=spec, records=ordered, stats=stats)
