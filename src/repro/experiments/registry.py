"""Scenario registry: named, sweepable experiments over the repro layers.

A :class:`Scenario` couples a *trial function* — ``(params, seed) -> metrics``
— with a default :class:`~repro.experiments.spec.SweepSpec` describing the
interesting axes.  Scenarios are looked up by name (also from worker
processes, so trial functions stay importable module-level callables) and the
registry ships with eight built-ins spanning every layer of the codebase:

======================  =======================  ================================
name                    layers                   sweeps
======================  =======================  ================================
modem-ser-vs-snr        modem, channel, dsp      DS-SS vs FSK symbol error rate
fixedpoint-bitwidth     fixedpoint, core         MP accuracy vs word length
ipcore-parallelism      core, fixedpoint, hw     IP-core accuracy + cycles vs P, w
platform-energy         hardware                 energy per estimation / packet
mp-refinement           core, channel            greedy vs LS-refined MP vs Nf
network-lifetime        network, modem           deployment lifetime by platform
network-contention      network, modem           lifetime/PDR under contention MAC
network-pdr-vs-density  network                  delivery ratio vs node density
======================  =======================  ================================

Each scenario carries a ``version`` string that is folded into cache keys, so
changing a trial function's behaviour (bump the version) invalidates exactly
that scenario's cached results.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.core.ipcore import BatchIPCoreEngine, IPCoreConfig
from repro.core.matching_pursuit import matching_pursuit
from repro.core.metrics import normalized_channel_error, support_recovery_rate
from repro.core.refinement import refine_least_squares
from repro.dsp.signal_matrix import SignalMatrices, composite_signal_matrices
from repro.experiments.spec import SeedPolicy, SweepSpec
from repro.hardware.comparison import PlatformComparison, compare_platforms
from repro.modem.config import AquaModemConfig
from repro.modem.energy_budget import ModemEnergyBudget
from repro.modem.link import LinkSimulator
from repro.network.lifetime import lifetime_by_platform
from repro.network.mac import CsmaMac
from repro.network.routing import RoutedForwarding, TtlFlooding, shortest_path_routing
from repro.network.simulator import NetworkSimulator
from repro.network.topology import (
    LinearMobility,
    connectivity_graph,
    grid_deployment,
    random_deployment,
)
from repro.network.traffic import PeriodicTraffic

__all__ = [
    "Scenario",
    "register",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "fixedpoint_trial_metrics",
    "trial_channel_problem",
    "trial_config_key",
    "trial_estimator",
    "trial_float_reference",
    "trial_ipcore_engine",
    "TABLE3_PLATFORM_ENERGIES_UJ",
]

#: The Table 3 per-estimation energies (microjoules) used by the lifetime
#: scenarios; platform label and energy are *paired* data, hence zipped axes.
TABLE3_PLATFORM_ENERGIES_UJ: dict[str, float] = {
    "MicroBlaze": 2000.40,
    "TI C6713 DSP": 500.76,
    "Virtex-4 1FC 16bit": 360.52,
    "Spartan-3 14FC 8bit": 25.82,
    "Virtex-4 112FC 8bit": 9.50,
}


@dataclass(frozen=True)
class Scenario:
    """One named, sweepable experiment."""

    name: str
    description: str
    layers: tuple[str, ...]
    version: str
    run_trial: Callable[[Mapping[str, Any], int], Mapping[str, Any]]
    default_spec: SweepSpec

    @property
    def spec(self) -> SweepSpec:
        """The default sweep spec (safe to share: specs are immutable)."""
        return self.default_spec


_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the registry (replacing any same-named entry)."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name; raises ``KeyError`` listing what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; available: {available}") from None


def list_scenarios() -> list[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


# --------------------------------------------------------------------------- #
# shared (per-process, memoised) heavy objects
#
# Trials of the same sweep share expensive intermediates: the signal matrices,
# the per-channel problem (channel draw + noisy receive vector) that paired
# seeds make identical across axis values, and the floating-point reference
# estimate.  Memoising them per process restores the sharing the old ad-hoc
# loops had, without coupling trials to each other.
# --------------------------------------------------------------------------- #

#: Every :class:`AquaModemConfig` field, so a trial's parameters can carry a
#: *complete* waveform configuration; absent parameters use Table 1 defaults.
_CONFIG_FIELDS = tuple(AquaModemConfig.__dataclass_fields__)


@functools.lru_cache(maxsize=1)
def _config_defaults() -> tuple:
    config = AquaModemConfig()
    return tuple(getattr(config, name) for name in _CONFIG_FIELDS)


def _config_key(params: Mapping[str, Any]) -> tuple:
    defaults = _config_defaults()
    return tuple(
        params.get(name, default) for name, default in zip(_CONFIG_FIELDS, defaults)
    )


@functools.lru_cache(maxsize=32)
def _config(key: tuple) -> AquaModemConfig:
    return AquaModemConfig(**dict(zip(_CONFIG_FIELDS, key)))


def _config_from(params: Mapping[str, Any]) -> AquaModemConfig:
    return _config(_config_key(params))


def config_params(config: AquaModemConfig) -> dict[str, Any]:
    """``config`` as flat trial parameters (inverse of :func:`_config_from`)."""
    return {name: getattr(config, name) for name in _CONFIG_FIELDS}


@functools.lru_cache(maxsize=8)
def _matrices(walsh_symbols: int, spreading_chips: int, samples_per_chip: int) -> SignalMatrices:
    return composite_signal_matrices(walsh_symbols, spreading_chips, samples_per_chip)


def _matrices_for(config: AquaModemConfig) -> SignalMatrices:
    return _matrices(config.walsh_symbols, config.spreading_chips, config.samples_per_chip)


@functools.lru_cache(maxsize=32)
def _fixed_point_estimator(
    config_key: tuple, word_length: int,
) -> FixedPointMatchingPursuit:
    config = _config(config_key)
    return FixedPointMatchingPursuit(
        _matrices_for(config), word_length=word_length, num_paths=config.num_paths
    )


@functools.lru_cache(maxsize=32)
def _ipcore_engine(
    config_key: tuple, num_fc_blocks: int, word_length: int,
) -> BatchIPCoreEngine:
    config = _config(config_key)
    return BatchIPCoreEngine(
        _matrices_for(config),
        IPCoreConfig(
            num_fc_blocks=num_fc_blocks,
            word_length=word_length,
            num_paths=config.num_paths,
        ),
    )


@functools.lru_cache(maxsize=256)
def _channel_problem(
    config_key: tuple, num_channel_paths: int, snr_db: float, seed: int,
):
    """One estimation problem: (channel, true coefficients, noisy receive)."""
    config = _config(config_key)
    matrices = _matrices_for(config)
    channel = random_sparse_channel(
        num_paths=num_channel_paths,
        max_delay=config.multipath_spread_samples,
        rng=seed,
        min_separation=4,
    )
    true_f = channel.coefficient_vector(matrices.num_delays)
    received = add_noise_for_snr(matrices.synthesize(true_f), snr_db, rng=seed + 1)
    return channel, true_f, received


@functools.lru_cache(maxsize=256)
def _float_estimate(
    config_key: tuple, num_channel_paths: int, snr_db: float, seed: int, num_paths: int,
):
    """Floating-point MP estimate of one problem (shared across axis values)."""
    config = _config(config_key)
    _, _, received = _channel_problem(config_key, num_channel_paths, snr_db, seed)
    return matching_pursuit(received, _matrices_for(config), num_paths=num_paths)


@functools.lru_cache(maxsize=8)
def _platform_comparison(num_paths: int) -> PlatformComparison:
    return compare_platforms(num_paths=num_paths)


# --------------------------------------------------------------------------- #
# public problem builders (shared with the batched fixed-point engine)
#
# `repro.core.batch.BatchFixedPointMPEngine` runs whole bitwidth sweeps
# without going through `run_sweep`, but must see the *identical* problems
# the scalar trials see.  These helpers expose the memoised problem/estimator
# builders above, so both paths draw the same RNG streams and literally share
# the cached channel draws and float references within a process.
# --------------------------------------------------------------------------- #
def trial_config_key(params: Mapping[str, Any]) -> tuple:
    """A hashable signature of the waveform-configuration fields of a trial.

    Two parameter mappings with the same signature build the same matrices,
    estimators and problems; the batched engine groups trial points by it.
    """
    return _config_key(params)


def trial_channel_problem(params: Mapping[str, Any], seed: int):
    """The (channel, true coefficients, received) problem of one trial point."""
    return _channel_problem(
        _config_key(params),
        int(params["num_channel_paths"]),
        float(params["snr_db"]),
        int(seed),
    )


def trial_float_reference(params: Mapping[str, Any], seed: int):
    """The floating-point MP estimate of one trial point's problem."""
    config_key = _config_key(params)
    return _float_estimate(
        config_key,
        int(params["num_channel_paths"]),
        float(params["snr_db"]),
        int(seed),
        _config(config_key).num_paths,
    )


def trial_estimator(params: Mapping[str, Any], word_length: int) -> FixedPointMatchingPursuit:
    """The (memoised) fixed-point estimator of one trial point."""
    return _fixed_point_estimator(_config_key(params), int(word_length))


def trial_ipcore_engine(
    params: Mapping[str, Any], num_fc_blocks: int, word_length: int,
) -> BatchIPCoreEngine:
    """The (memoised) batched IP-core engine of one trial point.

    The engine exposes its scalar :class:`~repro.core.ipcore.simulator.IPCoreSimulator`
    as ``.core``, so both datapath routes of the ``ipcore-parallelism``
    scenario share one set of quantised matrices.
    """
    return _ipcore_engine(_config_key(params), int(num_fc_blocks), int(word_length))


def fixedpoint_trial_metrics(channel, true_f, reference, estimate) -> dict[str, Any]:
    """The E6 accuracy metrics of one fixed-point estimate.

    Shared by the scalar trial function and the batched engine so both
    evaluate the identical float expressions on identical coefficient arrays
    — which is what lets the engine's records be compared to the sweep's
    with ``==``.
    """
    vs_float = (
        normalized_channel_error(reference.coefficients, estimate.coefficients)
        if np.linalg.norm(reference.coefficients) > 0
        else 0.0
    )
    return {
        "normalized_error": normalized_channel_error(true_f, estimate.coefficients),
        "support_recovery": support_recovery_rate(
            channel.delays, estimate.path_indices, tolerance=1
        ),
        "error_vs_float": vs_float,
    }


@functools.lru_cache(maxsize=64)
def _topology_routing(
    topology: str,
    rows: int,
    cols: int,
    spacing_m: float,
    communication_range_m: float,
    topology_seed: int = 0,
):
    """Routing tree for one deployment geometry.

    ``grid`` is the regular rows x cols lattice; ``random`` scatters the same
    number of nodes uniformly over the equivalent area (sink at the centre),
    with the scatter drawn deterministically from ``topology_seed``.
    """
    if topology == "grid":
        deployment = grid_deployment(rows, cols, spacing_m=spacing_m)
    elif topology == "random":
        area = (max(1, cols - 1) * spacing_m, max(1, rows - 1) * spacing_m)
        deployment = random_deployment(rows * cols, area_m=area, rng=topology_seed)
    else:
        raise ValueError(f"unknown topology {topology!r}; expected 'grid' or 'random'")
    graph = connectivity_graph(deployment, communication_range_m)
    return shortest_path_routing(graph, deployment.sink_id)


# --------------------------------------------------------------------------- #
# trial functions (module-level so worker processes can run them)
# --------------------------------------------------------------------------- #
def _modem_ser_trial(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """One SER measurement of one scheme at one SNR point.

    ``batch`` selects the batched link engine (the default) or the per-frame
    reference loop; both produce identical counts for a given seed, so the
    axis exists for benchmarking and cross-validation sweeps.
    """
    simulator = LinkSimulator(
        config=_config_from(params),
        num_channel_paths=int(params["num_channel_paths"]),
        rng=seed,
        batch=bool(params.get("batch", True)),
    )
    result = simulator.run(
        str(params["scheme"]),
        float(params["snr_db"]),
        num_symbols=int(params["num_symbols"]),
        num_frames=int(params["num_frames"]),
    )
    return {
        "symbol_error_rate": result.symbol_error_rate,
        "symbols_sent": result.symbols_sent,
        "symbol_errors": result.symbol_errors,
    }


def _fixedpoint_bitwidth_trial(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Fixed-point vs floating-point MP accuracy on one random channel.

    ``batch`` routes this trial's estimate through the batched datapath as a
    one-row batch (``estimate_batch``) instead of the scalar executable
    specification; the two are bit-identical on raw integer codes, so the
    axis exists for cross-validation sweeps.  Whole-sweep batching — all
    trials of all word lengths at once — lives in
    :class:`repro.core.batch.BatchFixedPointMPEngine`, which shares this
    trial's memoised problems and metrics.
    """
    channel, true_f, received = trial_channel_problem(params, seed)
    reference = trial_float_reference(params, seed)
    estimator = trial_estimator(params, int(params["word_length"]))
    if bool(params.get("batch", False)):
        estimate = estimator.estimate_batch(received[np.newaxis, :])[0]
    else:
        estimate = estimator.estimate(received)
    return fixedpoint_trial_metrics(channel, true_f, reference, estimate)


def _ipcore_parallelism_trial(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """IP-core estimation accuracy and cycle cost at one (P, word length) point.

    The estimate is bit-identical at every parallelism level (partitioning is
    a scheduling choice — the conformance contract of
    :mod:`repro.core.ipcore.conformance`), so across the ``num_fc_blocks``
    axis the accuracy columns are constant while the cycle columns fall as
    Ns/P.  ``batch`` routes the trial through the batched engine as a
    one-row batch instead of the scalar FC-block walk; the two produce
    identical records, so the axis exists for cross-validation sweeps.
    """
    channel, true_f, received = trial_channel_problem(params, seed)
    reference = trial_float_reference(params, seed)
    engine = trial_ipcore_engine(
        params, int(params["num_fc_blocks"]), int(params["word_length"])
    )
    if bool(params.get("batch", True)):
        run = engine.estimate_batch(received[np.newaxis, :])
        estimate = run.result[0]
        schedule = run.schedule
    else:
        scalar_run = engine.core.estimate(received)
        estimate = scalar_run.result
        schedule = scalar_run.schedule
    metrics = fixedpoint_trial_metrics(channel, true_f, reference, estimate)
    metrics["total_cycles"] = schedule.total_cycles
    metrics["matched_filter_cycles"] = schedule.matched_filter_cycles
    metrics["iteration_cycles"] = schedule.iteration_cycles
    return metrics


def _platform_energy_trial(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Per-estimation and per-packet energy of one platform (analytic model)."""
    comparison = _platform_comparison(int(params["num_paths"]))
    result = comparison.by_label(str(params["platform"]))
    packet_symbols = int(params["packet_symbols"])
    return {
        "time_us": result.time_us,
        "power_w": result.power_w,
        "energy_uj": result.energy_uj,
        "energy_per_packet_uj": result.energy_uj * packet_symbols,
        "energy_decrease_vs_microcontroller": result.energy_decrease_vs_microcontroller,
        "energy_decrease_vs_dsp": result.energy_decrease_vs_dsp,
    }


def _mp_refinement_trial(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Greedy vs LS-refined MP estimation quality at one Nf on one channel."""
    config_key = _config_key(params)
    matrices = _matrices_for(_config(config_key))
    num_channel_paths = int(params["num_channel_paths"])
    snr_db = float(params["snr_db"])
    num_paths = int(params["num_paths"])
    channel, true_f, received = _channel_problem(config_key, num_channel_paths, snr_db, seed)
    # the memoised greedy estimate is shared by the 'greedy' and 'ls' trials
    # of the same problem; refinement returns a new result, never mutates it
    estimate = _float_estimate(config_key, num_channel_paths, snr_db, seed, num_paths)
    if str(params["estimator"]) == "ls":
        estimate = refine_least_squares(received, matrices.S, estimate)
    residual = received - matrices.synthesize(estimate.coefficients)
    return {
        "normalized_error": normalized_channel_error(true_f, estimate.coefficients),
        "support_recovery": support_recovery_rate(
            channel.delays, estimate.path_indices, tolerance=1
        ),
        "relative_residual": float(
            np.linalg.norm(residual) / max(np.linalg.norm(received), 1e-300)
        ),
    }


def _network_lifetime_trial(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Deployment lifetime (days) of one platform on one network configuration.

    ``topology`` selects the deployment geometry (``grid`` or ``random``) and
    ``batch`` the vectorised or scalar analytical estimator; both produce
    identical lifetimes, so the axes exist for cross-validation and
    benchmarking sweeps.
    """
    config = _config_from(params)
    platform = str(params["platform"])
    energy_uj = float(params["energy_uj"])
    routing = _topology_routing(
        str(params.get("topology", "grid")),
        int(params["grid_rows"]), int(params["grid_cols"]),
        float(params["spacing_m"]), float(params["communication_range_m"]),
        int(params.get("topology_seed", 0)),
    )
    traffic = PeriodicTraffic(
        report_interval_s=float(params["report_interval_s"]),
        packet_symbols=int(params["packet_symbols"]),
    )
    base_budget = ModemEnergyBudget(config=config)
    idle_power_w = None
    if bool(params["continuous_detection"]):
        idle_power_w = {
            platform: base_budget.processing_idle_power_w
            + (energy_uj * 1e-6) / config.total_symbol_period_s
        }
    lifetimes_s = lifetime_by_platform(
        routing=routing,
        traffic=traffic,
        battery_capacity_j=float(params["battery_capacity_j"]),
        platform_processing_energy_j={platform: energy_uj * 1e-6},
        platform_idle_power_w=idle_power_w,
        base_budget=base_budget,
        batch=bool(params.get("batch", True)),
    )
    return {"lifetime_days": lifetimes_s[platform] / 86_400.0}


def _contention_simulator(params: Mapping[str, Any], seed: int) -> NetworkSimulator:
    """Build the packet-level simulator a contention trial runs on.

    The deployment covers a *fixed* ``area_side_m`` square regardless of
    ``num_nodes``, so sweeping the node count sweeps the density — and with
    it the per-receiver contender count the CSMA MAC reacts to.
    """
    topology = str(params.get("topology", "grid"))
    num_nodes = int(params["num_nodes"])
    area_side_m = float(params["area_side_m"])
    if topology == "grid":
        side = int(round(num_nodes**0.5))
        if side * side != num_nodes:
            raise ValueError(
                f"num_nodes must be a perfect square for the grid topology, got {num_nodes}"
            )
        deployment = grid_deployment(side, side, spacing_m=area_side_m / max(side - 1, 1))
    elif topology == "random":
        deployment = random_deployment(
            num_nodes,
            area_m=(area_side_m, area_side_m),
            rng=int(params.get("topology_seed", 1)),
        )
    else:
        raise ValueError(f"unknown topology {topology!r}; expected 'grid' or 'random'")
    protocol_name = str(params.get("protocol", "routed"))
    if protocol_name == "routed":
        protocol: RoutedForwarding | TtlFlooding = RoutedForwarding()
    elif protocol_name == "flooding":
        protocol = TtlFlooding(ttl=int(params.get("ttl", 4)))
    else:
        raise ValueError(f"unknown protocol {protocol_name!r}; expected 'routed' or 'flooding'")
    drift_speed = float(params.get("drift_speed_mps", 0.0))
    mobility = None
    if drift_speed > 0.0:
        mobility = LinearMobility(
            speed_mps=drift_speed, epoch_s=float(params.get("drift_epoch_s", 21_600.0))
        )
    return NetworkSimulator(
        deployment=deployment,
        energy_budget=ModemEnergyBudget(
            processing_energy_per_estimation_j=float(params["energy_uj"]) * 1e-6,
        ),
        traffic=PeriodicTraffic(
            report_interval_s=float(params["report_interval_s"]),
            packet_symbols=int(params["packet_symbols"]),
        ),
        communication_range_m=float(params["communication_range_m"]),
        battery_capacity_j=float(params["battery_capacity_j"]),
        mac=CsmaMac(
            channel_load=float(params["channel_load"]),
            max_attempts=int(params["max_attempts"]),
            capture_probability=float(params.get("capture_probability", 0.0)),
        ),
        rng=seed,
        batch=bool(params.get("batch", True)),
        protocol=protocol,
        mobility=mobility,
    )


def _contention_metrics(result) -> dict[str, Any]:
    ratio = result.delivery_ratio
    return {
        "lifetime_days": result.lifetime_days,
        # a zero-packet run has an undefined (NaN) ratio; encode it as None
        # so sweep records stay strict JSON and aggregators skip it
        "delivery_ratio": None if ratio != ratio else float(ratio),
        "packets_generated": result.packets_generated,
        "packets_delivered": result.packets_delivered,
        "packets_dropped": result.packets_dropped,
    }


def _network_contention_trial(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Lifetime and delivery of one seeded run under the contention MAC.

    ``protocol`` selects routed forwarding or TTL flooding, ``drift_speed_mps``
    (> 0) attaches current-drift mobility, and ``batch`` picks the vectorised
    or per-packet engine — both produce identical records seed for seed,
    which is what the CI byte-compare smoke pins.
    """
    simulator = _contention_simulator(params, seed)
    result = simulator.run(
        max_time_s=float(params["max_days"]) * 86_400.0,
        stop_at_first_death=bool(params.get("stop_at_first_death", True)),
    )
    return _contention_metrics(result)


def _network_pdr_trial(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Delivery ratio at one deployment density (fixed area, varying nodes).

    Runs the full horizon without stopping at deaths (the battery is sized so
    none occur) and reports the per-receiver contention exposure alongside
    the delivery ratio: as density rises, mean degree rises and PDR falls.
    """
    simulator = _contention_simulator(params, seed)
    degrees = [degree for _, degree in simulator.graph.degree]
    result = simulator.run(
        max_time_s=float(params["max_days"]) * 86_400.0,
        stop_at_first_death=False,
    )
    metrics = _contention_metrics(result)
    metrics["mean_degree"] = float(sum(degrees)) / len(degrees)
    return metrics


# --------------------------------------------------------------------------- #
# built-in scenario definitions
# --------------------------------------------------------------------------- #
register(Scenario(
    name="modem-ser-vs-snr",
    description="DS-SS vs FSK symbol error rate over an SNR sweep (experiment E7)",
    layers=("modem", "channel", "dsp"),
    version="1",
    run_trial=_modem_ser_trial,
    default_spec=SweepSpec(
        scenario="modem-ser-vs-snr",
        grid={"scheme": ("DSSS", "FSK"), "snr_db": (-6.0, -3.0, 0.0, 3.0, 6.0)},
        base={
            "num_symbols": 48, "num_frames": 4, "num_channel_paths": 4,
            # batched engine by default; `--set batch=false` runs the
            # per-frame reference (identical counts, just slower)
            "batch": True,
        },
        # seeds paired across scheme and SNR (common random numbers): both
        # schemes see the same channels, so the comparison is head-to-head
        seed=SeedPolicy(base_seed=0, replicates=2),
    ),
))

register(Scenario(
    name="fixedpoint-bitwidth",
    description="fixed-point MP channel-estimation accuracy vs word length (experiment E6)",
    layers=("fixedpoint", "core"),
    version="2",
    run_trial=_fixedpoint_bitwidth_trial,
    default_spec=SweepSpec(
        scenario="fixedpoint-bitwidth",
        grid={"word_length": (4, 6, 8, 10, 12, 16)},
        base={
            "snr_db": 25.0, "num_channel_paths": 4,
            "walsh_symbols": 8, "spreading_chips": 7, "samples_per_chip": 2,
            "num_paths": 6,
            # scalar executable spec by default; `--set batch=true` runs each
            # trial through the batched datapath as a one-row batch (raw
            # integer codes are pinned identical, so metrics match exactly)
            "batch": False,
        },
        # paired: every word length estimates the same channels
        seed=SeedPolicy(base_seed=0, replicates=12),
    ),
))

register(Scenario(
    name="ipcore-parallelism",
    description="IP-core accuracy and cycle cost over parallelism and word length (Figure 5 / Table 2)",
    layers=("core", "fixedpoint", "hardware"),
    version="1",
    run_trial=_ipcore_parallelism_trial,
    default_spec=SweepSpec(
        scenario="ipcore-parallelism",
        grid={
            # the Table 2 parallelism levels; --set sweeps any divisor of 112
            "num_fc_blocks": (1, 14, 112),
            "word_length": (8, 12, 16),
        },
        base={
            "snr_db": 25.0, "num_channel_paths": 4,
            "walsh_symbols": 8, "spreading_chips": 7, "samples_per_chip": 2,
            "num_paths": 6,
            # batched engine by default; `--set batch=false` walks the scalar
            # FC blocks (identical records, just slower)
            "batch": True,
        },
        # paired: every design point estimates the same channels
        seed=SeedPolicy(base_seed=0, replicates=4),
    ),
))

register(Scenario(
    name="platform-energy",
    description="per-estimation and per-packet energy of each processing platform (Table 3)",
    layers=("hardware",),
    version="1",
    run_trial=_platform_energy_trial,
    default_spec=SweepSpec(
        scenario="platform-energy",
        grid={"platform": tuple(TABLE3_PLATFORM_ENERGIES_UJ)},
        base={"num_paths": 6, "packet_symbols": 32},
        seed=SeedPolicy(base_seed=0, replicates=1),
    ),
))

register(Scenario(
    name="mp-refinement",
    description="greedy vs LS-refined Matching Pursuits quality over Nf (refinement study)",
    layers=("core", "channel"),
    version="1",
    run_trial=_mp_refinement_trial,
    default_spec=SweepSpec(
        scenario="mp-refinement",
        grid={"num_paths": (2, 4, 6, 8), "estimator": ("greedy", "ls")},
        base={
            "snr_db": 15.0, "num_channel_paths": 4,
            "walsh_symbols": 8, "spreading_chips": 7, "samples_per_chip": 2,
        },
        seed=SeedPolicy(base_seed=0, replicates=6),
    ),
))

register(Scenario(
    name="network-lifetime",
    description="deployment lifetime by platform over topology and report interval (experiment E9)",
    layers=("network", "modem"),
    version="2",
    run_trial=_network_lifetime_trial,
    default_spec=SweepSpec(
        scenario="network-lifetime",
        grid={
            "report_interval_s": (60.0, 120.0, 300.0),
            # grid lattice vs uniform random scatter over the same area
            "topology": ("grid", "random"),
        },
        zipped={
            "platform": tuple(TABLE3_PLATFORM_ENERGIES_UJ),
            "energy_uj": tuple(TABLE3_PLATFORM_ENERGIES_UJ.values()),
        },
        base={
            "grid_rows": 5, "grid_cols": 5, "spacing_m": 200.0,
            "communication_range_m": 300.0, "battery_capacity_j": 200_000.0,
            "packet_symbols": 32, "continuous_detection": True,
            # vectorised estimator by default; `--set batch=false` runs the
            # scalar per-node reference (identical lifetimes, just slower);
            # topology_seed=1 keeps the default random scatter connected
            "batch": True, "topology_seed": 1,
        },
        seed=SeedPolicy(base_seed=0, replicates=1),
    ),
))

register(Scenario(
    name="network-contention",
    description="deployment lifetime and delivery ratio under the contention CSMA MAC",
    layers=("network", "modem"),
    version="1",
    run_trial=_network_contention_trial,
    default_spec=SweepSpec(
        scenario="network-contention",
        grid={
            "protocol": ("routed", "flooding"),
            "channel_load": (0.1, 0.3),
        },
        base={
            "num_nodes": 25, "area_side_m": 800.0, "topology": "grid",
            "communication_range_m": 300.0, "battery_capacity_j": 200.0,
            "report_interval_s": 30.0, "packet_symbols": 16,
            "energy_uj": 500.76, "max_attempts": 5, "capture_probability": 0.0,
            "ttl": 4, "drift_speed_mps": 0.0, "drift_epoch_s": 21_600.0,
            "max_days": 1.0, "topology_seed": 1,
            # vectorised contention engine by default; `--set batch=false`
            # replays the per-packet event loop (identical records, slower) —
            # the CI smoke byte-compares the two
            "batch": True,
        },
        seed=SeedPolicy(base_seed=0, replicates=2),
    ),
))

register(Scenario(
    name="network-pdr-vs-density",
    description="packet delivery ratio vs deployment density under contention (fixed area)",
    layers=("network",),
    version="1",
    run_trial=_network_pdr_trial,
    default_spec=SweepSpec(
        scenario="network-pdr-vs-density",
        # same square area throughout: more nodes = denser = more contenders
        grid={"num_nodes": (9, 16, 25, 36)},
        base={
            "area_side_m": 600.0, "topology": "grid",
            "communication_range_m": 300.0, "battery_capacity_j": 50_000.0,
            "report_interval_s": 60.0, "packet_symbols": 16,
            "energy_uj": 500.76, "channel_load": 0.1, "max_attempts": 5,
            "capture_probability": 0.0, "protocol": "routed", "ttl": 4,
            "drift_speed_mps": 0.0, "drift_epoch_s": 21_600.0,
            "max_days": 0.05, "topology_seed": 1, "batch": True,
        },
        seed=SeedPolicy(base_seed=0, replicates=3),
    ),
))
