"""Declarative sweep specifications.

A :class:`SweepSpec` describes *what* to run — a scenario name, a set of
parameter axes and a seeding policy — without saying anything about *how*
(serial vs parallel, cached vs fresh).  The split is what makes sweeps
reproducible and resumable: the spec round-trips through JSON, expands into a
deterministic list of :class:`TrialPoint` objects, and each trial carries a
seed derived purely from the seed policy (never from execution order), so the
same spec always produces the same trials in the same order no matter how it
is executed.

Two kinds of axes are supported:

* ``grid`` axes are swept as a cartesian product (every combination runs);
* ``zipped`` axes vary together, row by row — useful when values are paired
  data rather than independent dimensions (e.g. platform label and its
  per-estimation energy).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["SeedPolicy", "SweepSpec", "TrialPoint", "canonical_json", "stable_hash"]

#: Parameter values a spec may carry (must survive a JSON round trip).
ParamValue = int | float | str | bool | None

#: Version of the seed-derivation scheme, folded into every trial seed's
#: entropy.  Bumping it re-draws every random stream (and, since seeds enter
#: cache keys, invalidates cached stochastic results) without touching specs.
SEED_SCHEME_VERSION = 4


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to JSON with sorted keys and no whitespace.

    The canonical form is the basis of every stable identity in the
    experiments subsystem (trial seeds, cache keys), so it must not depend on
    dict insertion order or platform.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=_jsonable)


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars (and anything with ``item()``) to plain Python."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"{value!r} is not JSON serialisable")


def stable_hash(value: Any, *, length: int = 16) -> str:
    """A hex digest of ``value``'s canonical JSON, stable across processes.

    Unlike :func:`hash`, this does not depend on ``PYTHONHASHSEED``, so it is
    safe to use for on-disk cache keys and cross-process seed derivation.
    """
    digest = hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
    return digest[:length]


#: ``stable_hash({})`` — the ``vary_with`` contribution of the common
#: fully-paired policy, precomputed so per-trial seed derivation skips the
#: JSON/sha round trip (the derived seeds are unchanged).
_EMPTY_VARIED_HASH = int(stable_hash({}), 16)


@dataclass(frozen=True)
class SeedPolicy:
    """How per-trial seeds are derived.

    Parameters
    ----------
    base_seed:
        Root seed of the whole sweep.
    replicates:
        Number of independent repetitions of every axis combination.
    vary_with:
        Axis names whose values additionally enter the seed derivation.  By
        default the seed depends only on ``(base_seed, replicate)``, which
        gives a *paired* design: trials that differ only in swept parameters
        (say, word length) see the same random channels, so differences in
        their metrics are attributable to the parameters, not to noise.  Add
        an axis here to give each of its values an independent random stream.
    """

    base_seed: int = 0
    replicates: int = 1
    vary_with: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {self.replicates}")
        if self.base_seed < 0:
            raise ValueError(f"base_seed must be >= 0, got {self.base_seed}")

    def trial_seed(self, replicate: int, params: Mapping[str, ParamValue]) -> int:
        """Deterministic 63-bit seed for one trial.

        Derived through :class:`numpy.random.SeedSequence` from
        ``(base_seed, replicate)`` plus a stable hash of the ``vary_with``
        axis values, so it depends only on the policy — never on expansion
        order, process boundaries or ``PYTHONHASHSEED``.
        """
        if self.vary_with:
            varied = {name: params[name] for name in self.vary_with if name in params}
            varied_hash = int(stable_hash(varied), 16)
        else:
            varied_hash = _EMPTY_VARIED_HASH
        entropy = (
            SEED_SCHEME_VERSION,
            int(self.base_seed),
            int(replicate),
            varied_hash,
        )
        seed_sequence = np.random.SeedSequence(entropy=entropy)
        return int(seed_sequence.generate_state(1, np.uint64)[0]) % (2**63 - 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "base_seed": self.base_seed,
            "replicates": self.replicates,
            "vary_with": list(self.vary_with),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SeedPolicy":
        return cls(
            base_seed=int(data.get("base_seed", 0)),
            replicates=int(data.get("replicates", 1)),
            vary_with=tuple(data.get("vary_with", ())),
        )


@dataclass(frozen=True)
class TrialPoint:
    """One fully-resolved point of a sweep: parameters plus a derived seed."""

    index: int
    replicate: int
    seed: int
    params: Mapping[str, ParamValue]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative description of one parameter sweep.

    Parameters
    ----------
    scenario:
        Registry name of the scenario whose trial function runs each point.
    grid:
        Cartesian-product axes: every combination of values runs.
    zipped:
        Co-varying axes: all must have the same length; row ``i`` of every
        zipped axis runs together.
    base:
        Fixed parameters shared by every trial.
    seed:
        The :class:`SeedPolicy`.
    """

    scenario: str
    grid: Mapping[str, tuple[ParamValue, ...]] = field(default_factory=dict)
    zipped: Mapping[str, tuple[ParamValue, ...]] = field(default_factory=dict)
    base: Mapping[str, ParamValue] = field(default_factory=dict)
    seed: SeedPolicy = field(default_factory=SeedPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", {k: tuple(v) for k, v in self.grid.items()})
        object.__setattr__(self, "zipped", {k: tuple(v) for k, v in self.zipped.items()})
        object.__setattr__(self, "base", dict(self.base))
        for name, values in self.grid.items():
            if len(values) == 0:
                raise ValueError(f"grid axis {name!r} has no values")
        lengths = {name: len(values) for name, values in self.zipped.items()}
        if lengths and len(set(lengths.values())) > 1:
            raise ValueError(f"zipped axes must have equal lengths, got {lengths}")
        if lengths and 0 in lengths.values():
            raise ValueError("zipped axes have no values")
        groups = [set(self.grid), set(self.zipped), set(self.base)]
        for i, a in enumerate(groups):
            for b in groups[i + 1:]:
                overlap = a & b
                if overlap:
                    raise ValueError(
                        f"parameter(s) {sorted(overlap)} appear in more than one of "
                        "grid / zipped / base"
                    )

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #
    @property
    def num_trials(self) -> int:
        """Total number of trial points the spec expands to."""
        count = self.seed.replicates
        for values in self.grid.values():
            count *= len(values)
        if self.zipped:
            count *= len(next(iter(self.zipped.values())))
        return count

    def iter_trials(self) -> Iterator[TrialPoint]:
        """Yield the trial points in their canonical (deterministic) order.

        The order is: grid axes in declaration order (outer product), then
        zipped rows, then replicates — so appending a replicate or a grid
        value extends the sequence without reshuffling existing trials.
        """
        grid_names = list(self.grid)
        grid_values = [self.grid[name] for name in grid_names]
        zip_names = list(self.zipped)
        zip_rows: Sequence[tuple[ParamValue, ...]]
        if zip_names:
            zip_rows = list(zip(*(self.zipped[name] for name in zip_names)))
        else:
            zip_rows = [()]

        index = 0
        for combo in itertools.product(*grid_values):
            for row in zip_rows:
                params = dict(self.base)
                params.update(zip(grid_names, combo))
                params.update(zip(zip_names, row))
                for replicate in range(self.seed.replicates):
                    yield TrialPoint(
                        index=index,
                        replicate=replicate,
                        seed=self.seed.trial_seed(replicate, params),
                        params=dict(params),
                    )
                    index += 1

    def expand(self) -> list[TrialPoint]:
        """All trial points as a list (see :meth:`iter_trials`)."""
        return list(self.iter_trials())

    # ------------------------------------------------------------------ #
    # overrides (CLI --set, programmatic ports)
    # ------------------------------------------------------------------ #
    def with_axis(self, name: str, values: Sequence[ParamValue]) -> "SweepSpec":
        """A copy with grid axis ``name`` set to ``values``.

        If ``name`` currently lives in ``base`` it is promoted to a grid
        axis; a single-value axis is folded back into ``base`` so the seed
        pairing and record layout stay tidy.
        """
        if name in self.zipped:
            raise ValueError(
                f"{name!r} is a zipped axis; zipped axes must be replaced together "
                "via with_zipped()"
            )
        values = tuple(values)
        if not values:
            raise ValueError(f"axis {name!r} needs at least one value")
        grid = {k: v for k, v in self.grid.items() if k != name}
        base = {k: v for k, v in self.base.items() if k != name}
        if len(values) == 1:
            base[name] = values[0]
        else:
            grid[name] = values
        return replace(self, grid=grid, base=base)

    def with_zipped(self, axes: Mapping[str, Sequence[ParamValue]]) -> "SweepSpec":
        """A copy with the zipped axes replaced wholesale by ``axes``."""
        return replace(self, zipped={k: tuple(v) for k, v in axes.items()})

    def select_zipped(self, name: str, values: Sequence[ParamValue]) -> "SweepSpec":
        """A copy keeping only the zip rows where axis ``name`` takes ``values``.

        Because zipped axes are paired data, overriding one in isolation is
        meaningless; selecting rows by one axis's values keeps the pairing
        intact (e.g. pick two platforms and their energies travel along).
        Rows follow the order of ``values``; unknown values are rejected.
        """
        if name not in self.zipped:
            raise ValueError(f"{name!r} is not a zipped axis of this spec")
        axis = self.zipped[name]
        rows: list[int] = []
        for value in values:
            matches = [i for i, existing in enumerate(axis) if existing == value]
            if not matches:
                raise ValueError(
                    f"{value!r} is not a value of zipped axis {name!r}; "
                    f"available: {', '.join(repr(v) for v in axis)}"
                )
            rows.extend(matches)
        return replace(
            self,
            zipped={k: tuple(v[i] for i in rows) for k, v in self.zipped.items()},
        )

    def with_base(self, **params: ParamValue) -> "SweepSpec":
        """A copy with ``params`` merged into the fixed base parameters."""
        base = dict(self.base)
        base.update(params)
        grid = {k: v for k, v in self.grid.items() if k not in params}
        return replace(self, grid=grid, base=base)

    def with_seed(
        self,
        base_seed: int | None = None,
        replicates: int | None = None,
        vary_with: tuple[str, ...] | None = None,
    ) -> "SweepSpec":
        """A copy with parts of the seed policy replaced."""
        return replace(
            self,
            seed=SeedPolicy(
                base_seed=self.seed.base_seed if base_seed is None else base_seed,
                replicates=self.seed.replicates if replicates is None else replicates,
                vary_with=self.seed.vary_with if vary_with is None else vary_with,
            ),
        )

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "grid": {name: list(values) for name, values in self.grid.items()},
            "zipped": {name: list(values) for name, values in self.zipped.items()},
            "base": dict(self.base),
            "seed": self.seed.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        return cls(
            scenario=data["scenario"],
            grid={name: tuple(values) for name, values in data.get("grid", {}).items()},
            zipped={name: tuple(values) for name, values in data.get("zipped", {}).items()},
            base=dict(data.get("base", {})),
            seed=SeedPolicy.from_dict(data.get("seed", {})),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))
