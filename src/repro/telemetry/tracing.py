"""Hierarchical tracing spans: the *where did the time go* half of telemetry.

A trace is a flat list of :class:`SpanRecord` rows forming a tree through
``parent_id`` links — ``sweep > sweep.execute > trial > engine.*`` — cheap
enough to leave compiled into every hot path:

* **opt-in** — nothing records until a caller activates a :class:`Tracer`
  (:func:`start_trace`); with no tracer active, :func:`span` returns a shared
  no-op context manager without allocating, so instrumented code costs one
  contextvar read per call site;
* **contextvar-scoped** — the active tracer and the current span travel in
  :mod:`contextvars`, so nesting works across function calls and (with
  :func:`contextvars.copy_context`) across worker threads;
* **multiprocessing-safe** — a worker process opens its own buffer with
  :func:`worker_trace` (detecting a forked parent tracer by PID), ships the
  finished records back with its results, and the parent re-attaches them
  under its own span via :meth:`Tracer.adopt`.  Span ids embed the producing
  PID, so merged traces never collide;
* **file-friendly** — :func:`write_trace` / :func:`read_trace` round-trip a
  trace through JSONL (one span per line, next to the sweep's
  ``results.jsonl``), and :func:`validate_trace` checks the schema and the
  span-tree integrity the CI smoke step gates on.

Span timestamps are :func:`time.perf_counter` values: durations are exact
everywhere; absolute offsets are only comparable across processes on
platforms where the monotonic clock is system-wide (Linux).
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "start_trace",
    "worker_trace",
    "current_tracer",
    "tracing_active",
    "write_trace",
    "read_trace",
    "validate_trace",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named, timed node of the trace tree."""

    name: str
    span_id: str
    parent_id: str | None
    start_s: float
    end_s: float
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpanRecord":
        return cls(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload["parent_id"],
            start_s=float(payload["start_s"]),
            end_s=float(payload["end_s"]),
            attributes=dict(payload.get("attributes", {})),
        )


# process-global span counter: a pool worker opens a fresh tracer per trial,
# so a per-tracer counter would restart at 0 and collide within one pid —
# the shared count keeps "<pid>.<n>" unique for the process lifetime
# (``next`` on itertools.count is atomic under the GIL)
_SPAN_COUNTER = itertools.count()


class Tracer:
    """A buffer of finished spans for one process (or one worker trial).

    Span ids are ``"<pid hex>.<counter hex>"`` so records produced by
    different processes merge without collisions.  The buffer only ever
    appends (GIL-atomic), so worker *threads* sharing one tracer are safe.
    """

    __slots__ = ("pid", "records")

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.records: list[SpanRecord] = []

    def new_span_id(self) -> str:
        return f"{self.pid:x}.{next(_SPAN_COUNTER):x}"

    def add(self, record: SpanRecord) -> None:
        self.records.append(record)

    def adopt(self, records: Iterable[SpanRecord], parent_id: str | None) -> None:
        """Merge spans shipped back from a worker, re-parenting their roots.

        A worker's buffer is rooted at spans with no parent (or a parent that
        never shipped, e.g. a forked copy of a parent-side span); those roots
        are re-attached under ``parent_id`` so the merged trace stays one
        connected tree with correct parent ids.
        """
        records = list(records)
        local_ids = {record.span_id for record in records}
        for record in records:
            if record.parent_id is None or record.parent_id not in local_ids:
                record = replace(record, parent_id=parent_id)
            self.records.append(record)


_ACTIVE: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro_active_tracer", default=None
)
_CURRENT_SPAN: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_current_span", default=None
)


def current_tracer() -> Tracer | None:
    """The tracer recording in this context, or ``None`` when disabled."""
    return _ACTIVE.get()


def tracing_active() -> bool:
    """Whether spans opened here would record into a live, same-process tracer."""
    tracer = _ACTIVE.get()
    return tracer is not None and tracer.pid == os.getpid()


@contextmanager
def start_trace() -> Iterator[Tracer]:
    """Activate a fresh tracer for this context; yields it for inspection.

    Spans opened inside become the trace; top-level ones are tree roots.
    Traces do not nest — the inner tracer simply shadows the outer for the
    duration of the block.
    """
    tracer = Tracer()
    active_token = _ACTIVE.set(tracer)
    span_token = _CURRENT_SPAN.set(None)
    try:
        yield tracer
    finally:
        _CURRENT_SPAN.reset(span_token)
        _ACTIVE.reset(active_token)


@contextmanager
def worker_trace() -> Iterator[Tracer]:
    """A fresh span buffer for a worker process.

    Under a ``fork`` start method the child inherits the parent's active
    tracer and current span — a dead copy whose mutations never return.
    This shadows both with a clean local tracer; the caller ships
    ``tracer.records`` back alongside its result for :meth:`Tracer.adopt`.
    """
    with start_trace() as tracer:
        yield tracer


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records itself into the tracer when the block exits."""

    __slots__ = ("_tracer", "name", "attributes", "span_id", "_token", "_start_s")

    def __init__(self, tracer: Tracer, name: str, attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = tracer.new_span_id()

    def set(self, **attributes: Any) -> "_Span":
        """Attach attributes discovered while the span is open."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "_Span":
        self._token = _CURRENT_SPAN.set(self.span_id)
        self._start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        end_s = time.perf_counter()
        _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer.add(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=_CURRENT_SPAN.get(),
                start_s=self._start_s,
                end_s=end_s,
                attributes=self.attributes,
            )
        )
        return False


def span(name: str, **attributes: Any) -> _Span | _NullSpan:
    """Open a span under the current one; a cheap no-op while disabled.

    Only spans whose tracer lives in *this* process record — a forked copy
    of a parent tracer is ignored (workers use :func:`worker_trace`).
    """
    tracer = _ACTIVE.get()
    if tracer is None or tracer.pid != os.getpid():
        return _NULL_SPAN
    return _Span(tracer, name, attributes)


# --------------------------------------------------------------------------- #
# JSONL persistence + schema validation
# --------------------------------------------------------------------------- #

#: Required JSONL fields and their accepted types (the trace schema).
TRACE_SCHEMA: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "span_id": (str,),
    "parent_id": (str, type(None)),
    "start_s": (int, float),
    "end_s": (int, float),
    "attributes": (dict,),
}


def write_trace(path: Path | str, records: Sequence[SpanRecord]) -> Path:
    """Atomically write a trace as JSONL, one span per line.

    Uses the same temp-file + rename pattern as the sweep artefacts
    (:mod:`repro.utils.atomic`), so a killed process never leaves a torn
    trace file next to its results.
    """
    from repro.utils.atomic import atomic_writer

    def _write(handle: Any) -> None:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    return atomic_writer(path, _write)


def read_trace(path: Path | str) -> list[SpanRecord]:
    """Load a JSONL trace back into :class:`SpanRecord` rows."""
    records: list[SpanRecord] = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records


def validate_trace(records: Sequence[SpanRecord]) -> list[str]:
    """Schema and tree-integrity problems of a trace (empty list = valid).

    Checks every span for schema conformance (types per :data:`TRACE_SCHEMA`,
    non-empty name, ``end_s >= start_s``), id uniqueness, dangling parent
    references, and parent-link cycles.
    """
    problems: list[str] = []
    seen: dict[str, SpanRecord] = {}
    for position, record in enumerate(records):
        label = f"span {position} ({record.name!r})"
        payload = record.to_dict()
        for key, types in TRACE_SCHEMA.items():
            if not isinstance(payload[key], types):
                problems.append(f"{label}: field {key!r} has type "
                                f"{type(payload[key]).__name__}")
        if not record.name:
            problems.append(f"{label}: empty name")
        if record.end_s < record.start_s:
            problems.append(f"{label}: ends before it starts")
        if record.span_id in seen:
            problems.append(f"{label}: duplicate span_id {record.span_id!r}")
        seen[record.span_id] = record
    for record in records:
        if record.parent_id is not None and record.parent_id not in seen:
            problems.append(
                f"span {record.span_id!r} ({record.name!r}): dangling parent "
                f"{record.parent_id!r}"
            )
    # cycle check: walk each span's parent chain with the tortoise unnecessary —
    # bounded hop count suffices since chains longer than the trace must loop
    limit = len(records)
    for record in records:
        hops = 0
        cursor = record.parent_id
        while cursor is not None and hops <= limit:
            cursor = seen[cursor].parent_id if cursor in seen else None
            hops += 1
        if hops > limit:
            problems.append(f"span {record.span_id!r} ({record.name!r}): parent cycle")
    return problems
