"""Process-local metrics: counters, gauges and histograms with snapshots.

The *how much happened* half of telemetry.  Instrumented code holds a direct
reference to its metric object (``_TRIALS = counter("sweep.trials")``) and
mutates it with one attribute update per event — always on, no locks, cheap
enough for hot paths because the engines count per *batch*, not per element.

Snapshots make the registry composable with sweeps and worker processes:

* :meth:`MetricsRegistry.snapshot` captures every metric as a typed plain
  dict;
* :func:`snapshot_delta` subtracts two snapshots, so a sweep can report only
  the activity *it* caused even though the registry is process-lifetime;
* :meth:`MetricsRegistry.merge_delta` folds a worker process's delta back
  into the parent registry (multiprocessing workers mutate forked copies,
  so their deltas travel home with the trial results);
* :func:`flatten_snapshot` renders a typed snapshot/delta as the compact
  ``{name: value}`` mapping folded into
  :class:`~repro.experiments.runner.SweepStats`.

``reset()`` zeroes metrics **in place**, so module-level metric references
held by instrumented code stay live across test isolation.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot_delta",
    "flatten_snapshot",
]


class Counter:
    """A monotonically increasing count (trials run, cache hits, cycles)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (live workers, current chunk size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A stream summary: count / total / min / max (and mean) of observations."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics; one process-wide instance by default."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__.lower()}, "
                f"not a {kind.__name__.lower()}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def reset(self) -> None:
        """Zero every metric in place (references held by callers stay live)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every metric as a typed plain dict, sorted by name."""
        return {name: self._metrics[name].to_dict() for name in sorted(self._metrics)}

    def merge_delta(self, delta: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a typed delta (from :func:`snapshot_delta`) into this registry.

        Counters and histogram count/total accumulate; gauges and histogram
        min/max take the incoming observation (min of mins, max of maxes).
        """
        for name, payload in delta.items():
            kind = payload.get("type")
            if kind == "counter":
                self.counter(name).inc(payload["value"])
            elif kind == "gauge":
                self.gauge(name).set(payload["value"])
            elif kind == "histogram":
                metric = self.histogram(name)
                metric.count += int(payload.get("count", 0))
                metric.total += float(payload.get("total", 0.0))
                for bound, pick in (("min", min), ("max", max)):
                    incoming = payload.get(bound)
                    if incoming is None:
                        continue
                    current = getattr(metric, bound)
                    setattr(
                        metric, bound,
                        incoming if current is None else pick(current, incoming),
                    )
            else:
                raise ValueError(f"metric {name!r}: unknown delta type {kind!r}")


#: The process-wide default registry the instrumented layers record into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)


def snapshot_delta(
    before: Mapping[str, Mapping[str, Any]],
    after: Mapping[str, Mapping[str, Any]],
) -> dict[str, dict[str, Any]]:
    """The typed difference between two snapshots (only what changed).

    Counter values and histogram count/total subtract; gauges report their
    final value when it changed; histogram min/max carry the *after* bounds
    (the registry does not keep per-window extrema).
    """
    delta: dict[str, dict[str, Any]] = {}
    for name, payload in after.items():
        previous = before.get(name)
        kind = payload.get("type")
        if previous is None or previous.get("type") != kind:
            changed = dict(payload)
            if kind != "histogram" and not changed.get("value"):
                continue
            if kind == "histogram" and not changed.get("count"):
                continue
            delta[name] = changed
            continue
        if kind in ("counter", "gauge"):
            if payload["value"] != previous["value"]:
                value = payload["value"]
                if kind == "counter":
                    value = value - previous["value"]
                delta[name] = {"type": kind, "value": value}
        elif kind == "histogram":
            count = payload["count"] - previous["count"]
            if count:
                total = payload["total"] - previous["total"]
                delta[name] = {
                    "type": "histogram",
                    "count": count,
                    "total": total,
                    "mean": total / count,
                    "min": payload["min"],
                    "max": payload["max"],
                }
    return delta


def flatten_snapshot(
    snapshot: Mapping[str, Mapping[str, Any]],
) -> dict[str, Any]:
    """A typed snapshot/delta as compact ``{name: value}`` pairs.

    Counters and gauges flatten to their number; histograms keep a small
    dict (count/total/mean/min/max) without the type tag.
    """
    flat: dict[str, Any] = {}
    for name, payload in snapshot.items():
        if payload.get("type") in ("counter", "gauge"):
            flat[name] = payload["value"]
        else:
            flat[name] = {k: v for k, v in payload.items() if k != "type"}
    return flat
