"""Trace summarisation: the analysis behind the ``repro trace`` subcommand.

Takes the flat JSONL span list a traced sweep exports and answers the three
questions a slow run raises: *what ran* (the span tree, aggregated by name so
a thousand trials render as one line), *where the time went* (per-stage
totals over every span of a name), and *which trials were worst* (the
slowest ``trial`` spans with their identifying attributes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.telemetry.tracing import SpanRecord
from repro.utils.tables import format_table

__all__ = [
    "StageStat",
    "aggregate_stages",
    "aggregate_tree",
    "slowest_spans",
    "render_trace_summary",
]


@dataclass(frozen=True)
class StageStat:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int
    total_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def aggregate_stages(records: Sequence[SpanRecord]) -> list[StageStat]:
    """Per-name timing totals, sorted by total time (descending)."""
    counts: dict[str, int] = {}
    totals: dict[str, float] = {}
    maxima: dict[str, float] = {}
    for record in records:
        counts[record.name] = counts.get(record.name, 0) + 1
        totals[record.name] = totals.get(record.name, 0.0) + record.duration_s
        maxima[record.name] = max(maxima.get(record.name, 0.0), record.duration_s)
    stats = [
        StageStat(name=name, count=counts[name], total_s=totals[name], max_s=maxima[name])
        for name in counts
    ]
    return sorted(stats, key=lambda stat: (-stat.total_s, stat.name))


def aggregate_tree(records: Sequence[SpanRecord]) -> list[tuple[int, StageStat]]:
    """The span tree with same-named siblings folded together.

    Returns ``(depth, stat)`` rows in depth-first order: every group of
    same-named spans sharing a *structural* position (the chain of ancestor
    names) becomes one row, so a million-trial trace renders in a screenful.
    Spans with dangling parents are treated as roots (a truncated trace file
    still summarises).
    """
    known = {record.span_id for record in records}
    children: dict[str | None, list[SpanRecord]] = {}
    for record in records:
        parent = record.parent_id if record.parent_id in known else None
        children.setdefault(parent, []).append(record)

    rows: list[tuple[int, StageStat]] = []

    def walk(parent_ids: list[str | None], depth: int) -> None:
        group: dict[str, list[SpanRecord]] = {}
        order: list[str] = []
        for parent in parent_ids:
            for record in children.get(parent, ()):
                if record.name not in group:
                    group[record.name] = []
                    order.append(record.name)
                group[record.name].append(record)
        for name in order:
            spans = group[name]
            rows.append((
                depth,
                StageStat(
                    name=name,
                    count=len(spans),
                    total_s=sum(span.duration_s for span in spans),
                    max_s=max(span.duration_s for span in spans),
                ),
            ))
            walk([span.span_id for span in spans], depth + 1)

    walk([None], 0)
    return rows


def slowest_spans(
    records: Sequence[SpanRecord], name: str = "trial", top: int = 5
) -> list[SpanRecord]:
    """The ``top`` longest spans named ``name``, slowest first."""
    matching = [record for record in records if record.name == name]
    return sorted(matching, key=lambda record: -record.duration_s)[:top]


def _format_attributes(attributes: Mapping[str, object]) -> str:
    return " ".join(f"{key}={value}" for key, value in sorted(attributes.items()))


def render_trace_summary(
    records: Sequence[SpanRecord], slowest: int = 5, slowest_name: str = "trial"
) -> str:
    """The full ``repro trace`` report: tree, stage table, slowest trials."""
    if not records:
        return "empty trace (0 spans)"
    stages = aggregate_stages(records)
    wall_s = max(record.end_s for record in records) - min(
        record.start_s for record in records
    )
    sections = [f"{len(records)} spans, {wall_s:.3f}s wall time"]

    tree_rows = []
    for depth, stat in aggregate_tree(records):
        tree_rows.append((
            "  " * depth + stat.name, stat.count,
            f"{stat.total_s:.4f}", f"{stat.mean_s * 1e3:.2f}", f"{stat.max_s * 1e3:.2f}",
        ))
    sections.append(format_table(
        ["Span", "Count", "Total (s)", "Mean (ms)", "Max (ms)"],
        tree_rows, title="Span tree (same-named siblings folded)",
    ))

    grand_total = sum(stat.total_s for stat in stages)
    sections.append(format_table(
        ["Stage", "Count", "Total (s)", "Mean (ms)", "Share"],
        [
            (
                stat.name, stat.count, f"{stat.total_s:.4f}",
                f"{stat.mean_s * 1e3:.2f}",
                f"{stat.total_s / grand_total:.0%}" if grand_total > 0 else "-",
            )
            for stat in stages
        ],
        title="Time per stage (all spans of a name)",
    ))

    slow = slowest_spans(records, name=slowest_name, top=slowest)
    if slow:
        sections.append(format_table(
            ["Duration (ms)", "Attributes"],
            [
                (f"{record.duration_s * 1e3:.2f}", _format_attributes(record.attributes))
                for record in slow
            ],
            title=f"Slowest {slowest_name!r} spans",
        ))
    return "\n\n".join(sections)
